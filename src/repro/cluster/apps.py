"""Multi-application admission: queue, drivers, and per-app accounting.

An arriving job becomes a :class:`ClusterApp`; the :class:`AppManager`
admits apps FIFO into a bounded set of concurrently running
applications, giving each its own
:class:`~repro.spark.application.SparkDriver` (and DAG scheduler) on
top of the cluster's *shared*
:class:`~repro.cluster.pools.PooledTaskScheduler`. Queueing delay,
latency, and completion events are recorded per application under the
``cluster`` event category and ``app.<id>.*`` metric names.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from repro.observability.categories import (
    CAT_CLUSTER,
    CAT_PLANNER,
    EV_APP_ADMITTED,
    EV_APP_COMPLETED,
    EV_APP_FAILED,
    EV_APP_SUBMITTED,
    EV_BRIDGE_DRAINED,
    EV_SPLIT_DECIDED,
)
from repro.spark.application import SparkDriver
from repro.spark.dag_scheduler import JobFailedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.pool import ExecutorPool
    from repro.cluster.pools import SchedulerPools
    from repro.cluster.runtime import ClusterRuntime
    from repro.planner.policy import PlannerPolicy
    from repro.workloads.base import Workload


class ClusterApp:
    """One application: a workload instance moving through submission,
    admission, execution on the shared pool, and completion."""

    def __init__(self, app_id: str, index: int, workload: "Workload",
                 pool: str = "default", weight: int = 1,
                 min_share: int = 0,
                 parallelism: Optional[int] = None,
                 registry_name: Optional[str] = None) -> None:
        self.app_id = app_id
        #: Admission-order tiebreak for the fair comparator.
        self.index = index
        self.workload = workload
        #: Registry name the workload was built from (instance names
        #: like ``pagerank-25000`` embed parameters; the planner
        #: profiles by registry name).
        self.registry_name = registry_name or workload.name
        self.pool = pool
        self.weight = weight
        self.min_share = min_share
        #: Degree of parallelism the job is built for (defaults to the
        #: workload's R).
        self.parallelism = (parallelism if parallelism is not None
                            else workload.spec.required_cores)
        self.submit_time: Optional[float] = None
        self.admit_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.failed = False
        self.failure_reason: Optional[str] = None
        self.driver: Optional[SparkDriver] = None
        self.job = None

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.submit_time is None or self.admit_time is None:
            return None
        return self.admit_time - self.submit_time

    @property
    def latency_s(self) -> Optional[float]:
        """Submission-to-completion time (what an arrival experiences)."""
        if self.submit_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def run_duration_s(self) -> Optional[float]:
        if self.admit_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.admit_time

    def busy_seconds(self) -> float:
        """Task-occupancy seconds this app put on the pool (the basis
        for apportioning shared-resource cost across applications)."""
        if self.job is None:
            return 0.0
        total = sum(a.metrics.duration for a in self.job.task_attempts)
        total += sum(a.metrics.duration for a in self.job.failed_attempts)
        return total

    def __repr__(self) -> str:
        return f"<ClusterApp {self.app_id} ({self.workload.name})>"


class AppManager:
    """FIFO admission of applications onto one shared executor pool.

    With a ``split_policy`` (see :mod:`repro.core.policies`, kind
    ``split``), each admission first asks the policy how the app should
    cover its parallelism given the pool's uncommitted VM slots; the
    manager then enforces the decision — invoking bridge Lambdas and/or
    starting a segue — and drains the app's bridge Lambdas when it
    completes, so a burst's Lambda bill ends with the burst.
    """

    def __init__(self, runtime: "ClusterRuntime", pool: "ExecutorPool",
                 pools: "SchedulerPools",
                 max_concurrent: Optional[int] = None,
                 split_policy: Optional["PlannerPolicy"] = None) -> None:
        self.runtime = runtime
        self.pool = pool
        self.pools = pools
        self.max_concurrent = max_concurrent
        self.split_policy = split_policy
        self.queue: Deque[ClusterApp] = deque()
        self.running: Set[str] = set()
        self.finished: List[ClusterApp] = []
        self.decisions: List[object] = []
        #: VM slots committed to running apps / bridge Lambdas invoked
        #: per app, maintained only when a split policy is active.
        self._vm_committed: Dict[str, int] = {}
        self._bridged: Dict[str, int] = {}
        self._completion_target: Optional[int] = None
        self._completion_event = None

    # ------------------------------------------------------------------

    def submit(self, app: ClusterApp) -> None:
        """An application arrives: enqueue and admit if a slot is free."""
        app.submit_time = self.runtime.env.now
        self._record(EV_APP_SUBMITTED, app=app.app_id,
                     workload=app.workload.name, pool=app.pool)
        self.queue.append(app)
        self._try_admit()

    def _try_admit(self) -> None:
        while self.queue and (self.max_concurrent is None
                              or len(self.running) < self.max_concurrent):
            self._admit(self.queue.popleft())

    def _admit(self, app: ClusterApp) -> None:
        env = self.runtime.env
        app.admit_time = env.now
        self.running.add(app.app_id)
        self._record(EV_APP_ADMITTED, app=app.app_id,
                     queued_s=app.queueing_delay_s)
        self.runtime.metrics.histogram("cluster.queueing_delay_s").observe(
            app.queueing_delay_s)
        if self.split_policy is not None:
            self._enforce_split(app)
        self.pools.register(app)
        driver = SparkDriver(env, self.pool.conf, self.runtime.rng,
                             trace=self.runtime.trace,
                             task_scheduler=self.pool.scheduler,
                             app_id=app.app_id)
        driver.dag_scheduler.schedulable = app
        app.driver = driver
        app.job = driver.submit(app.workload.build(app.parallelism))
        env.process(self._watch(app))

    def _enforce_split(self, app: ClusterApp) -> None:
        """Consult the split policy for one admission and act on it."""
        free = max(0, self.pool.vm_capacity
                   - sum(self._vm_committed.values()))
        decision = self.split_policy.decide(app.workload, free,
                                            registry_name=app.registry_name)
        self.decisions.append(decision)
        self._vm_committed[app.app_id] = decision.vm_cores
        self.runtime.trace.record(
            self.runtime.env.now, CAT_PLANNER, EV_SPLIT_DECIDED,
            app=app.app_id, workload=app.registry_name,
            choice=decision.choice, free_cores=free,
            vm_cores=decision.vm_cores,
            lambda_cores=decision.lambda_cores,
            segue_cores=decision.segue_cores,
            predicted_runtime_s=decision.predicted_runtime_s,
            slo_s=decision.slo_s, meets_slo=decision.meets_slo)
        if decision.lambda_cores > 0:
            self.pool.invoke_lambda_executors(decision.lambda_cores)
            self._bridged[app.app_id] = decision.lambda_cores
        if decision.segue_cores > 0:
            self.pool.segue_to_vms(decision.segue_cores,
                                   decision.segue_at_s)

    def _watch(self, app: ClusterApp):
        try:
            yield app.job.done
        except JobFailedError as exc:
            app.failed = True
            app.failure_reason = str(exc)
        self._on_complete(app)

    def _on_complete(self, app: ClusterApp) -> None:
        app.finish_time = self.runtime.env.now
        self.running.discard(app.app_id)
        self.pools.unregister(app)
        self._vm_committed.pop(app.app_id, None)
        self._drain_bridge(app)
        self.finished.append(app)
        if app.failed:
            self._record(EV_APP_FAILED, app=app.app_id,
                         reason=app.failure_reason)
        else:
            self._record(EV_APP_COMPLETED, app=app.app_id,
                         latency_s=app.latency_s)
        metrics = self.runtime.metrics
        metrics.gauge(f"app.{app.app_id}.latency_s").set(app.latency_s)
        metrics.gauge(f"app.{app.app_id}.queueing_delay_s").set(
            app.queueing_delay_s)
        metrics.gauge(f"app.{app.app_id}.duration_s").set(app.run_duration_s)
        self._try_admit()
        if (self._completion_event is not None
                and not self._completion_event.triggered
                and len(self.finished) >= self._completion_target):
            self._completion_event.succeed(self)

    def _drain_bridge(self, app: ClusterApp) -> None:
        """Release the bridge Lambdas invoked for ``app``, keeping
        hands off slots still claimed by other running apps. Segued
        bridges drain through the segue instead; by completion their
        claim finds no live Lambda executor and drains zero."""
        claim = self._bridged.pop(app.app_id, 0)
        if claim <= 0:
            return
        reserved = sum(self._bridged.get(other, 0)
                       for other in self.running)
        drainable = max(0, min(claim,
                               self.pool.live_lambda_executors - reserved))
        drained = (self.pool.drain_lambda_executors(drainable)
                   if drainable > 0 else 0)
        self.runtime.trace.record(
            self.runtime.env.now, CAT_PLANNER, EV_BRIDGE_DRAINED,
            app=app.app_id, claimed=claim, drained=drained)

    # ------------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        return not self.queue and not self.running

    def snapshot(self) -> Dict[str, object]:
        """Live admission stats (the ``repro serve`` control plane's
        ``GET /pools`` view of this manager)."""
        failed = sum(1 for app in self.finished if app.failed)
        return {
            "queued": len(self.queue),
            "queued_apps": [app.app_id for app in self.queue],
            "running": len(self.running),
            "running_apps": sorted(self.running),
            "finished": len(self.finished),
            "failed": failed,
            "max_concurrent": self.max_concurrent,
        }

    def completion_event(self, total: int):
        """An event that fires once ``total`` applications have finished
        (run the environment until it to drain a fixed arrival batch)."""
        from repro.simulation.events import Event
        self._completion_target = total
        self._completion_event = Event(self.runtime.env)
        if len(self.finished) >= total:
            self._completion_event.succeed(self)
        return self._completion_event

    def _record(self, event: str, **fields) -> None:
        if self.runtime.trace is not None:
            self.runtime.trace.record(self.runtime.env.now, CAT_CLUSTER,
                                      event, **fields)
