"""S3: the Qubole/PyWren shuffle substrate — slow and billed per request.

The two properties the paper's §2/§3 discussion leans on:

1. **Throttling** — "the service usually tends to throttle when the
   aggregate throughput reaches a few thousands of requests per second"
   per bucket. Modelled as leaky buckets (one for PUT, one for GET) whose
   drain rates are the per-bucket ceilings; requests beyond the rate wait
   and the delay is recorded in ``stats.throttle_wait_s``.
2. **Per-request cost** — workloads with ~1e10 shuffle writes "can incur
   enormous total S3 related costs". Every PUT/GET is billed.

Payloads stream at a bounded per-connection rate (S3's aggregate
bandwidth is effectively unbounded at our scales, but one stream is not),
composed with the caller's own links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cloud.constants import (
    S3_GET_RATE_LIMIT,
    S3_PRICE_PER_GET,
    S3_PRICE_PER_PUT,
    S3_PUT_RATE_LIMIT,
    S3_REQUEST_LATENCY_CV,
    S3_REQUEST_LATENCY_MEAN_S,
    S3_STREAM_BYTES_PER_S,
)
from repro.storage.base import StorageService

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.network import FairShareLink
    from repro.cloud.pricing import BillingMeter
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams


class _TokenBucket:
    """Deterministic leaky bucket: admits ``rate`` requests/s sustained,
    with ``burst_s`` seconds of burst allowance. Batch admission advances
    the virtual clock by the whole batch."""

    def __init__(self, env, rate_per_s: float, burst_s: float = 1.0) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        self.env = env
        self.interval = 1.0 / rate_per_s
        self.burst = burst_s
        self._virtual_time = -float("inf")

    def admit_delay(self, count: int = 1) -> float:
        """Seconds the batch must wait for its last request's slot."""
        now = self.env.now
        earliest = max(self._virtual_time + self.interval, now - self.burst)
        self._virtual_time = earliest + (count - 1) * self.interval
        return max(0.0, self._virtual_time - now)


class S3(StorageService):
    """One S3 bucket."""

    def __init__(
        self,
        env: "Environment",
        rng: "RandomStreams",
        meter: "BillingMeter" = None,
        name: str = "s3",
        put_rate_limit: float = S3_PUT_RATE_LIMIT,
        get_rate_limit: float = S3_GET_RATE_LIMIT,
        stream_bytes_per_s: float = S3_STREAM_BYTES_PER_S,
    ) -> None:
        super().__init__(env, name, rng, meter)
        self._put_bucket = _TokenBucket(env, put_rate_limit)
        self._get_bucket = _TokenBucket(env, get_rate_limit)
        self._stream_rate = stream_bytes_per_s

    def _admit(self, count: int, write: bool) -> float:
        bucket = self._put_bucket if write else self._get_bucket
        return bucket.admit_delay(count)

    def _op_latency(self, write: bool) -> float:
        return self.rng.lognormal_around(
            "s3.request", S3_REQUEST_LATENCY_MEAN_S, S3_REQUEST_LATENCY_CV)

    def _bulk_transfer(self, nbytes: float,
                       via_links: Sequence["FairShareLink"], write: bool,
                       context=None):
        # Per-connection ceiling composed with the caller's links.
        events = [link.transfer(nbytes) for link in via_links]
        events.append(self.env.timeout(nbytes / self._stream_rate))
        for event in events:
            yield event

    def _bill_write(self, nbytes: float, count: int = 1) -> float:
        return count * S3_PRICE_PER_PUT

    def _bill_read(self, nbytes: float, count: int = 1) -> float:
        return count * S3_PRICE_PER_GET
