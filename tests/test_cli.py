"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main, make_workload


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pagerank" in out
    assert "ss_hybrid" in out


def test_workload_registry_covers_paper_workloads():
    for name in ("pagerank", "kmeans", "sparkpi", "tpcds-q5", "tpcds-q95"):
        assert name in WORKLOADS


def test_make_workload_unknown_exits():
    with pytest.raises(SystemExit, match="unknown workload"):
        make_workload("mapreduce-2004")


def test_run_single_scenario(capsys):
    assert main(["run", "--workload", "sparkpi",
                 "--scenario", "ss_R_la"]) == 0
    out = capsys.readouterr().out
    assert "SS 64 La" in out
    assert "$" in out


def test_run_with_timeline(capsys):
    assert main(["run", "--workload", "sparkpi",
                 "--scenario", "ss_R_la", "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "timeline" in out
    assert "#" in out


def test_profile_command(capsys):
    assert main(["profile", "--workload", "pagerank-small",
                 "--kind", "vm", "--parallelism", "2,8"]) == 0
    out = capsys.readouterr().out
    assert "executors" in out
    assert "all-vm" in out


def test_stream_command(capsys):
    assert main(["stream", "--hours", "0.1", "--base-cores", "8",
                 "--peak-cores", "16"]) == 0
    out = capsys.readouterr().out
    assert "SLO attainment" in out


def test_parser_rejects_bad_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scenario", "warp-drive"])


def test_common_flags_on_every_command():
    parser = build_parser()
    for command in ("run", "profile", "stream"):
        args = parser.parse_args([command, "--seed", "3", "--workers", "2",
                                  "--json", "out.jsonl"])
        assert args.seed == 3
        assert args.workers == 2
        assert args.json == "out.jsonl"


def test_run_json_export_emits_run_records(tmp_path, capsys):
    from repro.experiments import read_jsonl

    path = str(tmp_path / "records.jsonl")
    assert main(["run", "--workload", "sparkpi", "--scenario", "ss_R_la",
                 "--seed", "1", "--json", path]) == 0
    [record] = read_jsonl(path)
    assert record.spec.scenario == "ss_R_la"
    assert record.spec.workload == "sparkpi"
    assert record.spec.seed == 1
    assert record.duration_s > 0
    assert "wrote 1 RunRecord" in capsys.readouterr().out


def test_profile_json_export_and_workers(tmp_path, capsys):
    from repro.experiments import read_jsonl

    path = str(tmp_path / "profile.jsonl")
    assert main(["profile", "--workload", "pagerank-small", "--kind", "vm",
                 "--parallelism", "2,8", "--workers", "1",
                 "--json", path]) == 0
    records = read_jsonl(path)
    assert [r.spec.parallelism for r in records] == [2, 8]
    assert all(r.spec.scenario == "profile_vm" for r in records)


def test_stream_json_export(tmp_path, capsys):
    from repro.experiments import read_jsonl

    path = str(tmp_path / "stream.jsonl")
    assert main(["stream", "--hours", "0.1", "--base-cores", "8",
                 "--peak-cores", "16", "--json", path]) == 0
    [record] = read_jsonl(path)
    assert record.spec.scenario == "stream"
    assert record.metrics["jobs"] > 0
    assert "SLO attainment" in capsys.readouterr().out


def test_run_faults_flag(tmp_path, capsys):
    from repro.experiments import read_jsonl

    path = str(tmp_path / "faulted.jsonl")
    assert main(["run", "--workload", "sparkpi", "--scenario", "ss_R_vm",
                 "--workers", "1", "--json", path, "--faults",
                 '[{"kind": "executor_kill", "at_s": 5.0}]']) == 0
    [record] = read_jsonl(path)
    assert len(record.spec.faults) == 1
    assert record.spec.faults[0].kind == "executor_kill"
    assert record.metrics["faults_injected"] == 1


def test_run_faults_from_file_and_single_object(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"kind": "executor_kill", "at_s": 5.0}')
    assert main(["run", "--workload", "sparkpi", "--scenario", "ss_R_vm",
                 "--workers", "1", "--faults", f"@{plan}"]) == 0
    assert "$" in capsys.readouterr().out


def test_run_faults_rejects_bad_input(tmp_path):
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["run", "--workload", "sparkpi", "--scenario", "ss_R_vm",
              "--faults", "{nope"])
    with pytest.raises(SystemExit, match="invalid fault plan"):
        main(["run", "--workload", "sparkpi", "--scenario", "ss_R_vm",
              "--faults", '[{"kind": "meteor_strike"}]'])
    with pytest.raises(SystemExit, match="cannot read fault plan"):
        main(["run", "--workload", "sparkpi", "--scenario", "ss_R_vm",
              "--faults", f"@{tmp_path}/missing.json"])
