"""Shared mini-cluster builders for the Spark-engine tests."""

from repro.cloud import CloudProvider, LambdaConfig
from repro.cloud.pricing import BillingMeter
from repro.simulation import Environment, RandomStreams, TraceRecorder
from repro.spark import LocalShuffleBackend, SparkConf, SparkDriver
from repro.spark.rdd import RDDBuilder, reset_id_counters
from repro.storage import HDFS
from repro.spark.shuffle import ExternalShuffleBackend


class MiniCluster:
    """env + provider + driver + convenience executor creation."""

    def __init__(self, seed=0, conf=None, backend="local", trace=None,
                 no_jitter=True):
        reset_id_counters()
        self.env = Environment()
        self.rng = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceRecorder()
        self.meter = BillingMeter()
        self.provider = CloudProvider(self.env, self.rng, trace=self.trace,
                                      meter=self.meter)
        conf = conf if conf is not None else SparkConf()
        if no_jitter:
            conf = conf.set("spark.sim.task.jitter", 0.0)
        self.conf = conf
        self.hdfs = None
        if backend == "local":
            shuffle = LocalShuffleBackend()
        elif backend == "hdfs":
            hdfs_vm = self.provider.request_vm("m4.xlarge", already_running=True,
                                               name="hdfs-node")
            self.hdfs = HDFS(self.env, [hdfs_vm], self.rng, self.meter)
            shuffle = ExternalShuffleBackend(self.hdfs, per_pair_objects=False)
        else:
            raise ValueError(f"unknown backend {backend}")
        self.driver = SparkDriver(self.env, self.conf, self.rng, shuffle,
                                  trace=self.trace)
        self.builder = RDDBuilder()

    def vm_executors(self, count, itype="m4.4xlarge"):
        vm = self.provider.request_vm(itype, already_running=True)
        return [self.driver.add_vm_executor(vm) for _ in range(count)]

    def lambda_executors(self, count, memory_mb=1536):
        executors = []
        for _ in range(count):
            fn = self.provider.invoke_lambda(LambdaConfig(memory_mb=memory_mb))
            # Tests create executors synchronously: treat start as done.
            self.env.run(until=fn.ready)
            executors.append(self.driver.add_lambda_executor(fn))
        return executors

    def run_job(self, final_rdd):
        return self.driver.run_job(final_rdd)


def single_stage_rdd(builder, tasks=8, seconds=10.0):
    return builder.source("compute", partitions=tasks, compute_seconds=seconds)


def two_stage_rdd(builder, maps=8, reduces=8, map_seconds=5.0,
                  reduce_seconds=2.0, shuffle_bytes=80 * 1024 * 1024):
    mapped = builder.source("map", partitions=maps, compute_seconds=map_seconds)
    return builder.shuffle(mapped, "reduce", partitions=reduces,
                           shuffle_bytes=shuffle_bytes,
                           compute_seconds=reduce_seconds)
