"""Ablation: the shuffle-substrate design space of §2/§4.3.

Runs one fixed hybrid job (VM + Lambda executors) over every shuffle
substrate the paper discusses — HDFS (SplitServe), S3 both as the
idealized modern service ("s3") and as 2019-era Qubole drove it
("s3-2019": per-pair object flood, eventual-consistency polling,
throttle collapse), SQS (Flint), Redis (Locus) — and reports time and
dollar cost.

The nuance this ablation surfaces: batched, strongly consistent S3 is
actually competitive at this job's scale — which is consistent with the
paper's own remark that "SplitServe can use any other similar storage
facility". What SplitServe's HDFS choice beat was the S3 *of its time
as its competitors used it*: the s3-2019 row. Redis matches HDFS on
speed but its always-on cache node dominates cost; SQS triples request
fees on the read path.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.cloud import CloudProvider
from repro.cloud.pricing import BillingMeter
from repro.simulation import Environment, RandomStreams
from repro.spark import SparkConf, SparkDriver
from repro.spark.shuffle import ExternalShuffleBackend
from repro.storage import HDFS, S3, RedisStore, SQSQueue
from repro.workloads import SyntheticWorkload
from benchmarks.conftest import run_once

#: A shuffle-heavy 4-stage job: 16 cores wanted, 4 on VMs, 12 on Lambdas.
WORKLOAD = dict(stages=4, core_seconds_per_stage=160.0,
                shuffle_bytes_per_boundary=400 * 1024 * 1024,
                required_cores=16, available_cores=4)


def run_with_backend(backend_name: str, seed: int = 0):
    env = Environment()
    rng = RandomStreams(seed)
    meter = BillingMeter()
    provider = CloudProvider(env, rng, meter=meter)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    redis = None
    if backend_name == "hdfs":
        storage = HDFS(env, [master], rng, meter)
        backend = ExternalShuffleBackend(storage)
    elif backend_name == "s3":
        storage = S3(env, rng, meter)
        backend = ExternalShuffleBackend(storage, per_pair_objects=True)
    elif backend_name == "s3-2019":
        from repro.core.scenarios import (
            QUBOLE_CONSISTENCY_MEAN_S,
            QUBOLE_S3_EFFECTIVE_RATE,
            QUBOLE_S3_STREAM_BYTES_PER_S,
        )
        from repro.spark.shuffle import QuboleS3ShuffleBackend

        storage = S3(env, rng, meter, name="s3",
                     put_rate_limit=QUBOLE_S3_EFFECTIVE_RATE,
                     get_rate_limit=QUBOLE_S3_EFFECTIVE_RATE,
                     stream_bytes_per_s=QUBOLE_S3_STREAM_BYTES_PER_S)
        backend = QuboleS3ShuffleBackend(
            storage, consistency_mean_s=QUBOLE_CONSISTENCY_MEAN_S)
    elif backend_name == "sqs":
        storage = SQSQueue(env, rng, meter)
        backend = ExternalShuffleBackend(storage, per_pair_objects=True)
    elif backend_name == "redis":
        redis = RedisStore(env, rng, meter)
        backend = ExternalShuffleBackend(redis)
    else:
        raise ValueError(backend_name)

    driver = SparkDriver(env, SparkConf(), rng, backend)
    workload = SyntheticWorkload(**WORKLOAD)
    worker = provider.request_vm("m4.4xlarge", already_running=True)
    for _ in range(4):
        driver.add_vm_executor(worker)
    lambdas = []
    for _ in range(12):
        fn = provider.invoke_lambda()
        lambdas.append(fn)

        def attach(env, fn=fn):
            yield fn.ready
            driver.add_lambda_executor(fn)

        env.process(attach(env))
    job = driver.submit(workload.build(16))
    env.run(until=job.done)
    end = env.now
    meter.bill_vm("worker", worker.itype, 0.0, end, 4 / worker.itype.vcpus)
    for fn in lambdas:
        provider.release_lambda(fn)
        provider.bill_lambda_usage(fn)
    if redis is not None:
        redis.bill_node_hours(end)
    return job.duration, meter.total(), meter.breakdown()


def run_ablation():
    return {name: run_with_backend(name)
            for name in ("hdfs", "s3", "s3-2019", "sqs", "redis")}


def test_ablation_shuffle_backend(benchmark, emit):
    results = run_once(benchmark, run_ablation)
    rows = []
    for name, (dur, cost, breakdown) in results.items():
        storage_cost = sum(v for k, v in breakdown.items()
                           if k.startswith("storage:"))
        rows.append([name, f"{dur:.1f}", f"${cost:.4f}",
                     f"${storage_cost:.4f}"])
    emit("Ablation — shuffle substrate for a fixed hybrid job",
         format_table(["substrate", "time (s)", "total cost",
                       "storage cost"], rows))

    hdfs_t, hdfs_c, _ = results["hdfs"]
    s3_t, s3_c, s3_b = results["s3"]
    q_t, q_c, _ = results["s3-2019"]
    sqs_t, sqs_c, sqs_b = results["sqs"]
    redis_t, redis_c, _ = results["redis"]
    # Redis is the fastest data plane but by far the priciest run.
    assert redis_t <= hdfs_t * 1.1
    assert redis_c > 3 * hdfs_c
    # HDFS beats the S3 its FaaS competitors actually had, which in
    # turn is far worse than the idealized modern service.
    assert q_t > 1.2 * hdfs_t
    assert q_t > 1.5 * s3_t
    # S3's request fees exceed HDFS's (HDFS requests are free).
    assert s3_b.get("storage:s3", 0) > 0
    # SQS triples request fees on the read path vs its own write path.
    assert sqs_b.get("storage:sqs", 0) > s3_b.get("storage:s3", 0)
    # Idealized modern S3 is competitive — the honest nuance.
    assert s3_t < 1.2 * hdfs_t
