"""Unit tests for the serve observability plane.

Everything here runs against the pure pieces — tracer, rolling
histogram, SLO tracker, Prometheus renderer, profiler — with injected
fake clocks, no ServeRuntime. The integration halves (live ``/metrics``
scrapes, end-to-end span trees with retries and breaker flips) live in
``tests/api/test_metrics_endpoint.py`` and ``tests/api/test_tracing.py``.
"""

import threading
import time

import pytest

from repro.observability.serve_obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricSample,
    RollingHistogram,
    SamplingProfiler,
    ServeTracer,
    SLOConfig,
    SLOTracker,
    deterministic_metric_lines,
    orphan_spans,
    prom_name,
    render_prometheus,
    render_span_tree,
    rolling_histogram_families,
    span_tree,
    span_tree_fingerprint,
    trace_id_for_job,
)


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeHub:
    """Duck-typed hub: just records (time, category, name, fields)."""

    def __init__(self) -> None:
        self.events = []

    def record(self, t, category, name, **fields):
        self.events.append((category, name, fields))


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_trace_id_is_deterministic():
    assert trace_id_for_job("job-000001") == trace_id_for_job("job-000001")
    assert trace_id_for_job("job-000001") != trace_id_for_job("job-000002")
    assert len(trace_id_for_job("job-000001")) == 16


def _happy_path(tracer: ServeTracer, clock: FakeClock,
                job_id: str = "job-000001") -> str:
    tracer.begin_job(job_id, "sparkpi", "spec")
    clock.advance(0.5)
    tracer.job_started(job_id, attempt=1)
    clock.advance(2.0)
    tracer.job_finished(job_id, "completed", attempts=1)
    return tracer.trace_id(job_id)


def test_tracer_happy_path_tree():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    trace_id = _happy_path(tracer, clock)
    spans = tracer.spans("job-000001")
    assert [s["name"] for s in spans] == ["job", "admission", "attempt-1"]
    assert all(s["trace_id"] == trace_id for s in spans)
    assert orphan_spans(spans) == []
    root, admission, attempt = spans
    assert root["parent_span_id"] is None
    assert admission["parent_span_id"] == root["span_id"]
    assert attempt["parent_span_id"] == root["span_id"]
    assert all(s["status"] == "ok" for s in spans)
    # Admission closed at job start, attempt at finish, measured on the
    # injected clock.
    assert admission["end_s"] - admission["start_s"] == pytest.approx(0.5)
    assert attempt["end_s"] - attempt["start_s"] == pytest.approx(2.0)
    assert root["end_s"] - root["start_s"] == pytest.approx(2.5)


def test_tracer_retry_path_tree():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    tracer.begin_job("job-000007", "sparkpi", "spec")
    tracer.job_started("job-000007", attempt=1)
    clock.advance(1.0)
    tracer.job_retrying("job-000007", attempt=1, backoff_s=0.25,
                        error="worker crash")
    clock.advance(0.25)
    tracer.job_started("job-000007", attempt=2)
    clock.advance(1.0)
    tracer.job_finished("job-000007", "completed", attempts=2)
    spans = tracer.spans("job-000007")
    assert [s["name"] for s in spans] == [
        "job", "admission", "attempt-1", "retry-wait-1", "attempt-2"]
    by_name = {s["name"]: s for s in spans}
    assert by_name["attempt-1"]["status"] == "retry"
    assert by_name["attempt-2"]["status"] == "ok"
    assert by_name["retry-wait-1"]["status"] == "ok"
    assert by_name["job"]["attrs"]["attempts"] == 2
    assert orphan_spans(spans) == []


def test_tracer_failed_job_status():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    tracer.begin_job("job-000009", "sparkpi", "spec")
    tracer.job_started("job-000009", attempt=1)
    tracer.job_finished("job-000009", "failed", attempts=1, error="boom")
    by_name = {s["name"]: s for s in tracer.spans("job-000009")}
    assert by_name["job"]["status"] == "error"
    assert by_name["job"]["attrs"]["error"] == "boom"
    assert by_name["attempt-1"]["status"] == "error"


def test_tracer_finish_is_idempotent():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    _happy_path(tracer, clock)
    before = tracer.spans("job-000001")
    tracer.job_finished("job-000001", "completed", attempts=1)
    assert tracer.spans("job-000001") == before


def test_tracer_annotations_and_active_traces():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    tracer.begin_job("job-000001", "sparkpi", "spec")
    tracer.begin_job("job-000002", "sparkpi", "spec")
    assert len(tracer.active_trace_ids()) == 2
    # annotate_active lands one zero-length event on *every* open trace
    assert tracer.annotate_active("breaker:closed->open",
                                  state="open") == 2
    tracer.annotate_job("job-000001", "journal:submitted")
    tracer.job_finished("job-000001", "completed", attempts=1)
    assert tracer.annotate_active("breaker:open->closed") == 1
    spans1 = {s["name"] for s in tracer.spans("job-000001")}
    spans2 = {s["name"] for s in tracer.spans("job-000002")}
    assert "breaker:closed->open" in spans1
    assert "journal:submitted" in spans1
    assert "breaker:open->closed" not in spans1  # closed before the flip
    assert "breaker:open->closed" in spans2
    # Span events are zero-length and parented under the root.
    event = next(s for s in tracer.spans("job-000001")
                 if s["name"] == "journal:submitted")
    assert event["start_s"] == event["end_s"]
    assert orphan_spans(tracer.spans("job-000001")) == []


def test_tracer_publishes_span_boundaries_to_hub():
    hub = FakeHub()
    tracer = ServeTracer(hub, clock=FakeClock())
    _happy_path(tracer, FakeClock())
    categories = {category for category, _, _ in hub.events}
    assert categories == {"trace"}
    names = [name for _, name, _ in hub.events]
    assert "span_start" in names and "span_end" in names
    for _, _, fields in hub.events:
        assert set(fields) >= {"trace", "span", "parent", "span_name",
                               "status"}


def test_tracer_evicts_only_closed_traces():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock, max_traces=2)
    for i in range(1, 5):
        job = f"job-{i:06d}"
        tracer.begin_job(job, "sparkpi", "spec")
        tracer.job_started(job, attempt=1)
        tracer.job_finished(job, "completed", attempts=1)
    tracer.begin_job("job-000099", "sparkpi", "spec")  # stays open
    assert tracer.spans("job-000099")
    # The open trace survives, old closed ones were evicted.
    assert tracer.spans("job-000001") == []


def test_span_tree_fingerprint_ignores_timing_but_not_structure():
    fast, slow = FakeClock(), FakeClock()
    t1 = ServeTracer(clock=fast)
    t2 = ServeTracer(clock=slow)
    _happy_path(t1, fast)
    slow.advance(1000.0)  # same structure, very different wall clock
    _happy_path(t2, slow)
    assert (span_tree_fingerprint(t1.spans("job-000001"))
            == span_tree_fingerprint(t2.spans("job-000001")))
    t3 = ServeTracer(clock=FakeClock())
    t3.begin_job("job-000001", "sparkpi", "spec")
    t3.job_started("job-000001", attempt=1)
    t3.job_retrying("job-000001", attempt=1, backoff_s=0.1, error="x")
    t3.job_started("job-000001", attempt=2)
    t3.job_finished("job-000001", "completed", attempts=2)
    assert (span_tree_fingerprint(t1.spans("job-000001"))
            != span_tree_fingerprint(t3.spans("job-000001")))


def test_render_span_tree_rejects_orphans():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    _happy_path(tracer, clock)
    spans = tracer.spans("job-000001")
    out = render_span_tree(spans)
    assert "trace " in out and "job" in out and "attempt-1" in out
    broken = [dict(s) for s in spans]
    broken[1]["parent_span_id"] = "deadbeefdeadbeef"
    assert orphan_spans(broken)
    with pytest.raises(ValueError):
        render_span_tree(broken)


def test_span_tree_nests_children():
    clock = FakeClock()
    tracer = ServeTracer(clock=clock)
    _happy_path(tracer, clock)
    roots = span_tree(tracer.spans("job-000001"))
    assert len(roots) == 1
    assert [c["name"] for c in roots[0]["children"]] == [
        "admission", "attempt-1"]


# ---------------------------------------------------------------------------
# Rolling histogram
# ---------------------------------------------------------------------------

def test_rolling_histogram_quantiles():
    clock = FakeClock()
    hist = RollingHistogram(window_s=60.0, slices=6, clock=clock)
    for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 100):
        hist.observe(ms / 1e3)
    counts, total, total_sum = hist.window_counts()
    assert total == 10
    assert total_sum == pytest.approx(0.145)
    assert sum(counts) == 10
    # Upper-bound estimates land on bucket bounds.
    assert hist.quantile(0.50) in DEFAULT_LATENCY_BUCKETS
    assert hist.quantile(0.50) <= 0.01
    assert hist.quantile(0.99) >= 0.1


def test_rolling_histogram_window_expiry():
    clock = FakeClock()
    hist = RollingHistogram(window_s=6.0, slices=6, clock=clock)
    hist.observe(0.005)
    clock.advance(3.0)
    hist.observe(0.005)
    _, total, _ = hist.window_counts()
    assert total == 2
    clock.advance(4.0)  # first observation's slice has rolled out
    _, total, _ = hist.window_counts()
    assert total == 1
    clock.advance(60.0)  # whole window expires; lifetime totals stay
    _, total, _ = hist.window_counts()
    assert total == 0
    assert hist.total_count == 2
    assert hist.quantile(0.99) == 0.0  # empty window


def test_rolling_histogram_validates_config():
    with pytest.raises(ValueError):
        RollingHistogram(window_s=0.0)
    with pytest.raises(ValueError):
        RollingHistogram(slices=0)


# ---------------------------------------------------------------------------
# SLO tracker
# ---------------------------------------------------------------------------

def test_slo_config_validates():
    with pytest.raises(ValueError):
        SLOConfig(availability_target=1.5)
    with pytest.raises(ValueError):
        SLOConfig(window_s=-1.0)
    with pytest.raises(ValueError):
        SLOConfig(latency_p99_s=0.0)


def test_slo_burn_rates_from_rejections():
    clock = FakeClock()
    tracker = SLOTracker(SLOConfig(window_s=60.0,
                                   availability_target=0.99,
                                   latency_p99_s=0.25,
                                   max_burn_rate=14.4), clock=clock)
    assert tracker.burn_rates() == {"availability": 0.0, "latency": 0.0}
    assert tracker.healthy()
    for _ in range(98):
        tracker.record_admission(True, 0.001)
    tracker.record_admission(False, 0.0)
    tracker.record_admission(False, 0.0)
    burns = tracker.burn_rates()
    # 2 bad of 100 against a 1% budget: burning 2x the budget rate.
    assert burns["availability"] == pytest.approx(2.0)
    assert burns["latency"] == 0.0
    assert tracker.healthy()  # 2x is under the 14.4x page threshold
    for _ in range(30):
        tracker.record_admission(False, 0.0)
    assert not tracker.healthy()


def test_slo_latency_objective_burns_independently():
    clock = FakeClock()
    tracker = SLOTracker(SLOConfig(window_s=60.0,
                                   availability_target=0.99,
                                   latency_p99_s=0.25,
                                   max_burn_rate=14.4), clock=clock)
    for _ in range(99):
        tracker.record_admission(True, 0.001)
    tracker.record_admission(True, 5.0)  # accepted but over the bound
    burns = tracker.burn_rates()
    assert burns["availability"] == 0.0
    assert burns["latency"] == pytest.approx(1.0)
    snap = tracker.snapshot()
    # good/bad sum both objective windows: 100 accepted + 99 on-time.
    assert snap["good_events"] == 199
    assert snap["bad_events"] == 1  # the one slow admission
    assert snap["healthy"] is True


def test_slo_job_outcomes_burn_availability():
    clock = FakeClock()
    tracker = SLOTracker(clock=clock)
    tracker.record_job_outcome(True)
    tracker.record_job_outcome(False)
    assert tracker.burn_rates()["availability"] > 0.0
    clock.advance(120.0)  # outside the window: budget recovers
    assert tracker.burn_rates()["availability"] == 0.0


# ---------------------------------------------------------------------------
# Prometheus rendering
# ---------------------------------------------------------------------------

def test_prom_name_sanitizes():
    assert prom_name("serve.jobs.running") == "repro_serve_jobs_running"
    assert prom_name("a-b c") == "repro_a_b_c"


def test_render_prometheus_formats_and_sorts():
    fams = [
        MetricFamily(name="repro_z", type="gauge", help="zee",
                     samples=[MetricSample(1.5)]),
        MetricFamily(name="repro_a_total", type="counter",
                     help='with "quotes"\nand newline',
                     samples=[MetricSample(3.0,
                                           labels=(("k", 'v"x'),))]),
    ]
    text = render_prometheus(fams)
    lines = text.splitlines()
    # Families are sorted by name; each gets HELP + TYPE + samples.
    assert lines[0] == '# HELP repro_a_total with "quotes"\\nand newline'
    assert lines[1] == "# TYPE repro_a_total counter"
    assert lines[2] == 'repro_a_total{k="v\\"x"} 3'
    assert lines[3] == "# HELP repro_z zee"
    assert lines[5] == "repro_z 1.5"
    assert text.endswith("\n")
    with pytest.raises(ValueError):
        render_prometheus([MetricFamily(name="x", type="wat", help="",
                                        samples=[])])


def test_rolling_histogram_families_are_cumulative():
    clock = FakeClock()
    hist = RollingHistogram(window_s=60.0, clock=clock)
    for v in (0.001, 0.002, 0.5):
        hist.observe(v)
    fams = rolling_histogram_families("repro_x_seconds", hist, "help")
    hist_fam = fams[0]
    assert hist_fam.type == "histogram"
    bucket_samples = [s for s in hist_fam.samples
                      if s.suffix == "_bucket"]
    values = [s.value for s in bucket_samples]
    assert values == sorted(values)  # cumulative counts
    assert bucket_samples[-1].labels == (("le", "+Inf"),)
    assert bucket_samples[-1].value == 3
    names = [f.name for f in fams]
    assert names == ["repro_x_seconds", "repro_x_seconds_p50",
                     "repro_x_seconds_p95", "repro_x_seconds_p99"]


def test_deterministic_metric_lines_filters_wall_clock_families():
    text = ("# HELP repro_serve_jobs_submitted_total x\n"
            "# TYPE repro_serve_jobs_submitted_total counter\n"
            "repro_serve_jobs_submitted_total 2\n"
            "repro_uptime_seconds 1.5\n"
            "repro_serve_slo_healthy 1\n"
            "repro_serve_admission_latency_seconds_p99 0.1\n")
    assert deterministic_metric_lines(text) == [
        "repro_serve_jobs_submitted_total 2"]


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------

def test_profiler_samples_a_busy_thread():
    stop = threading.Event()

    def spin():
        while not stop.is_set():
            sum(range(100))

    worker = threading.Thread(target=spin, daemon=True)
    worker.start()
    profiler = SamplingProfiler(interval_s=0.001)
    try:
        profiler.start(worker.ident)
        deadline = time.monotonic() + 5.0
        while profiler.sample_count < 20 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        profiler.stop()
        stop.set()
        worker.join(timeout=2.0)
    assert profiler.sample_count >= 20
    frames = profiler.top_frames()
    assert frames and frames[0][1] >= 1
    # This test module is outside src/repro: everything is external.
    assert set(profiler.bucket_fractions()) == {"external"}
    metrics = profiler.metrics()
    assert metrics["profile.samples"] == profiler.sample_count
    assert any(k.startswith("profile.bucket.") for k in metrics)
    assert any(k.startswith("profile.frame.") for k in metrics)


def test_profiler_stop_is_idempotent_and_validates():
    profiler = SamplingProfiler(interval_s=0.001)
    profiler.stop()  # never started: no-op
    with SamplingProfiler(interval_s=0.001):
        pass
    with pytest.raises(ValueError):
        SamplingProfiler(interval_s=0.0)
