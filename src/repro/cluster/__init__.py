"""The long-lived cluster runtime: shared simulation plumbing, executor
pools, and multi-application scheduling.

The §5.1 scenario driver used to hand-wire a fresh Environment,
provider, bus, meter, and a single :class:`~repro.spark.application
.SparkDriver` per run, which made concurrent jobs unrepresentable. This
package extracts that plumbing into a reusable stack:

- :class:`~repro.cluster.runtime.ClusterRuntime` — owns the Environment,
  RandomStreams, CloudProvider, BillingMeter, EventBus, MetricsRegistry,
  and fault arming for one simulated cluster's lifetime;
- :mod:`~repro.cluster.pool` — the executor-pool layer: VM-attach,
  Lambda-attach, and segue helpers shared by every scenario, plus
  :class:`~repro.cluster.pool.ExecutorPool`, the cluster-owned capacity
  that concurrently running applications share;
- :mod:`~repro.cluster.pools` — FIFO/FAIR scheduler pools with Spark's
  minShare + weight semantics, and the pooled task scheduler that
  re-sorts offers so shares rebalance at task grain;
- :mod:`~repro.cluster.apps` — the admission queue turning job arrivals
  into :class:`~repro.spark.application.SparkDriver`s on the shared
  scheduler;
- :mod:`~repro.cluster.multijob` — the seeded job-arrival workload
  (Poisson arrivals of mixed jobs) reported through ``RunRecord``.
"""

from repro.cluster.apps import AppManager, ClusterApp
from repro.cluster.pool import ExecutorPool, add_executors_on_vms
from repro.cluster.pools import (
    PoolConfig,
    PooledTaskScheduler,
    SchedulerPools,
)
from repro.cluster.runtime import ClusterRuntime

__all__ = [
    "AppManager",
    "ClusterApp",
    "ClusterRuntime",
    "ExecutorPool",
    "PoolConfig",
    "PooledTaskScheduler",
    "SchedulerPools",
    "add_executors_on_vms",
]
