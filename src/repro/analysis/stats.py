"""Small statistics helpers for experiment reporting.

Figure 8 reports "confidence error bars ... one sample standard
deviation from 15 independent trials"; these helpers compute exactly
that plus bootstrap confidence intervals for the benches that want a
distribution-free interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Mean, spread, and a confidence interval for one sample."""

    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float

    def format(self, unit: str = "s") -> str:
        return (f"{self.mean:.1f}{unit} +/- {self.stdev:.1f} "
                f"[{self.ci_low:.1f}, {self.ci_high:.1f}]")


def summarize(values: Sequence[float], confidence: float = 0.95,
              bootstrap_rounds: int = 2000, seed: int = 0) -> SampleSummary:
    """Mean, sample stdev, and a bootstrap percentile CI of the mean."""
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    resampled = rng.choice(data, size=(bootstrap_rounds, data.size),
                           replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled, [alpha, 1.0 - alpha])
    return SampleSummary(
        n=int(data.size),
        mean=float(data.mean()),
        stdev=float(data.std(ddof=1)),
        ci_low=float(low),
        ci_high=float(high),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Sample stdev over mean — the stability metric the seed-sweep
    tests assert on."""
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples")
    mean = data.mean()
    if mean == 0:
        raise ValueError("mean is zero; CV undefined")
    return float(data.std(ddof=1) / mean)


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline, guarded."""
    if baseline == 0 or math.isnan(baseline):
        raise ValueError("baseline must be nonzero and finite")
    return (value - baseline) / baseline
