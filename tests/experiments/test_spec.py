"""Tests for ExperimentSpec: hashing, canonicalization, round trips."""

import pytest

from repro.experiments import ExperimentSpec
from repro.spark.config import SparkConf
from repro.workloads.generators import SyntheticWorkload

TINY = dict(stages=2, core_seconds_per_stage=8.0,
            shuffle_bytes_per_boundary=1024.0 * 1024,
            required_cores=4, available_cores=2)


def test_params_canonicalized_order_insensitive():
    a = ExperimentSpec("synthetic", "ss_hybrid",
                       workload_params={"stages": 2, "required_cores": 4})
    b = ExperimentSpec("synthetic", "ss_hybrid",
                       workload_params={"required_cores": 4, "stages": 2})
    assert a == b
    assert hash(a) == hash(b)
    assert a.spec_hash() == b.spec_hash()


def test_spec_hash_distinguishes_every_field():
    base = ExperimentSpec("kmeans", "ss_R_la", seed=0)
    assert base.spec_hash() != base.with_(seed=1).spec_hash()
    assert base.spec_hash() != base.with_(workload="sparkpi").spec_hash()
    assert base.spec_hash() != base.with_(scenario="ss_R_vm").spec_hash()
    assert (base.spec_hash() !=
            base.with_(conf_overrides={"spark.speculation": True}).spec_hash())


def test_spec_hash_stable_across_processes_inputs():
    # Hash is content-derived, not id/salt-derived: a reconstructed
    # equal spec hashes identically.
    spec = ExperimentSpec("synthetic", "spark_R_vm", seed=7,
                          workload_params=TINY)
    clone = ExperimentSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()


def test_round_trip_preserves_all_fields():
    spec = ExperimentSpec(
        "synthetic", "ss_hybrid_segue", seed=3, workload_params=TINY,
        conf_overrides={"spark.lambda.executor.timeout": 60.0},
        segue_at_s=45.0, extra={"note": "x"})
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec
    assert ExperimentSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


def test_make_workload_and_conf():
    spec = ExperimentSpec("synthetic", "spark_R_vm", workload_params=TINY,
                          conf_overrides={"spark.speculation": True})
    workload = spec.make_workload()
    assert isinstance(workload, SyntheticWorkload)
    assert workload.required_cores == 4
    conf = spec.conf()
    assert isinstance(conf, SparkConf)
    assert conf.get("spark.speculation") is True


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        ExperimentSpec("kmeans", "warp-drive")


def test_malformed_custom_scenario_rejected():
    with pytest.raises(ValueError, match="custom scenario"):
        ExperimentSpec("kmeans", "custom:no_function_part")


def test_parallelism_only_for_profiles():
    ExperimentSpec("pagerank-small", "profile_lambda", parallelism=4)
    with pytest.raises(ValueError, match="parallelism"):
        ExperimentSpec("kmeans", "ss_R_la", parallelism=4)
    with pytest.raises(ValueError, match="positive"):
        ExperimentSpec("kmeans", "profile_vm", parallelism=0)


def test_unknown_workload_surfaces_at_build_time():
    spec = ExperimentSpec("mapreduce-2004", "ss_R_la")
    with pytest.raises(ValueError, match="unknown workload"):
        spec.make_workload()


# ---------------------------------------------------------------------------
# Split policy in the spec hash (and therefore the result cache key)
# ---------------------------------------------------------------------------

def test_policy_folds_into_spec_hash():
    base = ExperimentSpec("sparkpi", "ss_planned",
                          policy={"vm_cores": 4, "lambda_cores": 60})
    other = base.with_(policy={"vm_cores": 0, "lambda_cores": 64})
    named = base.with_(policy={"name": "planner"})
    assert base.spec_hash() != other.spec_hash()
    assert base.spec_hash() != named.spec_hash()
    assert base != other


def test_policy_is_order_insensitive_and_round_trips():
    a = ExperimentSpec("sparkpi", "ss_planned",
                       policy={"vm_cores": 4, "lambda_cores": 60,
                               "slo_s": 60.0})
    b = ExperimentSpec("sparkpi", "ss_planned",
                       policy={"slo_s": 60.0, "lambda_cores": 60,
                               "vm_cores": 4})
    assert a == b
    assert a.spec_hash() == b.spec_hash()
    clone = ExperimentSpec.from_dict(a.to_dict())
    assert clone == a
    assert clone.spec_hash() == a.spec_hash()


def test_policyless_spec_serialization_unchanged():
    """Pre-planner specs must keep their canonical form (and hence
    their cache keys and golden hashes): ``policy`` is only serialized
    when set."""
    spec = ExperimentSpec("sparkpi", "ss_R_vm")
    assert "policy" not in spec.to_dict()
    assert spec.with_(policy={}).spec_hash() == spec.spec_hash()


def test_cache_never_cross_serves_split_policies(tmp_path):
    """A record produced under one split decision must never satisfy a
    lookup for a different decision — the regression the ``policy``
    hash field exists to prevent."""
    from repro.experiments.cache import ResultCache
    from repro.experiments.records import RunRecord

    cache = ResultCache(str(tmp_path))
    spec_a = ExperimentSpec("sparkpi", "ss_planned",
                            policy={"vm_cores": 4, "lambda_cores": 60})
    spec_b = spec_a.with_(policy={"vm_cores": 0, "lambda_cores": 64})
    record = RunRecord(spec=spec_a, workload="sparkpi", duration_s=1.0)
    cache.put(spec_a, record)
    assert cache.get(spec_a) is not None
    assert cache.get(spec_b) is None
    # The same shape under a policy never collides with no policy.
    assert cache.get(spec_a.with_(policy={})) is None
