"""Discrete-event simulation kernel.

A compact, dependency-free process-based DES kernel in the style of SimPy.
Every higher layer of the reproduction (cloud substrate, storage services,
the Spark-like engine, SplitServe itself) runs on this kernel.

Public surface:

- :class:`~repro.simulation.kernel.Environment` — simulation clock and
  event loop.
- :class:`~repro.simulation.events.Event`, :class:`Timeout`,
  :class:`Process`, :class:`Condition` (``AllOf`` / ``AnyOf``),
  :class:`Interrupt` — the event vocabulary.
- :class:`~repro.simulation.resources.Resource`, :class:`Container`,
  :class:`Store` — shared-resource primitives.
- :class:`~repro.simulation.rng.RandomStreams` — reproducible named RNG
  streams.
- :class:`~repro.simulation.tracing.TraceRecorder` — structured event
  trace used by the analysis layer.
- :class:`~repro.simulation.faults.FaultSpec`, :class:`FaultPlan`,
  :class:`FaultInjector`, :class:`RecoveryAccounting` — the seeded
  fault-injection harness (loaded lazily: the injector drives the upper
  layers, so importing it eagerly here would be circular).
"""

from repro.simulation.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.simulation.kernel import Environment, SimulationError
from repro.simulation.resources import Container, Resource, Store
from repro.simulation.rng import RandomStreams
from repro.simulation.tracing import TraceRecord, TraceRecorder

_LAZY_FAULT_EXPORTS = (
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RecoveryAccounting",
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
    *_LAZY_FAULT_EXPORTS,
]


def __getattr__(name: str):
    if name in _LAZY_FAULT_EXPORTS:
        from repro.simulation import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
