"""Chaos semantics of the serve plane: retries, deadlines, the
breaker, journal recovery, and graceful drain.

Each test constructs its fault deterministically (chaos tokens applied
under the admission lock, gated ``custom:`` scenarios) instead of
racing timers, and asserts the recovery invariant the robustness issue
pins: every submitted job reaches a terminal state, transient failures
are retried within their bounded budget, the breaker opens and
recovers, and a killed process's journal restores its queued jobs
exactly once with byte-identical results.
"""

import threading
import time

import pytest

from repro.api import schemas
from repro.api.resilience import BREAKER_CLOSED, BREAKER_OPEN
from repro.api.service import BackpressureError, ServeConfig, ServeRuntime
from repro.experiments.runner import run_spec
from repro.observability.categories import (
    CAT_SERVE,
    EV_BREAKER_CLOSED,
    EV_BREAKER_OPENED,
    EV_DRAIN_COMPLETED,
    EV_DRAIN_STARTED,
    EV_JOB_DEADLINE_EXCEEDED,
    EV_JOB_RECOVERED,
    EV_JOB_RETRYING,
)

#: Gates for the blocking scenario, keyed per test (see test_admission).
_GATES = {}


def _gate(name: str) -> threading.Event:
    return _GATES.setdefault(name, threading.Event())


def blocking_job(spec):
    """``custom:`` scenario: hold a running slot until released."""
    gate = _GATES[dict(spec.extra)["gate"]]
    assert gate.wait(timeout=30.0), "gate never released"
    return {"workload": "blocker", "duration_s": 1.0, "cost": 0.0}


def broken_job(spec):
    """``custom:`` scenario: a deterministic bug — never retryable."""
    raise ValueError("deterministic scenario bug")


def _blocker(seed: int, gate: str, **extra) -> dict:
    return {"workload": "blocker",
            "scenario": "custom:tests.api.test_chaos:blocking_job",
            "seed": seed, "extra": {"gate": gate}, **extra}


def _sparkpi(seed: int) -> dict:
    return {"workload": "sparkpi", "scenario": "spark_R_vm", "seed": seed}


def _fast_config(**overrides) -> ServeConfig:
    defaults = dict(max_concurrent=2, max_queue=16, seed=0, pool_cores=4,
                    retry_base_backoff_s=0.01)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _serve_events(service, name):
    return [e for e in service.hub.snapshot(category=CAT_SERVE)
            if e["name"] == name]


# ---------------------------------------------------------------------------
# Retry path
# ---------------------------------------------------------------------------

def test_transient_crash_is_retried_to_completion():
    service = ServeRuntime(_fast_config()).start()
    try:
        service.inject_chaos({"crash_next_submissions": 1})
        status = service.submit(_sparkpi(seed=7))
        final = service.wait_for(status.job_id, timeout=60.0)
        assert final.state == schemas.JOB_COMPLETED, final.error
        assert final.attempts == 2
        assert final.failure is None
        assert final.duration_s > 0

        retrying = _serve_events(service, EV_JOB_RETRYING)
        assert len(retrying) == 1
        assert retrying[0]["fields"]["job"] == status.job_id
        assert retrying[0]["fields"]["backoff_s"] > 0
        snap = service.cluster.metrics.snapshot(prefix="serve.")
        assert snap["serve.jobs.retries"] == 1
    finally:
        service.close()


def test_retries_exhausted_is_terminal_failed():
    service = ServeRuntime(_fast_config(max_attempts=2)).start()
    try:
        # Budget larger than the retry cap: every execution crashes.
        service.inject_chaos({"kill_workers": 10})
        status = service.submit(_sparkpi(seed=3))
        final = service.wait_for(status.job_id, timeout=60.0)
        assert final.state == schemas.JOB_FAILED
        assert final.attempts == 2
        assert final.failure is not None
        assert final.failure.code == schemas.FAIL_RETRIES_EXHAUSTED
        assert final.failure.retryable  # transient, just out of budget
        assert "WorkerCrashError" in final.error
    finally:
        service.close()


def test_per_request_max_attempts_overrides_config():
    service = ServeRuntime(_fast_config(max_attempts=5)).start()
    try:
        service.inject_chaos({"kill_workers": 10})
        status = service.submit(dict(_sparkpi(seed=4), max_attempts=1))
        final = service.wait_for(status.job_id, timeout=60.0)
        assert final.state == schemas.JOB_FAILED
        assert final.attempts == 1
        assert final.failure.code == schemas.FAIL_RETRIES_EXHAUSTED
    finally:
        service.close()


def test_deterministic_failure_is_terminal_on_first_attempt():
    service = ServeRuntime(_fast_config()).start()
    try:
        status = service.submit(
            {"workload": "blocker",
             "scenario": "custom:tests.api.test_chaos:broken_job",
             "seed": 0})
        final = service.wait_for(status.job_id, timeout=60.0)
        assert final.state == schemas.JOB_FAILED
        assert final.attempts == 1  # retrying would replay the same bug
        assert final.failure.code == schemas.FAIL_JOB_FAILED
        assert not final.failure.retryable
        assert not _serve_events(service, EV_JOB_RETRYING)
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Deadlines (the no-silent-hangs invariant)
# ---------------------------------------------------------------------------

def test_deadline_fails_a_wedged_job_without_hanging():
    gate = _gate("deadline")
    service = ServeRuntime(_fast_config()).start()
    try:
        status = service.submit(
            _blocker(0, "deadline", deadline_s=0.3))
        t0 = time.monotonic()
        final = service.wait_for(status.job_id, timeout=10.0)
        waited = time.monotonic() - t0
        # The reaper fired the deadline; nobody waited for the wedged
        # worker thread.
        assert final.state == schemas.JOB_FAILED
        assert final.failure.code == schemas.FAIL_DEADLINE_EXCEEDED
        assert waited < 5.0
        events = _serve_events(service, EV_JOB_DEADLINE_EXCEEDED)
        assert [e["fields"]["job"] for e in events] == [status.job_id]
        snap = service.cluster.metrics.snapshot(prefix="serve.")
        assert snap["serve.jobs.deadline_exceeded"] == 1
    finally:
        gate.set()  # let the zombie worker unwind before shutdown
        service.close()


def test_queued_job_deadline_fires_without_ever_running():
    gate = _gate("queued-deadline")
    service = ServeRuntime(_fast_config(max_concurrent=1)).start()
    try:
        service.submit(_blocker(0, "queued-deadline"))
        queued = service.submit(_blocker(1, "queued-deadline",
                                         deadline_s=0.2))
        assert queued.state == schemas.JOB_QUEUED
        final = service.wait_for(queued.job_id, timeout=10.0)
        assert final.state == schemas.JOB_FAILED
        assert final.failure.code == schemas.FAIL_DEADLINE_EXCEEDED
        assert final.attempts == 0  # never got a slot
    finally:
        gate.set()
        service.close()


# ---------------------------------------------------------------------------
# Circuit breaker around the Lambda bridge
# ---------------------------------------------------------------------------

def test_throttle_storm_opens_then_recovers_breaker():
    service = ServeRuntime(_fast_config(
        breaker_failure_threshold=2, breaker_cooldown_s=0.1)).start()
    try:
        service.inject_chaos({"plan": "throttle_storm",
                              "duration_s": 0.5})
        opened = closed = False
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            outcome = service.inject_chaos({"scale_lambda": 1})
            state = outcome["breaker"]["state"]
            if state == BREAKER_OPEN:
                opened = True
                # VM-only degradation: readiness tells the balancer.
                ready, checks = service.readyz()
                assert not ready
                assert not checks["breaker_not_open"]
            if opened and state == BREAKER_CLOSED:
                closed = True
                break
            time.sleep(0.02)
        assert opened, "breaker never opened under the throttle storm"
        assert closed, "breaker never recovered after the storm lifted"

        names = [e["name"]
                 for e in service.hub.snapshot(category=CAT_SERVE)]
        assert names.index(EV_BREAKER_OPENED) < names.index(
            EV_BREAKER_CLOSED)
        snap = service.cluster.metrics.snapshot(prefix="serve.breaker.")
        assert snap["serve.breaker.opens"] >= 1
        assert snap["serve.breaker.closes"] >= 1
        assert snap["serve.breaker.state"] == 0  # closed again
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Journal: kill -9 + restart
# ---------------------------------------------------------------------------

def test_hard_stop_restart_recovers_journaled_jobs_exactly_once(tmp_path):
    gate = _gate("kill9")
    config = _fast_config(max_concurrent=1, state_dir=str(tmp_path))
    first = ServeRuntime(config).start()
    running = first.submit(_blocker(0, "kill9"))
    queued = [first.submit(_sparkpi(seed=s)) for s in (11, 12)]
    first.hard_stop()
    gate.set()  # the orphaned worker unwinds; the closed WAL ignores it

    second = ServeRuntime(config).start()
    try:
        assert second.drain(timeout=120.0)
        finals = second.jobs()
        # Exactly the three acknowledged jobs — no duplicates, none
        # lost, original ids preserved, all terminal.
        expected = [running.job_id] + [s.job_id for s in queued]
        assert [s.job_id for s in finals] == expected
        for s in finals:
            assert s.state == schemas.JOB_COMPLETED, s.error
        assert second.admission_stats()["recovered"] == 3
        recovered_events = _serve_events(second, EV_JOB_RECOVERED)
        assert [e["fields"]["job"] for e in recovered_events] == expected
        # The restarted id counter resumes past everything the dead
        # process ever acknowledged.
        fresh = second.submit(_sparkpi(seed=13))
        assert fresh.job_id == "job-000004"

        # Determinism across the crash: the recovered job's sim-side
        # record byte-matches a fault-free run of the same spec.
        served = second.job(queued[0].job_id).record
        reference = run_spec(
            schemas.JobRequest.from_dict(_sparkpi(seed=11))
            .to_spec()).to_dict()
        served.pop("wall_time_s")
        reference.pop("wall_time_s")
        assert schemas.dumps(served) == schemas.dumps(reference)
    finally:
        second.close()


# ---------------------------------------------------------------------------
# Graceful drain (the SIGTERM path)
# ---------------------------------------------------------------------------

def test_drain_checkpoints_leftovers_and_restart_resumes_them(tmp_path):
    gate = _gate("drain")
    config = _fast_config(max_concurrent=1, state_dir=str(tmp_path))
    service = ServeRuntime(config).start()
    blocker = service.submit(_blocker(0, "drain"))
    queued = [service.submit(_sparkpi(seed=s)) for s in (21, 22)]

    summary = service.request_drain(deadline_s=0.4)
    # The running job outlived the budget; the queued ones were
    # checkpointed to the journal instead of silently dropped.
    assert not summary["drained"]
    assert summary["still_running"] == 1
    assert summary["checkpointed"] == [s.job_id for s in queued]
    for s in queued:
        final = service.job(s.job_id)
        assert final.state == schemas.JOB_FAILED
        assert final.failure.code == schemas.FAIL_CHECKPOINTED
        assert final.failure.retryable

    # Draining servers shed new work with the dedicated 503 code.
    with pytest.raises(BackpressureError) as exc_info:
        service.submit(_sparkpi(seed=23))
    assert exc_info.value.code == schemas.ERR_DRAINING
    assert 0.5 <= exc_info.value.retry_after_s < 2.0

    names = [e["name"] for e in service.hub.snapshot(category=CAT_SERVE)]
    assert names.index(EV_DRAIN_STARTED) < names.index(EV_DRAIN_COMPLETED)

    gate.set()
    assert service.wait_for(blocker.job_id, timeout=30.0).state \
        == schemas.JOB_COMPLETED
    service.close()

    # A later incarnation owes the checkpointed jobs another run.
    second = ServeRuntime(config).start()
    try:
        assert second.drain(timeout=120.0)
        recovered = {s.job_id: s for s in second.jobs()}
        assert set(recovered) == {s.job_id for s in queued}
        for s in recovered.values():
            assert s.state == schemas.JOB_COMPLETED, s.error
        events = _serve_events(second, EV_JOB_RECOVERED)
        assert all(e["fields"]["checkpointed"] for e in events)
    finally:
        second.close()


# ---------------------------------------------------------------------------
# Wedged sim driver
# ---------------------------------------------------------------------------

def test_reads_and_admission_answer_while_driver_is_stalled():
    service = ServeRuntime(_fast_config()).start()
    try:
        service.inject_chaos({"stall_driver_s": 0.5})
        t0 = time.monotonic()
        service.submit(_sparkpi(seed=31))
        service.jobs()
        service.admission_stats()
        assert service.healthz()["status"] == "ok"
        assert time.monotonic() - t0 < 0.4, \
            "control-plane reads blocked on the stalled sim driver"
        assert service.drain(timeout=60.0)
    finally:
        service.close()
