"""HiBench WebSearch (PageRank) — shuffle-intensive, iterative.

§5.2 setup: 850,000 pages, R = 16 executors (m4.4xlarge), r = 3, master +
single HDFS node colocated on an m4.xlarge. Figure 7 shows **6 execution
stages**, which matches the classic partition-aware Spark PageRank with
4 ranks iterations:

  stage 1  parse + hash-partition the link graph (cached)
  stages 2-5  one stage per iteration: contributions (narrow over cached
              links + the previous ranks) reduced into new ranks (shuffle)
  stage 6  final ranking/output (shuffle + save)

Per-page constants are calibrated so "Spark 16 VM" lands near the
paper's ~2-minute ballpark and, with the substrate models, the relative
factors of Figure 6 emerge (r-only ≈ 2.1×, autoscale ≈ 2×, Qubole
≈ +60 %, SS-Lambda ≈ +27 %, hybrid ≈ −32 % vs autoscale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spark.rdd import RDD, NarrowDependency, RDDBuilder, ShuffleDependency
from repro.workloads.base import Workload, WorkloadSpec

#: Calibrated per-page constants (reference-core seconds / bytes).
PARSE_SECONDS_PER_PAGE = 1.76e-4
ITER_SECONDS_PER_PAGE = 1.06e-4
FINAL_SECONDS_PER_PAGE = 1.06e-4
ITER_SHUFFLE_BYTES_PER_PAGE = 480.0
FINAL_SHUFFLE_BYTES_PER_PAGE = 120.0
#: In-memory size of the cached, partitioned link graph.
LINKS_BYTES_PER_PAGE = 900.0
#: On-disk input size (HiBench's text edge list).
INPUT_BYTES_PER_PAGE = 260.0
#: Power-law link graphs leave one hash partition markedly heavier than
#: the rest; the heaviest task runs at SKEW_FACTOR x the mean. This is
#: why the paper's 16-core baseline is far from perfectly parallel (and
#: why dropping to r=3 costs only ~2.1x, not 16/3).
SKEW_FACTOR = 2.3


def skewed_compute(total_seconds: float, partitions: int):
    """Per-partition compute with one hot partition at SKEW_FACTOR x the
    mean (capped so low partition counts stay non-negative)."""
    mean = total_seconds / partitions
    if partitions == 1:
        return lambda p: total_seconds
    hot = min(SKEW_FACTOR, float(partitions))
    cold = mean * (partitions - hot) / (partitions - 1)

    def compute(p: int) -> float:
        return mean * hot if p == 0 else cold

    return compute

#: HiBench runs 4 ranks iterations by default -> 6 stages total.
DEFAULT_ITERATIONS = 4


@dataclass
class PageRankWorkload(Workload):
    """PageRank over ``pages`` pages with ``iterations`` rank updates."""

    pages: int = 850_000
    iterations: int = DEFAULT_ITERATIONS

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise ValueError("pages must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        self.spec = WorkloadSpec(
            name=f"pagerank-{self.pages}",
            required_cores=16,
            available_cores=3,
            worker_itype="m4.4xlarge",
            master_itype="m4.xlarge",
            slo_seconds=240.0,
            segue_available_s=45.0,  # Figure 7: an existing core frees at 45 s
        )

    # ------------------------------------------------------------------

    def build(self, parallelism: int) -> RDD:
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        b = RDDBuilder()
        p = parallelism
        links = b.source(
            "links", partitions=p,
            compute_seconds=skewed_compute(
                self.pages * PARSE_SECONDS_PER_PAGE, p),
            working_set_bytes=self.pages * LINKS_BYTES_PER_PAGE / p,
            cache=True,
            input_bytes=self.pages * INPUT_BYTES_PER_PAGE)
        ranks = b.map(links, "ranks0", compute_seconds=0.0)
        iter_shuffle = self.pages * ITER_SHUFFLE_BYTES_PER_PAGE
        for i in range(1, self.iterations + 1):
            contribs = RDD(
                f"contribs{i}", p,
                compute_seconds=skewed_compute(
                    self.pages * ITER_SECONDS_PER_PAGE, p),
                deps=[NarrowDependency(links), NarrowDependency(ranks)],
                working_set_bytes=self.pages * LINKS_BYTES_PER_PAGE / (2 * p))
            ranks = RDD(
                f"ranks{i}", p, compute_seconds=0.0,
                deps=[ShuffleDependency(contribs, iter_shuffle)])
        final = b.shuffle(
            ranks, "top-ranks", partitions=p,
            shuffle_bytes=self.pages * FINAL_SHUFFLE_BYTES_PER_PAGE,
            compute_seconds=skewed_compute(
                self.pages * FINAL_SECONDS_PER_PAGE, p))
        return final

    @property
    def num_stages(self) -> int:
        """1 parse + one per iteration + 1 final (Figure 7's six)."""
        return self.iterations + 2

    @classmethod
    def small(cls) -> "PageRankWorkload":
        """The 25k-page profiling input of Figure 4."""
        return cls(pages=25_000)

    @classmethod
    def medium(cls) -> "PageRankWorkload":
        """The 50k-page profiling input of Figure 4."""
        return cls(pages=50_000)

    @classmethod
    def large(cls) -> "PageRankWorkload":
        """The 100k-page profiling input of Figure 4."""
        return cls(pages=100_000)
