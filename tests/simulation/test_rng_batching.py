"""Bit-identity proofs for the batched standard-draw RNG helpers.

The hot-path refactor buffers *standard* draws (uniform on [0,1),
standard exponential, standard normal) in numpy batches and applies the
distribution's affine map in Python per dispensed draw. These tests lock
in the two grounds that make that bit-identical to per-call scalar
sampling (see the module docstring of :mod:`repro.simulation.rng`):

1. a batched ``random(n)`` / ``standard_exponential(n)`` /
   ``standard_normal(n)`` call consumes the generator bitstream exactly
   like n scalar calls;
2. numpy's parameterized samplers are affine maps over the standard
   draw, so scaling in Python reproduces the scalar result bit for bit.

If either property ever breaks (a numpy upgrade changing bitstream
consumption or sampler algebra), these tests fail before the golden
scenario hashes do — with a message that names the actual culprit.
"""

import math

import numpy as np
import pytest

from repro.simulation.rng import BATCH_DRAWS, RandomStreams


def _fresh_generator(seed: int, name: str) -> np.random.Generator:
    """The exact child-stream construction RandomStreams uses."""
    import zlib

    child = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([seed, child]))


# ---------------------------------------------------------------------------
# Ground 1: batch draws consume the bitstream exactly like scalar draws.
# ---------------------------------------------------------------------------

N = BATCH_DRAWS * 2 + 7  # spans multiple refills plus a partial buffer


@pytest.mark.parametrize("method", ["random", "standard_exponential",
                                    "standard_normal"])
def test_batch_equals_scalar_bitstream(method):
    batch = getattr(_fresh_generator(0, "s"), method)(N).tolist()
    gen = _fresh_generator(0, "s")
    scalar = [getattr(gen, method)() for _ in range(N)]
    assert batch == scalar


# ---------------------------------------------------------------------------
# Ground 2: the helpers reproduce the historical scalar formulas exactly.
# ---------------------------------------------------------------------------

def test_uniform_jitter_matches_scalar_uniform():
    rng = RandomStreams(11)
    got = [rng.uniform_jitter("j", 100.0, 0.05) for _ in range(N)]
    gen = _fresh_generator(11, "j")
    want = [100.0 * gen.uniform(0.95, 1.05) for _ in range(N)]
    assert got == want


def test_exponential_matches_scalar_exponential_varying_mean():
    # Means vary per call (the arrival process derives its rate from
    # live demand), which is exactly why the buffer holds parameter-free
    # standard draws.
    means = [0.5 + 0.25 * (i % 7) for i in range(N)]
    rng = RandomStreams(5)
    got = [rng.exponential("a", m) for m in means]
    gen = _fresh_generator(5, "a")
    want = [gen.exponential(m) for m in means]
    assert got == want


def test_lognormal_matches_scalar_formula():
    mean, cv = 100.0, 0.2
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    rng = RandomStreams(3)
    got = [rng.lognormal_around("t", mean, cv) for _ in range(N)]
    gen = _fresh_generator(3, "t")
    want = [math.exp(mu + math.sqrt(sigma2) * gen.standard_normal())
            for _ in range(N)]
    assert got == want


def test_lognormal_matches_numpy_lognormal_sampler():
    # numpy's own lognormal(mu, sigma) is exp(normal(mu, sigma)) and
    # normal(mu, sigma) is mu + sigma * standard_normal() — the affine
    # ground the helper relies on.
    mean, cv = 40.0, 0.35
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    rng = RandomStreams(9)
    got = [rng.lognormal_around("t", mean, cv) for _ in range(N)]
    gen = _fresh_generator(9, "t")
    want = [gen.lognormal(mu, math.sqrt(sigma2)) for _ in range(N)]
    assert got == want


def test_zero_cv_dispenses_no_draw():
    rng = RandomStreams(0)
    assert rng.lognormal_around("t", 42.0, 0.0) == 42.0
    first = rng.lognormal_around("t", 42.0, 0.2)
    gen = _fresh_generator(0, "t")
    sigma2 = math.log(1.0 + 0.04)
    mu = math.log(42.0) - sigma2 / 2.0
    assert first == math.exp(mu + math.sqrt(sigma2) * gen.standard_normal())


# ---------------------------------------------------------------------------
# Guard rails: the unsafe mixes raise instead of silently diverging.
# ---------------------------------------------------------------------------

def test_direct_stream_access_on_buffered_name_raises():
    rng = RandomStreams(0)
    rng.uniform_jitter("j", 1.0, 0.1)  # buffers BATCH_DRAWS - 1 pending
    with pytest.raises(RuntimeError, match="batched helper"):
        rng.stream("j")


def test_kind_change_with_pending_draws_raises():
    rng = RandomStreams(0)
    rng.uniform_jitter("j", 1.0, 0.1)
    with pytest.raises(RuntimeError, match="distribution changed"):
        rng.exponential("j", 1.0)


def test_direct_stream_access_on_unbuffered_name_still_works():
    rng = RandomStreams(0)
    rng.uniform_jitter("helper", 1.0, 0.1)
    assert rng.stream("direct") is rng.stream("direct")


def test_buffer_spans_refills_without_seam():
    # Drain past several refill boundaries; any seam error (skipped or
    # repeated draw at a boundary) would desynchronize the sequences.
    rng = RandomStreams(21)
    got = [rng.uniform_jitter("j", 1.0, 0.5) for _ in range(BATCH_DRAWS * 3)]
    gen = _fresh_generator(21, "j")
    want = [gen.uniform(0.5, 1.5) for _ in range(BATCH_DRAWS * 3)]
    assert got == want
