"""The launching facility (§4.2).

"The launching facility arranges for the requested number of cores for a
new job from the currently free cores and, if needed, by launching new
Lambdas." — free VM cores are claimed first; the shortfall Δ = R − r is
bridged with warm-started Lambdas, each hosting one executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from repro.cloud.lambda_fn import LambdaConfig
from repro.simulation.events import Event
from repro.spark.executor import Executor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.provisioner import CloudProvider
    from repro.core.state import ClusterState
    from repro.simulation.kernel import Environment
    from repro.spark.application import SparkDriver


@dataclass
class LaunchOutcome:
    """What the facility managed to assemble for one request."""

    requested_cores: int
    vm_executors: List[Executor] = field(default_factory=list)
    lambda_executors: List[Executor] = field(default_factory=list)
    #: Fires once every requested executor has registered.
    all_registered: Event = None

    @property
    def vm_cores(self) -> int:
        return len(self.vm_executors)

    @property
    def lambda_cores(self) -> int:
        return len(self.lambda_executors)


class LaunchingFacility:
    """Serves per-job core requests from VM cores + Lambdas."""

    def __init__(
        self,
        env: "Environment",
        provider: "CloudProvider",
        driver: "SparkDriver",
        state: "ClusterState",
        lambda_memory_mb: int = 1536,
    ) -> None:
        self.env = env
        self.provider = provider
        self.driver = driver
        self.state = state
        self.lambda_memory_mb = lambda_memory_mb

    def acquire(self, cores: int, max_vm_cores: int = None) -> LaunchOutcome:
        """Assemble ``cores`` executors: free VM cores first, Lambdas for
        the rest. ``max_vm_cores`` caps the VM share (scenario control:
        the all-Lambda scenarios pass 0).

        VM executors register immediately; Lambda executors register as
        their (typically warm) containers come up. ``outcome.all_registered``
        fires when the full complement is in place.
        """
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        outcome = LaunchOutcome(requested_cores=cores)
        outcome.all_registered = Event(self.env)

        budget = cores if max_vm_cores is None else min(cores, max_vm_cores)
        for vm in self.state.vms_with_free_cores():
            while budget > 0 and vm.free_cores > 0:
                executor = self.driver.add_vm_executor(vm)
                self.state.record_executor(executor)
                outcome.vm_executors.append(executor)
                budget -= 1
            if budget == 0:
                break

        shortfall = cores - len(outcome.vm_executors)
        if shortfall == 0:
            outcome.all_registered.succeed(outcome)
            return outcome

        pending = [shortfall]  # mutable counter shared by the waiters

        def register_when_ready(instance):
            yield instance.ready
            executor = self.driver.add_lambda_executor(instance)
            self.state.record_executor(executor)
            outcome.lambda_executors.append(executor)
            pending[0] -= 1
            if pending[0] == 0:
                outcome.all_registered.succeed(outcome)

        for _ in range(shortfall):
            instance = self.provider.invoke_lambda(
                LambdaConfig(memory_mb=self.lambda_memory_mb))
            self.env.process(register_when_ready(instance))
        return outcome

    def release_lambda_executor(self, executor: Executor) -> None:
        """Return a drained Lambda executor's container to the provider
        and bill its usage (marginal-cost accounting)."""
        instance = executor.lambda_instance
        self.provider.release_lambda(instance)
        self.provider.bill_lambda_usage(instance)
        self.state.record_release(executor)

    def release_vm_executor(self, executor: Executor) -> None:
        """Free the VM core an executor held (the VM itself stays up —
        inter-job policy decides its fate)."""
        executor.vm.release_cores(1)
        self.state.record_release(executor)
