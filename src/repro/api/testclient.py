"""An in-process ASGI test client (no sockets, no new dependencies).

Drives any ASGI 3.0 app — in practice the control plane from
:func:`repro.api.app.create_app` — over a private event loop, speaking
the real ASGI protocol: lifespan startup/shutdown around the ``with``
block, one ``http`` scope per request, a connected-client ``receive``
(so SSE responses stream until their own bounds), and full capture of
the response messages. The surface mirrors the common
``client.get(...)`` / ``client.post(..., json=...)`` shape so tests read
like httpx/TestClient code.
"""

from __future__ import annotations

import asyncio
import json as _json
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro.api import schemas

__all__ = ["TestClient", "TestResponse"]


class TestResponse:
    """One captured HTTP response."""

    def __init__(self, messages: List[Dict[str, Any]]) -> None:
        start = messages[0]
        assert start["type"] == "http.response.start", start
        self.status = start["status"]
        self.headers: Dict[str, str] = {
            k.decode("latin-1").lower(): v.decode("latin-1")
            for k, v in start.get("headers", [])}
        self.body = b"".join(m.get("body", b"") for m in messages[1:]
                             if m["type"] == "http.response.body")

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> Any:
        return _json.loads(self.text)

    def envelope(self) -> schemas.ResponseEnvelope:
        """The response parsed as a versioned envelope (asserts the
        contract every JSON endpoint promises)."""
        return schemas.ResponseEnvelope.from_dict(self.json())

    @property
    def data(self) -> Any:
        """The envelope's payload."""
        return self.envelope().data

    def sse_events(self) -> List[Dict[str, Any]]:
        """Parse a ``text/event-stream`` body into event dicts with
        ``id``/``event`` strings and JSON-decoded ``data``."""
        events = []
        for block in self.text.split("\n\n"):
            fields: Dict[str, List[str]] = {}
            for line in block.splitlines():
                if ":" not in line:
                    continue
                key, _, value = line.partition(":")
                fields.setdefault(key.strip(), []).append(value.lstrip())
            if "data" not in fields:
                continue
            events.append({
                "id": fields.get("id", [None])[0],
                "event": fields.get("event", [None])[0],
                "data": _json.loads("\n".join(fields["data"])),
            })
        return events

    def __repr__(self) -> str:
        return f"<TestResponse {self.status} {len(self.body)}B>"


class TestClient:
    """Synchronous in-process client for an ASGI app.

    Use as a context manager to run the app's lifespan protocol::

        with TestClient(create_app(config)) as client:
            r = client.post("/jobs", json={"workload": "sparkpi"})
            assert r.status == 202
    """

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, app) -> None:
        self.app = app
        self._loop = asyncio.new_event_loop()
        self._lifespan_in: Optional[asyncio.Queue] = None
        self._lifespan_out: Optional[asyncio.Queue] = None
        self._lifespan_task: Optional[asyncio.Task] = None

    # -- lifespan ----------------------------------------------------------

    def __enter__(self) -> "TestClient":
        self._lifespan_in = asyncio.Queue()
        self._lifespan_out = asyncio.Queue()
        scope = {"type": "lifespan", "asgi": {"version": "3.0",
                                              "spec_version": "2.0"}}
        self._lifespan_task = asyncio.ensure_future(
            self.app(scope, self._lifespan_in.get, self._lifespan_out.put),
            loop=self._loop)
        self._lifespan_in.put_nowait({"type": "lifespan.startup"})
        message = self._loop.run_until_complete(self._lifespan_out.get())
        if message["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"app failed to start: {message}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._lifespan_task is not None:
            self._lifespan_in.put_nowait({"type": "lifespan.shutdown"})
            self._loop.run_until_complete(self._lifespan_task)
            self._lifespan_task = None
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.run_until_complete(self._loop.shutdown_default_executor())
        self._loop.close()

    # -- requests ----------------------------------------------------------

    def request(self, method: str, url: str, json: Any = None,
                params: Optional[Dict[str, Any]] = None,
                headers: Optional[Dict[str, str]] = None) -> TestResponse:
        parts = urlsplit(url)
        query = parts.query
        if params:
            extra = urlencode({k: str(v) for k, v in params.items()})
            query = f"{query}&{extra}" if query else extra
        body = b"" if json is None else schemas.dumps(json).encode("utf-8")
        raw_headers = [(b"host", b"testserver"),
                       (b"content-type", b"application/json"),
                       (b"content-length",
                        str(len(body)).encode("latin-1"))]
        for key, value in (headers or {}).items():
            raw_headers.append((key.lower().encode("latin-1"),
                                str(value).encode("latin-1")))
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": parts.path or "/",
            "raw_path": (parts.path or "/").encode("utf-8"),
            "query_string": query.encode("latin-1"),
            "root_path": "",
            "headers": raw_headers,
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
        }
        messages: List[Dict[str, Any]] = []
        delivered = False

        async def receive() -> Dict[str, Any]:
            nonlocal delivered
            if not delivered:
                delivered = True
                return {"type": "http.request", "body": body,
                        "more_body": False}
            # The client stays connected; SSE streams end on their own
            # bounds, and the pending watcher task is cancelled then.
            await asyncio.get_running_loop().create_future()

        async def send(message: Dict[str, Any]) -> None:
            messages.append(message)

        self._loop.run_until_complete(self.app(scope, receive, send))
        return TestResponse(messages)

    def get(self, url: str, params: Optional[Dict[str, Any]] = None,
            headers: Optional[Dict[str, str]] = None) -> TestResponse:
        return self.request("GET", url, params=params, headers=headers)

    def post(self, url: str, json: Any = None,
             params: Optional[Dict[str, Any]] = None,
             headers: Optional[Dict[str, str]] = None) -> TestResponse:
        return self.request("POST", url, json=json, params=params,
                            headers=headers)
