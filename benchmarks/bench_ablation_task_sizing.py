"""Ablation: heterogeneity-aware task sizing (§7's future work).

"Generally, an executor assigned a certain number of cores on a VM vs. a
Lambda-based executor with the same number of cores will have access to
different capacities... In future work, we will explore the use of
different task sizes for VMs and Lambdas for better task-level load
balancing."

We implement it and measure: a hybrid cluster (4 VM cores + 12
half-speed 768 MB Lambdas) runs the same total work with (a) uniform
tasks, where a slow Lambda holding a full-size task is the straggler,
and (b) tasks sized to each executor kind's throughput, where everyone
finishes together.
"""

from repro.analysis.reporting import format_table
from repro.cloud import CloudProvider, LambdaConfig
from repro.simulation import Environment, RandomStreams
from repro.spark import SparkConf, SparkDriver
from repro.spark.shuffle import ExternalShuffleBackend
from repro.storage import HDFS
from repro.workloads import HeterogeneousWorkload
from benchmarks.conftest import run_once

VM_SLOTS = 4
LAMBDA_SLOTS = 12
LAMBDA_MEMORY_MB = 768  # half a vCPU
TOTAL_CORE_SECONDS = 640.0


def run_variant(uniform: bool, seed: int = 0) -> float:
    env = Environment()
    rng = RandomStreams(seed)
    provider = CloudProvider(env, rng)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    hdfs = HDFS(env, [master], rng)
    conf = SparkConf({"spark.sim.task.jitter": 0.0})
    driver = SparkDriver(env, conf, rng, ExternalShuffleBackend(hdfs))
    worker = provider.request_vm("m4.4xlarge", already_running=True)
    for _ in range(VM_SLOTS):
        driver.add_vm_executor(worker)
    for _ in range(LAMBDA_SLOTS):
        fn = provider.invoke_lambda(LambdaConfig(memory_mb=LAMBDA_MEMORY_MB))

        def attach(env, fn=fn):
            yield fn.ready
            driver.add_lambda_executor(fn)

        env.process(attach(env))
    workload = HeterogeneousWorkload(
        total_core_seconds=TOTAL_CORE_SECONDS,
        vm_tasks=VM_SLOTS, lambda_tasks=LAMBDA_SLOTS,
        lambda_speed=LAMBDA_MEMORY_MB / 1536.0, uniform=uniform)
    job = driver.submit(workload.build(VM_SLOTS + LAMBDA_SLOTS))
    env.run(until=job.done)
    return job.duration


def run_both():
    return {"uniform tasks": run_variant(True),
            "kind-sized tasks": run_variant(False)}


def test_ablation_task_sizing(benchmark, emit):
    results = run_once(benchmark, run_both)
    uniform, sized = (results["uniform tasks"],
                      results["kind-sized tasks"])
    ideal = TOTAL_CORE_SECONDS / (VM_SLOTS
                                  + LAMBDA_SLOTS * LAMBDA_MEMORY_MB / 1536.0)
    rows = [[name, f"{t:.1f}", f"{t / ideal:.2f}x"]
            for name, t in results.items()]
    emit("Ablation — §7 heterogeneity-aware task sizing "
         f"(ideal makespan {ideal:.1f}s)",
         format_table(["sizing", "time (s)", "vs ideal"], rows))

    # Uniform tasks leave half-speed Lambdas straggling on full-size
    # work; kind-sized tasks approach the ideal makespan.
    assert sized < uniform * 0.85
    assert sized < ideal * 1.15