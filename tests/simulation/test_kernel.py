"""Unit tests for the DES kernel: Environment, events, processes."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(10)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [10]


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_early():
    env = Environment()
    ticks = []

    def proc(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(proc(env))
    env.run(until=5)
    assert ticks == [1, 2, 3, 4]
    assert env.now == 5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 3


def test_run_until_event_raises_process_exception():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("boom")

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="boom"):
        env.run(until=p)


def test_unhandled_process_failure_surfaces():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("unwaited failure")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unwaited failure"):
        env.run()


def test_run_out_of_events_before_until_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_another_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2)
        log.append(("child-done", env.now))
        return 7

    def parent(env):
        result = yield env.process(child(env))
        log.append(("parent-resumed", env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [("child-done", 2), ("parent-resumed", 2, 7)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(4, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1)
        gate.fail(ValueError("nope"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["nope"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    times = []

    def proc(env):
        t = env.timeout(1)
        yield env.timeout(5)  # t fires at 1, long before we wait on it
        value = yield t
        times.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert times == [(5, None)]


def test_allof_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        got = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(3, ["a", "b"])]


def test_anyof_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(10, value="slow")
        got = yield AnyOf(env, [t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1, ["fast"])]


def test_empty_allof_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        got = yield AllOf(env, [])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results == [(0, {})]


def test_condition_operators():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        yield t1 & t2
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [2]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def worker(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def killer(env, victim):
        yield env.timeout(5)
        victim.interrupt(cause="decommission")

    victim = env.process(worker(env))
    env.process(killer(env, victim))
    env.run()
    assert log == [(5, "decommission")]


def test_interrupt_detaches_old_target():
    """After an interrupt, the abandoned event must not resume the process."""
    env = Environment()
    log = []

    def worker(env):
        try:
            yield env.timeout(10)
            log.append("finished-first-wait")  # must NOT happen
        except Interrupt:
            yield env.timeout(100)
            log.append(("second-wait-done", env.now))

    def killer(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(worker(env))
    env.process(killer(env, victim))
    env.run()
    assert log == [("second-wait-done", 105)]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def worker(env):
        yield env.timeout(1)

    p = env.process(worker(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupt_raced_with_termination_is_dropped():
    """Interrupt scheduled at the same instant the victim finishes."""
    env = Environment()

    def worker(env):
        yield env.timeout(5)

    def killer(env, victim):
        yield env.timeout(5)
        if victim.is_alive:
            victim.interrupt()

    victim = env.process(worker(env))
    env.process(killer(env, victim))
    env.run()  # must not raise


def test_process_is_alive_lifecycle():
    env = Environment()

    def worker(env):
        yield env.timeout(5)

    p = env.process(worker(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_return_value():
    env = Environment()

    def worker(env):
        yield env.timeout(1)
        return 123

    p = env.process(worker(env))
    env.run()
    assert p.value == 123


def test_yield_non_event_raises_in_process():
    env = Environment()

    def worker(env):
        yield 42

    p = env.process(worker(env))
    with pytest.raises(TypeError):
        env.run(until=p)


def test_nested_processes_three_deep():
    env = Environment()

    def leaf(env):
        yield env.timeout(1)
        return 1

    def middle(env):
        v = yield env.process(leaf(env))
        yield env.timeout(1)
        return v + 1

    def root(env):
        v = yield env.process(middle(env))
        return v + 1

    p = env.process(root(env))
    assert env.run(until=p) == 3
    assert env.now == 2


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7


def test_peek_empty_queue_is_inf():
    env = Environment()
    env.run()
    assert env.peek() == float("inf")
