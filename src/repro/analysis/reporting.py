"""Plain-text table/figure renderers used by the benchmark harness.

The benches reproduce figures as aligned text: a grouped-bar figure
becomes rows of labelled horizontal bars; a line figure becomes a series
table. Keeping this in one place makes every bench's output uniform.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(entries: Sequence[tuple], title: Optional[str] = None,
                     width: int = 46, unit: str = "s") -> str:
    """Render labelled horizontal bars: entries are (label, value) or
    (label, value, annotation). NaN values render as 'FAILED' (the Q5 on
    Qubole case)."""
    lines = []
    if title:
        lines.append(title)
    finite = [v for _l, v, *_a in entries if not math.isnan(v)]
    top = max(finite) if finite else 1.0
    label_width = max(len(e[0]) for e in entries) if entries else 0
    for entry in entries:
        label, value = entry[0], entry[1]
        annotation = entry[2] if len(entry) > 2 else ""
        if math.isnan(value):
            lines.append(f"{label.rjust(label_width)} | FAILED  {annotation}".rstrip())
            continue
        bar = "#" * max(1, int(round(width * value / top))) if top > 0 else ""
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:.1f}{unit} {annotation}".rstrip())
    return "\n".join(lines)


def format_series(x_label: str, xs: Sequence[Any],
                  series: Dict[str, Sequence[float]],
                  title: Optional[str] = None,
                  value_format: str = "{:.2f}") -> str:
    """Render one or more y-series against a shared x axis (line figures)."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(xs)}")
    headers = [x_label, *series.keys()]
    rows: List[List[Any]] = []
    for i, x in enumerate(xs):
        row: List[Any] = [x]
        for ys in series.values():
            row.append(value_format.format(ys[i]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def relative_to(baseline: float, value: float) -> str:
    """'1.45x'-style annotation against a baseline."""
    if baseline <= 0 or math.isnan(value):
        return ""
    return f"({value / baseline:.2f}x)"
