"""Ablation: Lambda memory size — the §3 capacity trade-off.

Lambda memory buys three things at once: CPU share (1 vCPU per 1.5 GB),
network bandwidth (roughly linear in memory), and GC headroom. But cost
is billed per GB-second. Sweeping the allocation for an all-Lambda
shuffle job shows the paper's implicit choice of 1536 MB (one full vCPU)
as the efficient operating point.
"""

from repro.analysis.reporting import format_table
from repro.cloud import CloudProvider, LambdaConfig
from repro.cloud.pricing import BillingMeter
from repro.simulation import Environment, RandomStreams
from repro.spark import SparkConf, SparkDriver
from repro.spark.shuffle import ExternalShuffleBackend
from repro.storage import HDFS
from repro.workloads import SyntheticWorkload
from benchmarks.conftest import run_once

MEMORY_SWEEP_MB = (512, 1024, 1536, 2048, 3008)
WORKLOAD = dict(stages=3, core_seconds_per_stage=160.0,
                shuffle_bytes_per_boundary=600 * 1024 * 1024,
                working_set_bytes=700 * 1024 * 1024,
                required_cores=16, available_cores=16)


def run_memory(memory_mb: int, seed: int = 0):
    env = Environment()
    rng = RandomStreams(seed)
    meter = BillingMeter()
    provider = CloudProvider(env, rng, meter=meter)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    hdfs = HDFS(env, [master], rng, meter)
    driver = SparkDriver(env, SparkConf(), rng,
                         ExternalShuffleBackend(hdfs))
    lambdas = []
    for _ in range(16):
        fn = provider.invoke_lambda(LambdaConfig(memory_mb=memory_mb))
        lambdas.append(fn)

        def attach(env, fn=fn):
            yield fn.ready
            driver.add_lambda_executor(fn)

        env.process(attach(env))
    workload = SyntheticWorkload(**WORKLOAD)
    job = driver.submit(workload.build(16))
    env.run(until=job.done)
    for fn in lambdas:
        provider.release_lambda(fn)
        provider.bill_lambda_usage(fn)
    return job.duration, meter.total()


def run_sweep():
    return {mb: run_memory(mb) for mb in MEMORY_SWEEP_MB}


def test_ablation_lambda_memory(benchmark, emit):
    results = run_once(benchmark, run_sweep)
    rows = [[f"{mb} MB", f"{t:.1f}", f"${c:.4f}"]
            for mb, (t, c) in results.items()]
    emit("Ablation — Lambda memory size for an all-Lambda shuffle job",
         format_table(["memory", "time (s)", "cost"], rows))

    # More memory is monotonically faster (CPU + bandwidth + GC headroom).
    times = [results[mb][0] for mb in MEMORY_SWEEP_MB]
    assert all(a >= b for a, b in zip(times, times[1:]))
    # Small allocations are dramatically slower (fractional vCPU + GC).
    assert results[512][0] > 2.5 * results[1536][0]
    # Past one full vCPU the speedup flattens while cost keeps climbing:
    # 1536 MB sits on the knee.
    gain_beyond = results[1536][0] / results[3008][0]
    assert gain_beyond < 1.6
