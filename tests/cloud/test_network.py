"""Tests for the fair-share bandwidth link."""

import pytest

from repro.cloud import FairShareLink
from repro.cloud.network import transfer_via
from repro.simulation import Environment


def test_single_transfer_takes_bytes_over_capacity():
    env = Environment()
    link = FairShareLink(env, capacity_bytes_per_s=100.0)
    done = link.transfer(1000)
    env.run(until=done)
    assert env.now == pytest.approx(10.0)


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    link = FairShareLink(env, 100.0)
    done = link.transfer(0)
    assert done.triggered


def test_negative_bytes_rejected():
    env = Environment()
    link = FairShareLink(env, 100.0)
    with pytest.raises(ValueError):
        link.transfer(-1)


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        FairShareLink(env, 0)


def test_two_equal_transfers_share_bandwidth():
    env = Environment()
    link = FairShareLink(env, 100.0)
    d1 = link.transfer(500)
    d2 = link.transfer(500)
    env.run(until=d1 & d2)
    # Each effectively gets 50 B/s: both finish at t=10.
    assert env.now == pytest.approx(10.0)


def test_short_transfer_finishes_first_then_long_speeds_up():
    env = Environment()
    link = FairShareLink(env, 100.0)
    times = {}

    def watch(name, ev):
        def proc(env):
            yield ev
            times[name] = env.now
        env.process(proc(env))

    watch("short", link.transfer(100))   # fair share 50 B/s -> done at 2s
    watch("long", link.transfer(1000))   # 100B in 2s, 900B at full speed: 2+9=11
    env.run()
    assert times["short"] == pytest.approx(2.0)
    assert times["long"] == pytest.approx(11.0)


def test_late_joiner_slows_existing_transfer():
    env = Environment()
    link = FairShareLink(env, 100.0)
    times = {}

    def first(env):
        ev = link.transfer(1000)  # alone: 10s; but a joiner at t=5...
        yield ev
        times["first"] = env.now

    def second(env):
        yield env.timeout(5)
        ev = link.transfer(250)
        yield ev
        times["second"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # first: 500B by t=5, then 50 B/s shared until second finishes at t=10
    # (250B at 50B/s), then 250B left at 100 B/s -> t=12.5.
    assert times["second"] == pytest.approx(10.0)
    assert times["first"] == pytest.approx(12.5)


def test_bytes_moved_accounting():
    env = Environment()
    link = FairShareLink(env, 100.0)
    link.transfer(300)
    link.transfer(200)
    env.run()
    assert link.bytes_moved == pytest.approx(500)


def test_many_concurrent_transfers_conserve_capacity():
    env = Environment()
    link = FairShareLink(env, 1000.0)
    events = [link.transfer(1000) for _ in range(10)]
    env.run(until=env.all_of(events))
    # 10 x 1000B at aggregate 1000 B/s = 10s total.
    assert env.now == pytest.approx(10.0)


def test_transfer_via_takes_slowest_hop():
    env = Environment()
    fast = FairShareLink(env, 1000.0)
    slow = FairShareLink(env, 100.0)
    done = transfer_via(env, [fast, slow], 1000)
    env.run(until=done)
    assert env.now == pytest.approx(10.0)


def test_transfer_via_empty_path_is_instant():
    env = Environment()
    done = transfer_via(env, [], 1000)
    assert done.triggered


def test_transfer_via_single_link_passthrough():
    env = Environment()
    link = FairShareLink(env, 100.0)
    done = transfer_via(env, [link], 500)
    env.run(until=done)
    assert env.now == pytest.approx(5.0)


def test_current_rate_per_transfer():
    env = Environment()
    link = FairShareLink(env, 100.0)
    assert link.current_rate_per_transfer == 100.0
    link.transfer(1000)
    link.transfer(1000)
    assert link.current_rate_per_transfer == 50.0
