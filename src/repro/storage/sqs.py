"""SQS: Flint's shuffle substrate — queue semantics, chunked messages.

Blobs larger than the 256 KB message cap are split into chunks; every
chunk costs one SEND on write and one RECEIVE plus one DELETE on read.
Good throughput for many small writes (the paper: "a better fit for a
high number of small writes"), but the per-request fees triple relative
to S3's read path and large blobs pay heavy chunking overhead.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.cloud.constants import (
    SQS_MAX_MESSAGE_BYTES,
    SQS_PRICE_PER_REQUEST,
    SQS_REQUEST_LATENCY_CV,
    SQS_REQUEST_LATENCY_MEAN_S,
)
from repro.storage.base import StorageService

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.network import FairShareLink
    from repro.cloud.pricing import BillingMeter
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams

#: Effective per-connection streaming rate to SQS.
_SQS_STREAM_BYTES_PER_S = 30.0 * 1024 * 1024


class SQSQueue(StorageService):
    """One SQS queue used as a keyed blob store via message chunking.

    Operation counts are in *chunks*: callers see the same keyed-blob API
    as every other service, but requests (and bills) multiply by the
    256 KB chunking factor internally.
    """

    def __init__(
        self,
        env: "Environment",
        rng: "RandomStreams",
        meter: "BillingMeter" = None,
        name: str = "sqs",
    ) -> None:
        super().__init__(env, name, rng, meter)

    @staticmethod
    def chunks_for(nbytes: float) -> int:
        """Number of 256 KB messages a blob of ``nbytes`` needs."""
        if nbytes <= 0:
            return 1
        return max(1, math.ceil(nbytes / SQS_MAX_MESSAGE_BYTES))

    def _op_latency(self, write: bool) -> float:
        # One latency per chunk wave; chunk count is folded into billing
        # and into extra latency waves via _chunk_waves below.
        return self.rng.lognormal_around(
            "sqs.request", SQS_REQUEST_LATENCY_MEAN_S, SQS_REQUEST_LATENCY_CV)

    def _bulk_transfer(self, nbytes: float,
                       via_links: Sequence["FairShareLink"], write: bool,
                       context=None):
        # Chunking latency: beyond the base request, each extra wave of
        # 8 pipelined chunks pays one more round trip.
        extra_waves = max(0, math.ceil(self.chunks_for(nbytes) / 8) - 1)
        for _ in range(extra_waves):
            yield self.env.timeout(self._op_latency(write))
        events = [link.transfer(nbytes) for link in via_links]
        events.append(self.env.timeout(nbytes / _SQS_STREAM_BYTES_PER_S))
        for event in events:
            yield event

    def _bill_write(self, nbytes: float, count: int = 1) -> float:
        # One SEND per chunk. For batch ops, nbytes is the fused payload:
        # chunk count scales with the payload, lower-bounded by count.
        chunks = max(count, self.chunks_for(nbytes))
        return chunks * SQS_PRICE_PER_REQUEST

    def _bill_read(self, nbytes: float, count: int = 1) -> float:
        # One RECEIVE + one DELETE per chunk.
        chunks = max(count, self.chunks_for(nbytes))
        return 2 * chunks * SQS_PRICE_PER_REQUEST
