"""The abstract's headline claims, checked end-to-end.

"[SplitServe] improves execution time by up to (a) 55% for workloads
with small to modest amount of shuffling, and (b) 31% in workloads with
large amounts of shuffling, when compared to only VM-based autoscaling."

(a) is carried by the TPC-DS queries (vs their shuffle volume the
per-stage compute dominates — 'small to modest' in the paper's taxonomy);
(b) by PageRank, the shuffle-heaviest workload.
"""

from repro.analysis.reporting import format_table
from repro.core.scenarios import run_scenario
from repro.experiments.spec import ExperimentSpec
from repro.workloads.tpcds import PRESENTED_QUERIES
from benchmarks.conftest import run_once


def best_ss_improvement(workload_name):
    """Best SplitServe option (hybrid or all-Lambda) vs VM autoscaling."""
    def duration(scenario):
        return run_scenario(
            ExperimentSpec(workload_name, scenario)).duration_s

    autoscale = duration("spark_autoscale")
    best = min(duration("ss_hybrid"), duration("ss_R_la"))
    return 1 - best / autoscale


def run_headline():
    improvements = {}
    for query in PRESENTED_QUERIES:
        improvements[f"tpcds-{query}"] = best_ss_improvement(
            f"tpcds-{query}")
    improvements["pagerank"] = best_ss_improvement("pagerank")
    return improvements


def test_headline_claims(benchmark, emit):
    improvements = run_once(benchmark, run_headline)
    rows = [[name, f"{value:.1%}"] for name, value in improvements.items()]
    emit("Headline claims — SplitServe vs VM-only autoscaling",
         format_table(["workload", "improvement"], rows))

    tpcds_best = max(v for k, v in improvements.items()
                     if k.startswith("tpcds"))
    # (a) up to ~55% for small/modest shuffling (TPC-DS).
    assert 0.45 < tpcds_best < 0.70
    # (b) up to ~31% for heavy shuffling (PageRank).
    assert 0.20 < improvements["pagerank"] < 0.55
    print(f"\nmodest-shuffle best improvement: {tpcds_best:.1%} (paper: 55%)")
    print(f"heavy-shuffle improvement: {improvements['pagerank']:.1%} "
          f"(paper: 31%)")
