"""Core simulator throughput: how fast does simulated time run?

Every other bench measures *simulated* outcomes (latency in simulated
seconds, dollars). This one measures the harness itself: raw kernel
event throughput (simulated events dispatched per wall-clock second)
and end-to-end job throughput on the ``multijob`` scenario — the same
shared-pool machinery ``repro serve`` drives continuously, so this
number bounds how much cluster a single serve process can simulate.

The headline run replays a fixed 12-job arrival burst on an 8-core FAIR
pool and writes ``BENCH_core.json`` at the repository root (committed,
so regressions in kernel or scheduler hot paths show up in review
diffs). Wall-clock figures are machine-dependent; the committed file
records the reference machine's numbers, and ``events_processed`` /
``jobs`` are seed-deterministic for cross-machine sanity.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.experiments import ExperimentSpec
from repro.experiments.runner import run_spec

#: The measured workload: a 12-job burst of small mixed jobs against one
#: shared 8-core FAIR pool, bounded admission so the queue is exercised.
CORE_SPEC = {"mix": "sparkpi,pagerank-small", "n_jobs": 12,
             "mean_interarrival_s": 20.0, "pool_cores": 8,
             "pool_style": "vm", "mode": "fair", "max_concurrent": 4}

OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_core.json")


def _spec(n_jobs: int = None, seed: int = 0) -> ExperimentSpec:
    extra = dict(CORE_SPEC)
    if n_jobs is not None:
        extra["n_jobs"] = n_jobs
    return ExperimentSpec(workload="multijob", scenario="multijob",
                          seed=seed, extra=extra)


def measure_core_speed(n_jobs: int = None, seed: int = 0) -> dict:
    """One timed multijob replay reduced to the throughput figures."""
    started = time.perf_counter()
    record = run_spec(_spec(n_jobs=n_jobs, seed=seed))
    wall_s = time.perf_counter() - started
    assert record.error is None and not record.failed, record.error
    m = record.metrics
    events = int(m["events_processed"])
    jobs = int(m["jobs"])
    return {
        "scenario": "multijob",
        "params": dict(CORE_SPEC, n_jobs=jobs, seed=seed),
        "jobs": jobs,
        "events_processed": events,
        "simulated_s": record.duration_s,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s,
        "jobs_per_sec": jobs / wall_s,
        "sim_speedup": record.duration_s / wall_s,
    }


def run_core_bench() -> dict:
    return measure_core_speed()


def test_core_speed(benchmark, emit):
    result = run_once(benchmark, run_core_bench)
    emit("Core simulator throughput (multijob, 12 jobs, 8-core FAIR pool)",
         format_table(
             ["metric", "value"],
             [["events processed", result["events_processed"]],
              ["simulated seconds", f"{result['simulated_s']:.0f}"],
              ["wall seconds", f"{result['wall_s']:.3f}"],
              ["events/sec", f"{result['events_per_sec']:,.0f}"],
              ["jobs/sec", f"{result['jobs_per_sec']:.2f}"],
              ["sim-time speedup", f"{result['sim_speedup']:,.0f}x"]]))
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")
    # The kernel dispatches thousands of events per wall second even on
    # modest hardware; order-of-magnitude floors only, so the assertion
    # survives CI-grade machines. (The 12-job burst dispatches ~6.5k
    # events, deterministically per seed.)
    assert result["events_processed"] > 5_000
    assert result["events_per_sec"] > 5_000
    assert result["jobs_per_sec"] > 0.2
    assert result["sim_speedup"] > 10


# ---------------------------------------------------------------------------
# Smoke
# ---------------------------------------------------------------------------

@pytest.mark.smoke
def test_smoke_core_speed_counts_events():
    result = measure_core_speed(n_jobs=3)
    assert result["jobs"] == 3
    assert result["events_processed"] > 1_000
    assert result["events_per_sec"] > 0
    # Same seed, same spec => the deterministic figures repeat exactly.
    again = measure_core_speed(n_jobs=3)
    assert again["events_processed"] == result["events_processed"]
    assert again["simulated_s"] == result["simulated_s"]
