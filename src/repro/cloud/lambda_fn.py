"""Simulated FaaS cloud functions (AWS Lambda-style).

Models every Lambda property §3 of the paper identifies as a design
constraint:

- memory-indexed capacity: one full vCPU per 1536 MB, fractional below;
- warm starts (~100 ms) vs cold starts (several seconds);
- a hard 15 minute lifetime after which the provider reaps the container;
- 512 MB of local /tmp scratch;
- network bandwidth proportional to allocated memory;
- no inbound connectivity (peers cannot push data to a Lambda — all state
  exchange must go through external storage, which is why SplitServe needs
  its HDFS shuffle layer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cloud.constants import (
    LAMBDA_COLD_START_CV,
    LAMBDA_COLD_START_MEAN_S,
    LAMBDA_LIFETIME_S,
    LAMBDA_MAX_MEMORY_MB,
    LAMBDA_MB_PER_VCPU,
    LAMBDA_NET_BYTES_PER_S_PER_MB,
    LAMBDA_TMP_BYTES,
    LAMBDA_WARM_START_CV,
    LAMBDA_WARM_START_MEAN_S,
)
from repro.cloud.network import FairShareLink
from repro.observability.categories import (
    CAT_LAMBDA,
    EV_EXPIRED,
    EV_FINISHED,
    EV_INVOKED,
    EV_RUNNING,
)
from repro.simulation.events import Event
from repro.simulation.resources import Container

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder


class LambdaInvokeError(RuntimeError):
    """An invocation failed at the provider (transient service error)."""


class LambdaThrottledError(LambdaInvokeError):
    """The account's concurrent-execution limit rejected the invocation
    (AWS's 429 ``TooManyRequestsException``). A subclass of
    :class:`LambdaInvokeError` so one retry path handles both."""


class LambdaState(enum.Enum):
    STARTING = "starting"
    RUNNING = "running"
    FINISHED = "finished"
    EXPIRED = "expired"  # reaped by the provider at the lifetime cap


@dataclass(frozen=True)
class LambdaConfig:
    """Invocation-time configuration of a function."""

    memory_mb: int = LAMBDA_MB_PER_VCPU
    lifetime_s: float = LAMBDA_LIFETIME_S

    def __post_init__(self) -> None:
        if not 128 <= self.memory_mb <= LAMBDA_MAX_MEMORY_MB:
            raise ValueError(
                f"memory_mb must be in [128, {LAMBDA_MAX_MEMORY_MB}], "
                f"got {self.memory_mb}")
        if self.lifetime_s <= 0:
            raise ValueError(f"lifetime_s must be positive, got {self.lifetime_s}")

    @property
    def cpu_share(self) -> float:
        """Fraction of one vCPU this memory size buys (capped at 2 vCPUs
        at the top of the range, matching AWS's allocation curve)."""
        return min(2.0, self.memory_mb / LAMBDA_MB_PER_VCPU)

    @property
    def network_bytes_per_s(self) -> float:
        return LAMBDA_NET_BYTES_PER_S_PER_MB * self.memory_mb

    @property
    def memory_bytes(self) -> int:
        return self.memory_mb * 1024 * 1024


class LambdaInstance:
    """One invoked function container.

    ``ready`` fires when the container finishes its (warm or cold) start.
    ``expired`` fires if the provider reaps the container at the lifetime
    cap while it is still running — work on it at that moment is lost,
    exactly the failure SplitServe's segueing is designed to pre-empt.
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        config: LambdaConfig,
        rng: "RandomStreams",
        warm: bool,
        trace: Optional["TraceRecorder"] = None,
        start_delay_s: Optional[float] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.config = config
        self.warm_start = warm
        self._trace = trace
        self.state = LambdaState.STARTING
        self.invoke_time = env.now
        self.running_time: Optional[float] = None
        self.finish_time: Optional[float] = None

        self.ready: Event = Event(env)
        self.expired: Event = Event(env)

        self.net_link = FairShareLink(
            env, config.network_bytes_per_s, name=f"{name}/net")
        self.tmp = Container(env, capacity=float(LAMBDA_TMP_BYTES))

        if start_delay_s is None:
            if warm:
                start_delay_s = rng.lognormal_around(
                    "lambda.warm_start", LAMBDA_WARM_START_MEAN_S,
                    LAMBDA_WARM_START_CV)
            else:
                start_delay_s = rng.lognormal_around(
                    "lambda.cold_start", LAMBDA_COLD_START_MEAN_S,
                    LAMBDA_COLD_START_CV)
        self.start_delay_s = start_delay_s
        env.process(self._lifecycle(start_delay_s))
        self._record(EV_INVOKED, warm=warm, start_delay=start_delay_s)

    # ------------------------------------------------------------------

    def _lifecycle(self, start_delay: float):
        yield self.env.timeout(start_delay)
        if self.state is not LambdaState.STARTING:
            return  # finished (cancelled) during startup
        self.state = LambdaState.RUNNING
        self.running_time = self.env.now
        self.ready.succeed(self)
        self._record(EV_RUNNING)

        # Lifetime reaper: counts from invocation, as AWS does.
        remaining = self.config.lifetime_s - (self.env.now - self.invoke_time)
        yield self.env.timeout(max(0.0, remaining))
        if self.state is LambdaState.RUNNING:
            self.state = LambdaState.EXPIRED
            self.finish_time = self.env.now
            self.expired.succeed(self)
            self._record(EV_EXPIRED)

    def finish(self) -> None:
        """The function returned (the executor on it shut down cleanly)."""
        if self.state in (LambdaState.FINISHED, LambdaState.EXPIRED):
            return
        self.state = LambdaState.FINISHED
        self.finish_time = self.env.now
        self._record(EV_FINISHED)

    # ------------------------------------------------------------------

    @property
    def state(self) -> LambdaState:
        return self._state

    @state.setter
    def state(self, value: LambdaState) -> None:
        # Same plain-attribute ``is_running`` scheme as VirtualMachine:
        # hot readers pay an attribute load, rare transitions pay the
        # property setter.
        self._state = value
        self.is_running = value is LambdaState.RUNNING

    @property
    def billed_duration(self) -> float:
        """Seconds from invocation until the function stopped (or now)."""
        end = self.finish_time if self.finish_time is not None else self.env.now
        return max(0.0, end - self.invoke_time)

    @property
    def time_running(self) -> float:
        """Seconds since the container finished starting (0 if starting)."""
        if self.running_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else self.env.now
        return max(0.0, end - self.running_time)

    @property
    def remaining_lifetime(self) -> float:
        """Seconds until the provider reaps this container."""
        return max(0.0, self.config.lifetime_s - (self.env.now - self.invoke_time))

    def _record(self, event: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.env.now, CAT_LAMBDA, event,
                               fn=self.name, memory_mb=self.config.memory_mb,
                               **fields)

    def __repr__(self) -> str:
        return f"<Lambda {self.name} {self.config.memory_mb}MB {self.state.value}>"
