"""Declarative, seeded fault injection (the robustness harness).

SplitServe's central robustness claim (§2, §4.3) is about *degradation*:
external HDFS shuffle turns executor loss from a full lineage rollback
into a cheap re-dispatch, and the Lambda pool's failure modes (invoke
errors, account-level concurrency throttling, the 15-minute reaper) must
degrade a job, not kill it. This module makes those failure modes a
first-class, replayable experiment input:

- :class:`FaultSpec` — one declarative fault: a *kind*, a *trigger*
  (simulation time, a counted scheduler event, or a probability drawn
  from a named :class:`~repro.simulation.rng.RandomStreams` stream), and
  a *target selector* choosing the victims.
- :class:`FaultPlan` — an ordered, hashable tuple of fault specs; the
  value that rides on :class:`~repro.experiments.spec.ExperimentSpec`.
- :class:`FaultInjector` — arms a plan against a live simulation
  (scheduler + provider + storage services) and fires the faults through
  the event kernel.
- :class:`RecoveryAccounting` — a scheduler observer tallying what the
  failures cost: wasted work seconds, rollback recompute time, and
  time-to-recovery per lost partition.

Determinism guarantee: every random choice (victim selection,
per-invocation failure draws) flows through named ``RandomStreams``
streams, and every timer runs on the simulation clock — so the same seed
plus the same plan yields bit-identical schedules, records, and traces,
across any number of runner processes.

This module deliberately imports nothing from the cloud/spark layers at
module scope (it lives in the simulation substrate those layers build
on); injected objects are driven through their public duck-typed surface.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.observability.categories import (
    CAT_FAULT,
    EV_BROWNOUT_END,
    EV_BROWNOUT_START,
    EV_EXECUTOR_KILLED,
    EV_INVOKE_FAILED,
    EV_RECOVERED,
    EV_STRAGGLER_END,
    EV_STRAGGLER_START,
    EV_THROTTLE_END,
    EV_THROTTLE_START,
    EV_VM_REVOKED,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder

# -- fault vocabulary -------------------------------------------------------

KIND_EXECUTOR_KILL = "executor_kill"
KIND_SPOT_REVOCATION = "spot_revocation"
KIND_LAMBDA_INVOKE_FAILURE = "lambda_invoke_failure"
KIND_LAMBDA_THROTTLE = "lambda_throttle"
KIND_STORAGE_BROWNOUT = "storage_brownout"
KIND_STRAGGLER = "straggler"

FAULT_KINDS = (
    KIND_EXECUTOR_KILL,
    KIND_SPOT_REVOCATION,
    KIND_LAMBDA_INVOKE_FAILURE,
    KIND_LAMBDA_THROTTLE,
    KIND_STORAGE_BROWNOUT,
    KIND_STRAGGLER,
)

#: Scheduler counters an ``on_event`` trigger may reference, as
#: ``"<counter>:<n>"`` — the fault fires when the counter reaches n.
EVENT_COUNTERS = ("tasks_finished", "taskset_complete", "executor_lost")

#: Kinds whose effect has a victim multiplicity (``count``).
_COUNTED_KINDS = (KIND_EXECUTOR_KILL, KIND_SPOT_REVOCATION, KIND_STRAGGLER)
#: Kinds that need a slowdown ``factor``.
_FACTOR_KINDS = (KIND_STORAGE_BROWNOUT, KIND_STRAGGLER)

#: RNG stream used to pick victims among matching candidates.
SELECT_STREAM = "fault.select"
#: RNG stream for per-invocation Lambda failure draws.
INVOKE_STREAM = "fault.lambda.invoke"


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Triggers (exactly one, except ``lambda_invoke_failure`` which is
    probabilistic and optionally windowed by ``at_s``/``duration_s``):

    - ``at_s`` — fire at this simulation time;
    - ``on_event`` — fire when a scheduler counter reaches a value,
      written ``"tasks_finished:4"`` (see :data:`EVENT_COUNTERS`);
    - ``probability`` — per-Lambda-invocation failure probability drawn
      from the seeded :data:`INVOKE_STREAM` stream.

    Target selectors (``target``): ``"any"``/``"*"``; ``"vm"`` /
    ``"lambda"`` (executor host kind); ``"executor:<glob>"`` on executor
    ids; ``"vm:<glob>"`` on VM names; ``"spot"`` (spot instances only);
    ``"storage:<glob>"`` on storage-service names.

    Effect parameters: ``count`` victims for kills/revocations/
    stragglers; ``duration_s`` windows for throttles, brownouts and
    stragglers (None = until the end of the run); ``factor`` is the
    latency multiplier of a brownout or the slow-down multiplier of a
    straggler; ``limit`` is the account concurrency cap of a
    ``lambda_throttle``.
    """

    kind: str
    at_s: Optional[float] = None
    on_event: Optional[str] = None
    probability: Optional[float] = None
    target: str = "any"
    count: int = 1
    duration_s: Optional[float] = None
    factor: Optional[float] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {list(FAULT_KINDS)}")
        if self.at_s is not None and self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.on_event is not None:
            self._validate_on_event()
        if self.kind == KIND_LAMBDA_INVOKE_FAILURE:
            if self.on_event is not None:
                raise ValueError(
                    "lambda_invoke_failure is probabilistic; it takes an "
                    "optional at_s/duration_s window, not on_event")
            if self.probability is None or not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    "lambda_invoke_failure needs probability in (0, 1], "
                    f"got {self.probability}")
        else:
            if self.probability is not None:
                raise ValueError(
                    f"probability only applies to lambda_invoke_failure, "
                    f"not {self.kind}")
            if (self.at_s is None) == (self.on_event is None):
                raise ValueError(
                    f"{self.kind} needs exactly one trigger: at_s or "
                    f"on_event")
        if self.kind in _FACTOR_KINDS:
            if self.factor is None or self.factor < 1.0:
                raise ValueError(
                    f"{self.kind} needs factor >= 1.0, got {self.factor}")
        elif self.factor is not None:
            raise ValueError(f"factor does not apply to {self.kind}")
        if self.kind == KIND_LAMBDA_THROTTLE:
            if self.limit is None or self.limit < 0:
                raise ValueError(
                    f"lambda_throttle needs limit >= 0, got {self.limit}")
        elif self.limit is not None:
            raise ValueError(f"limit only applies to lambda_throttle")
        if self.count != 1 and self.kind not in _COUNTED_KINDS:
            raise ValueError(f"count only applies to {_COUNTED_KINDS}")

    def _validate_on_event(self) -> None:
        counter, sep, raw = str(self.on_event).partition(":")
        ok = bool(sep) and counter in EVENT_COUNTERS
        if ok:
            try:
                ok = int(raw) >= 1
            except ValueError:
                ok = False
        if not ok:
            raise ValueError(
                f"on_event must look like '<counter>:<n>' with counter in "
                f"{list(EVENT_COUNTERS)} and n >= 1, got {self.on_event!r}")

    # -- serialization (JSON scalars only: cache/CLI-safe) -----------------

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultSpec field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        if "kind" not in data:
            raise ValueError("a fault spec needs a 'kind'")
        kwargs = dict(data)
        if kwargs.get("count") is None:
            kwargs["count"] = 1
        if kwargs.get("target") is None:
            kwargs["target"] = "any"
        return cls(**kwargs)


FaultsInput = Union["FaultPlan", Iterable[Union[FaultSpec, Mapping]], None]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults — the unit a run is armed with."""

    faults: Tuple[FaultSpec, ...] = ()

    @classmethod
    def coerce(cls, obj: FaultsInput) -> "FaultPlan":
        """Normalize None / a plan / an iterable of specs-or-dicts."""
        if obj is None:
            return cls()
        if isinstance(obj, FaultPlan):
            return obj
        specs = []
        for item in obj:
            if isinstance(item, FaultSpec):
                specs.append(item)
            elif isinstance(item, Mapping):
                specs.append(FaultSpec.from_dict(item))
            else:
                raise TypeError(
                    f"fault entries must be FaultSpec or mapping, "
                    f"got {type(item).__name__}")
        return cls(tuple(specs))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [fault.to_dict() for fault in self.faults]

    def shifted(self, dt: float) -> "FaultPlan":
        """A copy with every ``at_s`` trigger moved ``dt`` seconds later.

        Batch runs arm plans at simulated time zero, but the long-lived
        serve cluster injects chaos mid-flight — shifting lets a plan
        authored relative to "now" land relative to the cluster's
        current ``env.now``.
        """
        if not dt:
            return self
        return FaultPlan(tuple(
            dataclasses.replace(f, at_s=f.at_s + dt)
            if f.at_s is not None else f
            for f in self.faults))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


# -- named chaos plans --------------------------------------------------------

def _plan_throttle_storm(duration_s: float = 20.0) -> FaultPlan:
    """Lambda concurrency slammed to zero, then lifted: the breaker's
    bread and butter (consecutive throttles open it; the lift lets the
    half-open probe close it again)."""
    return FaultPlan((
        FaultSpec(KIND_LAMBDA_THROTTLE, at_s=0.0, limit=0,
                  duration_s=duration_s),
    ))


def _plan_spot_storm(duration_s: float = 30.0) -> FaultPlan:
    """A spot-revocation wave plus a concurrency squeeze — the
    SplitServe worst case: IaaS capacity vanishing exactly while the
    FaaS escape hatch is throttled."""
    return FaultPlan((
        FaultSpec(KIND_SPOT_REVOCATION, at_s=0.0, target="spot", count=2),
        FaultSpec(KIND_LAMBDA_THROTTLE, at_s=1.0, limit=1,
                  duration_s=duration_s),
        FaultSpec(KIND_EXECUTOR_KILL, at_s=duration_s / 2, count=1),
    ))


def _plan_brownout(duration_s: float = 15.0,
                   factor: float = 4.0) -> FaultPlan:
    """Every storage service degraded by ``factor`` for a window."""
    return FaultPlan((
        FaultSpec(KIND_STORAGE_BROWNOUT, at_s=0.0, factor=factor,
                  duration_s=duration_s),
    ))


def _plan_straggler_wave(duration_s: float = 20.0,
                         factor: float = 8.0) -> FaultPlan:
    """Two stragglers plus a flaky Lambda bridge (10% invoke failure)."""
    return FaultPlan((
        FaultSpec(KIND_STRAGGLER, at_s=0.0, count=2, factor=factor,
                  duration_s=duration_s),
        FaultSpec(KIND_LAMBDA_INVOKE_FAILURE, probability=0.1, at_s=0.0,
                  duration_s=duration_s),
    ))


#: Named chaos plans the serve layer (``repro chaos`` / ``POST /chaos``)
#: arms by name. Builders take only scalar kwargs so plans stay
#: CLI/JSON-addressable.
CHAOS_PLANS = {
    "throttle_storm": _plan_throttle_storm,
    "spot_storm": _plan_spot_storm,
    "brownout": _plan_brownout,
    "straggler_wave": _plan_straggler_wave,
}


def chaos_plan(name: str, **kwargs: Any) -> FaultPlan:
    """Build a named chaos plan (see :data:`CHAOS_PLANS`)."""
    try:
        builder = CHAOS_PLANS[name]
    except KeyError:
        raise ValueError(f"unknown chaos plan {name!r}; "
                         f"known: {sorted(CHAOS_PLANS)}") from None
    return builder(**kwargs)


# -- target selectors -------------------------------------------------------

def _executor_kind(executor) -> str:
    kind = getattr(executor, "kind", None)
    return getattr(kind, "value", str(kind))


def match_executor(target: str, executor) -> bool:
    """Does ``target`` select this executor?"""
    if target in ("any", "*"):
        return True
    kind = _executor_kind(executor)
    if target in ("vm", "lambda"):
        return kind == target
    if target.startswith("executor:"):
        return fnmatch.fnmatchcase(executor.executor_id,
                                   target[len("executor:"):])
    if target.startswith("vm:"):
        vm = getattr(executor, "vm", None)
        return (kind == "vm" and vm is not None
                and fnmatch.fnmatchcase(vm.name, target[len("vm:"):]))
    return False


def match_vm(target: str, vm) -> bool:
    """Does ``target`` select this VM (for revocation waves)?"""
    if target in ("any", "*"):
        return True
    if target == "spot":
        return hasattr(vm, "mean_revocation_s")
    if target.startswith("vm:"):
        return fnmatch.fnmatchcase(vm.name, target[len("vm:"):])
    return False


def match_storage(target: str, service) -> bool:
    if target in ("any", "*"):
        return True
    if target.startswith("storage:"):
        return fnmatch.fnmatchcase(service.name, target[len("storage:"):])
    return False


# -- the injector -----------------------------------------------------------

class FaultInjector:
    """Arms a :class:`FaultPlan` against one live simulation.

    ``attach`` wires the injector to the run's task scheduler (as an
    observer, for event-count triggers and executor targeting), cloud
    provider (throttles and invoke failures) and storage services
    (brownouts), then starts a kernel process per time trigger. Every
    fired fault is appended to :attr:`injected` and recorded under the
    ``"fault"`` trace category.
    """

    def __init__(self, env: "Environment", rng: "RandomStreams",
                 plan: FaultsInput, trace: Optional["TraceRecorder"] = None):
        self.env = env
        self.rng = rng
        self.plan = FaultPlan.coerce(plan)
        self.trace = trace
        self.scheduler = None
        self.provider = None
        self.storages: List = []
        #: Chronological log of fired fault effects (dicts of scalars).
        self.injected: List[Dict[str, Any]] = []
        self._counters = {name: 0 for name in EVENT_COUNTERS}
        self._event_armed: List[FaultSpec] = []

    def attach(self, scheduler=None, provider=None,
               storages: Sequence = ()) -> "FaultInjector":
        self.scheduler = scheduler
        self.provider = provider
        self.storages = list(storages)
        if scheduler is not None and self not in scheduler.observers:
            scheduler.observers.append(self)
        invoke_faults = [f for f in self.plan
                         if f.kind == KIND_LAMBDA_INVOKE_FAILURE]
        if invoke_faults and provider is not None:
            provider.invoke_fault = self._make_invoke_gate(invoke_faults)
        for fault in self.plan:
            if fault.kind == KIND_LAMBDA_INVOKE_FAILURE:
                continue
            if fault.at_s is not None:
                self.env.process(self._fire_later(fault))
            else:
                self._event_armed.append(fault)
        return self

    # -- scheduler-observer callbacks (event-count triggers) ---------------

    def on_task_finished(self, attempt) -> None:
        self._bump("tasks_finished")

    def on_taskset_complete(self, taskset) -> None:
        self._bump("taskset_complete")

    def on_executor_lost(self, executor, reason: str) -> None:
        self._bump("executor_lost")

    def _bump(self, counter: str) -> None:
        self._counters[counter] += 1
        if not self._event_armed:
            return
        due = [f for f in self._event_armed if self._event_met(f.on_event)]
        for fault in due:
            self._event_armed.remove(fault)
            self._fire(fault)

    def _event_met(self, on_event: str) -> bool:
        counter, _, raw = on_event.partition(":")
        return self._counters[counter] >= int(raw)

    # -- firing ------------------------------------------------------------

    def _fire_later(self, fault: FaultSpec):
        delay = max(0.0, fault.at_s - self.env.now)
        if delay > 0:
            yield self.env.timeout(delay)
        self._fire(fault)

    def _fire(self, fault: FaultSpec) -> None:
        handler = {
            KIND_EXECUTOR_KILL: self._kill_executors,
            KIND_SPOT_REVOCATION: self._revoke_vms,
            KIND_LAMBDA_THROTTLE: self._throttle_lambdas,
            KIND_STORAGE_BROWNOUT: self._brownout,
            KIND_STRAGGLER: self._slow_down,
        }[fault.kind]
        handler(fault)

    def _pick(self, candidates: List, count: int) -> List:
        """Seeded victim choice among matching candidates (order kept)."""
        if count >= len(candidates):
            return list(candidates)
        chosen = self.rng.stream(SELECT_STREAM).permutation(
            len(candidates))[:count]
        return [candidates[i] for i in sorted(int(i) for i in chosen)]

    def _kill_executors(self, fault: FaultSpec) -> None:
        if self.scheduler is None:
            return
        candidates = [ex for ex in self.scheduler.registered_executors
                      if match_executor(fault.target, ex)]
        for executor in self._pick(candidates, fault.count):
            self._log(fault, EV_EXECUTOR_KILLED,
                      executor=executor.executor_id)
            self.scheduler.decommission_executor(
                executor, graceful=False, reason="fault: executor_kill")

    def _revoke_vms(self, fault: FaultSpec) -> None:
        if self.provider is None:
            return
        candidates = [vm for vm in self.provider.running_vms
                      if match_vm(fault.target, vm)]
        for vm in self._pick(candidates, fault.count):
            self._log(fault, EV_VM_REVOKED, vm=vm.name)
            vm.terminate()

    def _throttle_lambdas(self, fault: FaultSpec) -> None:
        provider = self.provider
        if provider is None:
            return
        previous = provider.concurrency_limit
        provider.concurrency_limit = fault.limit
        self._log(fault, EV_THROTTLE_START, limit=fault.limit)
        if fault.duration_s is not None:
            def lift(env):
                yield env.timeout(fault.duration_s)
                provider.concurrency_limit = previous
                self._log(fault, EV_THROTTLE_END)
            self.env.process(lift(self.env))

    def _brownout(self, fault: FaultSpec) -> None:
        targets = [s for s in self.storages
                   if match_storage(fault.target, s)]
        for service in targets:
            service.degrade(fault.factor)
            self._log(fault, EV_BROWNOUT_START, storage=service.name,
                      factor=fault.factor)
        if fault.duration_s is not None and targets:
            def lift(env):
                yield env.timeout(fault.duration_s)
                for service in targets:
                    service.restore()
                    self._log(fault, EV_BROWNOUT_END, storage=service.name)
            self.env.process(lift(self.env))

    def _slow_down(self, fault: FaultSpec) -> None:
        if self.scheduler is None:
            return
        candidates = [ex for ex in self.scheduler.registered_executors
                      if match_executor(fault.target, ex)]
        victims = self._pick(candidates, fault.count)
        for executor in victims:
            executor.cpu_slowdown = fault.factor
            self._log(fault, EV_STRAGGLER_START,
                      executor=executor.executor_id, factor=fault.factor)
        if fault.duration_s is not None and victims:
            def lift(env):
                yield env.timeout(fault.duration_s)
                for executor in victims:
                    executor.cpu_slowdown = 1.0
                    self._log(fault, EV_STRAGGLER_END,
                              executor=executor.executor_id)
            self.env.process(lift(self.env))

    def _make_invoke_gate(self, faults: List[FaultSpec]):
        """Build the provider's per-invocation failure hook."""
        def gate() -> Optional[BaseException]:
            from repro.cloud.lambda_fn import LambdaInvokeError
            for fault in faults:
                if fault.at_s is not None:
                    if self.env.now < fault.at_s:
                        continue
                    if (fault.duration_s is not None
                            and self.env.now >= fault.at_s + fault.duration_s):
                        continue
                draw = float(self.rng.stream(INVOKE_STREAM).random())
                if draw < fault.probability:
                    self._log(fault, EV_INVOKE_FAILED)
                    return LambdaInvokeError("injected invoke failure")
            return None
        return gate

    def _log(self, fault: FaultSpec, event: str, **fields) -> None:
        self.injected.append(
            {"t": self.env.now, "kind": fault.kind, "event": event,
             **fields})
        if self.trace is not None:
            self.trace.record(self.env.now, CAT_FAULT, event,
                              kind=fault.kind, **fields)


# -- recovery accounting ----------------------------------------------------

class RecoveryAccounting:
    """Scheduler observer that prices failures and recovery.

    - ``wasted_work_s`` — wall seconds spent by attempts that failed or
      were killed (speculation losers excluded: losing a race is not a
      failure).
    - ``rollback_recompute_s`` — seconds spent re-running partitions
      that had already succeeded once (the lineage-rollback cost of a
      local shuffle backend; zero when outputs survive executor loss).
    - ``recovery_times`` — per in-flight partition lost with its
      executor, the time until that partition finally succeeded.
    """

    def __init__(self, env: "Environment",
                 trace: Optional["TraceRecorder"] = None) -> None:
        self.env = env
        self.trace = trace
        self.wasted_work_s = 0.0
        self.rollback_recompute_s = 0.0
        self.executors_lost = 0
        self.recovery_times: List[float] = []
        self._succeeded: Set[Tuple[int, int]] = set()
        self._lost_at: Dict[Tuple[int, int], float] = {}

    def on_task_failed(self, attempt) -> None:
        self.wasted_work_s += max(0.0, attempt.metrics.duration)

    def on_executor_lost(self, executor, reason: str) -> None:
        self.executors_lost += 1
        # Interrupt delivery is deferred through the event queue, so the
        # executor's in-flight attempts are still observable here.
        for attempt in getattr(executor, "active_attempts", ()):
            key = (attempt.spec.stage_id, attempt.spec.partition)
            self._lost_at.setdefault(key, self.env.now)

    def on_task_finished(self, attempt) -> None:
        key = (attempt.spec.stage_id, attempt.spec.partition)
        lost_at = self._lost_at.pop(key, None)
        if lost_at is not None:
            elapsed = self.env.now - lost_at
            self.recovery_times.append(elapsed)
            if self.trace is not None:
                self.trace.record(self.env.now, CAT_FAULT, EV_RECOVERED,
                                  task=attempt.spec.describe(),
                                  after_s=elapsed)
        if key in self._succeeded:
            self.rollback_recompute_s += attempt.metrics.duration
        else:
            self._succeeded.add(key)

    def metrics(self) -> Dict[str, float]:
        """The recovery block merged into ``RunRecord.metrics``."""
        times = self.recovery_times
        return {
            "wasted_work_s": self.wasted_work_s,
            "rollback_recompute_s": self.rollback_recompute_s,
            "executors_lost": self.executors_lost,
            "recoveries": len(times),
            "time_to_recovery_total_s": sum(times),
            "time_to_recovery_max_s": max(times) if times else 0.0,
        }
