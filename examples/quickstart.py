#!/usr/bin/env python3
"""Quickstart: run one latency-critical job under every §5.1 scenario.

A PageRank job (sized for 16 cores) arrives to a cluster with only 3
free VM cores. This script runs all eight evaluation scenarios and
prints execution time and marginal cost for each — the 30-second tour of
what SplitServe buys you.

Run:  python examples/quickstart.py
"""

from repro.analysis.reporting import format_table, relative_to
from repro.core import SCENARIO_NAMES, run_scenario
from repro.experiments import ExperimentSpec
from repro.workloads import PageRankWorkload


def main() -> None:
    workload = PageRankWorkload()
    spec = workload.spec
    print(f"workload: {workload.name} "
          f"(R={spec.required_cores} cores wanted, "
          f"r={spec.available_cores} free on VMs)\n")

    results = {name: run_scenario(ExperimentSpec("pagerank", name))
               for name in SCENARIO_NAMES}
    base = results["spark_R_vm"].duration_s

    rows = []
    for name in SCENARIO_NAMES:
        result = results[name]
        if result.failed:
            rows.append([result.label(spec), "FAILED", "-", "-"])
            continue
        rows.append([result.label(spec), f"{result.duration_s:.1f}s",
                     relative_to(base, result.duration_s),
                     f"${result.cost:.4f}"])
    print(format_table(["scenario", "time", "vs baseline", "marginal cost"],
                       rows))

    hybrid = results["ss_hybrid"].duration_s
    autoscale = results["spark_autoscale"].duration_s
    print(f"\nSplitServe's hybrid run beats VM-based autoscaling by "
          f"{1 - hybrid / autoscale:.0%}: the {spec.shortfall_cores} "
          f"Lambdas start in ~100 ms instead of waiting ~2 minutes "
          f"for fresh VMs.")


if __name__ == "__main__":
    main()
