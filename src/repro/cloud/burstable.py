"""Burstable instances (t2/t3 family) — the BurScale alternative (§2).

BurScale provisions *standby burstable VMs* to absorb transient overload
while regular VMs boot. A burstable instance runs at full speed while it
holds CPU credits and collapses to a baseline fraction when they run
out; credits accrue while the instance idles below baseline. The paper
positions this as complementary to SplitServe — burstables still pay the
~2 minute provisioning delay when procured fresh, and standby ones cost
money around the clock; the credit mechanics are what
``bench_ablation_burstable.py`` explores.

Specs follow the 2020 t2 family: credits are measured in vCPU-minutes
(one credit = one vCPU at 100 % for one minute); we store them as
full-speed CPU-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.cloud.constants import GB, MBPS
from repro.cloud.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.instance_types import InstanceType
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder


@dataclass(frozen=True)
class BurstableSpec:
    """Credit mechanics of one burstable type."""

    baseline_fraction: float  # per-vCPU sustained fraction
    launch_credits: int  # initial CPU credits (vCPU-minutes)
    earn_credits_per_hour: float  # accrual rate while idle
    max_credits: int  # accrual cap

    def __post_init__(self) -> None:
        if not 0 < self.baseline_fraction <= 1:
            raise ValueError("baseline_fraction must be in (0, 1]")


def _t2(name, vcpus, mem_gib, net_mbps, price, baseline, launch, earn, cap):
    from repro.cloud.instance_types import InstanceType

    itype = InstanceType(
        name=name, vcpus=vcpus, memory_bytes=int(mem_gib * GB),
        ebs_bandwidth_bytes_per_s=500 * MBPS,
        network_bandwidth_bytes_per_s=net_mbps * MBPS,
        price_per_hour=price)
    spec = BurstableSpec(baseline_fraction=baseline, launch_credits=launch,
                         earn_credits_per_hour=earn, max_credits=cap)
    return itype, spec


#: The t2 types BurScale-style standby pools use (2020 us-east-1).
BURSTABLE_CATALOGUE: Dict[str, tuple] = {
    "t2.medium": _t2("t2.medium", 2, 4, 300, 0.0464, 0.20, 60, 24, 576),
    "t2.large": _t2("t2.large", 2, 8, 300, 0.0928, 0.30, 60, 36, 864),
    "t2.xlarge": _t2("t2.xlarge", 4, 16, 500, 0.1856, 0.225, 120, 54, 1296),
}


class BurstableVM(VirtualMachine):
    """A t2-style VM with a CPU-credit balance.

    :meth:`consume_cpu` converts full-speed CPU-seconds of demand into
    wall-clock time: full speed while credits last, the baseline fraction
    after. Executors on burstable hosts route their compute through it.
    """

    def __init__(self, env: "Environment", name: str, itype: "InstanceType",
                 spec: BurstableSpec, rng: "RandomStreams",
                 trace: Optional["TraceRecorder"] = None,
                 boot_delay_s: Optional[float] = None,
                 already_running: bool = False,
                 initial_credits: Optional[float] = None) -> None:
        super().__init__(env, name, itype, rng, trace=trace,
                         boot_delay_s=boot_delay_s,
                         already_running=already_running)
        self.spec = spec
        credits = (initial_credits if initial_credits is not None
                   else spec.launch_credits)
        #: Balance in full-speed CPU-seconds (1 credit = 60 s).
        self._credit_seconds = float(credits) * 60.0
        self._last_accrual = env.now

    @classmethod
    def launch(cls, env: "Environment", name: str, type_name: str,
               rng: "RandomStreams", **kwargs) -> "BurstableVM":
        try:
            itype, spec = BURSTABLE_CATALOGUE[type_name]
        except KeyError:
            known = ", ".join(sorted(BURSTABLE_CATALOGUE))
            raise KeyError(f"unknown burstable type {type_name!r}; "
                           f"known: {known}") from None
        return cls(env, name, itype, spec, rng, **kwargs)

    # ------------------------------------------------------------------

    @property
    def credit_seconds(self) -> float:
        """Current balance in full-speed CPU-seconds."""
        self._accrue()
        return self._credit_seconds

    @property
    def credits(self) -> float:
        """Current balance in vCPU-minutes (AWS's unit)."""
        return self.credit_seconds / 60.0

    def _accrue(self) -> None:
        """Earn credits for idle time since the last accounting moment.

        A deliberately favourable model: we accrue at the full earn rate
        whenever the instance is up, which overstates a busy instance's
        credits — the BurScale comparison stays conservative *against*
        SplitServe."""
        now = self.env.now
        elapsed = max(0.0, now - self._last_accrual)
        self._last_accrual = now
        if not self.is_running or elapsed == 0:
            return
        earned = self.spec.earn_credits_per_hour * 60.0 * (elapsed / 3600.0)
        cap = self.spec.max_credits * 60.0
        self._credit_seconds = min(cap, self._credit_seconds + earned)

    def consume_cpu(self, cpu_seconds: float) -> float:
        """Burn ``cpu_seconds`` of full-speed demand; returns wall time.

        Full speed while the balance lasts; the remainder limps at the
        baseline fraction (and nets out baseline-rate earning)."""
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be non-negative, got {cpu_seconds}")
        self._accrue()
        if self._credit_seconds >= cpu_seconds:
            self._credit_seconds -= cpu_seconds
            return cpu_seconds
        burst = self._credit_seconds
        self._credit_seconds = 0.0
        remainder = cpu_seconds - burst
        throttled = remainder / self.spec.baseline_fraction
        return burst + throttled

    @property
    def is_throttled(self) -> bool:
        """Out of credits: running at the baseline fraction."""
        return self.credit_seconds <= 0.0
