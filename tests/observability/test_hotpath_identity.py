"""Byte-identity gate for the hot-path refactor (ISSUE 9).

``tests/goldens/hotpath_identity.json`` pins, from before the fast
kernel / compiled bus dispatch / batched sampling work, the observable
outputs the optimizations must not change:

- sha256 of full JSONL event logs for representative fixed-seed
  scenario runs (every event, every field, byte for byte);
- the multijob replay's canonical RunRecord digest and its
  ``events_processed`` count (the kernel-throughput denominator the
  bench divides by);
- the exact ``deterministic_metric_lines`` of a small served flow.

Combined with ``tests/cluster/golden_scenarios.json`` this is the
"nothing observable changed" proof the ROADMAP demands for kernel
optimizations. To regenerate after an intentional model change::

    PYTHONPATH=src python -m tests.goldens.regen_hotpath
"""

import json
import pathlib

import pytest

from tests.goldens.regen_hotpath import (
    EVENT_LOG_CASES,
    GOLDEN_PATH,
    event_log_digest,
    multijob_pin,
    serve_metric_lines,
)


def _golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


GOLDEN = _golden()


@pytest.mark.parametrize("case", sorted(EVENT_LOG_CASES))
def test_event_log_bytes_match_golden(case):
    assert event_log_digest(EVENT_LOG_CASES[case]) \
        == GOLDEN["event_logs"][case], (
        f"JSONL event log for {case} drifted from the pinned digest — "
        "a hot-path change altered the observable event stream")


def test_multijob_record_and_event_count_match_golden():
    pin = multijob_pin()
    assert pin["events_processed"] \
        == GOLDEN["multijob"]["events_processed"], (
        "the multijob replay dispatched a different number of kernel "
        "events — the bench denominator is no longer comparable")
    assert pin["record_sha256"] == GOLDEN["multijob"]["record_sha256"], (
        "the multijob RunRecord (metrics, latencies, costs) drifted")


def test_serve_deterministic_metric_lines_match_golden():
    assert serve_metric_lines() == GOLDEN["serve_metric_lines"]
