"""The typed event bus every instrumented component publishes to.

Historically components wrote straight into a
:class:`~repro.simulation.tracing.TraceRecorder` — the recorder *was*
the observability API, so anything else that wanted the event stream
(metrics, exporters, live listeners) had to post-process the trace.
The :class:`EventBus` inverts that: components publish through the same
``record(time, category, name, **fields)`` duck-typed signature, and the
recorder becomes one subscriber among several.

Subscribers are either:

- a :class:`ListenerInterface` implementation — known (category, name)
  pairs dispatch to typed callbacks (``on_task_start`` ...), and every
  event reaches the generic ``on_event`` hook; or
- anything exposing ``record(time, category, name, **fields)`` (e.g. a
  ``TraceRecorder``), which receives the raw stream unchanged.

Publishing is synchronous and in subscription order, so delivery is as
deterministic as the simulation itself.

``record()`` is on the simulation's per-task hot path, so dispatch is
*compiled*: the first event of each ``(category, name)`` builds a flat
call plan — the validation verdict, the typed-callback/`on_event` bound
methods of every subscriber that actually overrides them, in
subscription order — and every later occurrence is one dict lookup plus
direct calls. Subscription changes invalidate the plans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.observability.categories import (
    CAT_DAG,
    CAT_EXECUTOR,
    CAT_FAULT,
    CAT_SCHEDULER,
    CAT_SEGUE,
    EV_DEAD,
    EV_EXECUTOR_DRAINED,
    EV_REGISTERED,
    EV_SEGUE_TRIGGERED,
    EV_STAGE_COMPLETE,
    EV_STAGE_SUBMITTED,
    EV_TASK_END,
    EV_TASK_START,
    EVENTS,
    validate_event,
)


class ListenerInterface:
    """Typed subscriber callbacks. Override any subset.

    Typed callbacks receive ``(time, fields)``; ``fields`` is the
    emitter's payload dict (shared, do not mutate). Every event — typed
    or not — additionally reaches :meth:`on_event`.
    """

    def on_task_start(self, time: float, fields: Dict[str, Any]) -> None:
        """A task attempt began running on an executor."""

    def on_task_end(self, time: float, fields: Dict[str, Any]) -> None:
        """A task attempt finished/failed/was killed on an executor."""

    def on_stage_submitted(self, time: float, fields: Dict[str, Any]) -> None:
        """The DAG scheduler submitted a stage's task set."""

    def on_stage_completed(self, time: float, fields: Dict[str, Any]) -> None:
        """A stage's outputs are complete."""

    def on_executor_added(self, time: float, fields: Dict[str, Any]) -> None:
        """An executor registered (fields carry ``executor``, ``kind``)."""

    def on_executor_removed(self, time: float, fields: Dict[str, Any]) -> None:
        """An executor left the cluster — drained gracefully or died."""

    def on_segue_triggered(self, time: float, fields: Dict[str, Any]) -> None:
        """The segueing facility began a Lambda→VM hand-off round."""

    def on_fault_injected(self, time: float, fields: Dict[str, Any]) -> None:
        """The fault injector fired one fault (any kind)."""

    def on_event(self, time: float, category: str, name: str,
                 fields: Dict[str, Any]) -> None:
        """Generic hook: called for every published event."""


#: (category, name) -> ListenerInterface method name. Fault injections
#: are category-wide (every FaultInjector emission except the
#: ``recovered`` milestone), handled separately below.
TYPED_DISPATCH: Dict[Tuple[str, str], str] = {
    (CAT_EXECUTOR, EV_TASK_START): "on_task_start",
    (CAT_EXECUTOR, EV_TASK_END): "on_task_end",
    (CAT_DAG, EV_STAGE_SUBMITTED): "on_stage_submitted",
    (CAT_DAG, EV_STAGE_COMPLETE): "on_stage_completed",
    (CAT_EXECUTOR, EV_REGISTERED): "on_executor_added",
    (CAT_EXECUTOR, EV_DEAD): "on_executor_removed",
    (CAT_SCHEDULER, EV_EXECUTOR_DRAINED): "on_executor_removed",
    (CAT_SEGUE, EV_SEGUE_TRIGGERED): "on_segue_triggered",
}

#: Fault-category names that count as injections (everything but the
#: post-hoc "recovered" milestone).
_FAULT_INJECTED_NAMES = EVENTS[CAT_FAULT] - {"recovered"}


def dispatch_method(category: str, name: str) -> Optional[str]:
    """The typed ListenerInterface method for ``(category, name)``, or
    None for events with only the generic ``on_event`` hook. Single
    source of truth for the compiled plans and any reference
    implementation (the identity tests compare against one)."""
    method = TYPED_DISPATCH.get((category, name))
    if method is None and category == CAT_FAULT \
            and name in _FAULT_INJECTED_NAMES:
        method = "on_fault_injected"
    return method


class _RecorderSubscriber(ListenerInterface):
    """Adapter: feeds the raw stream into a TraceRecorder-like sink.

    A sink disabled at subscription time is compiled *out* of the call
    plans entirely (see :meth:`EventBus._compile`) —
    :class:`~repro.simulation.tracing.TraceRecorder` sets ``enabled``
    once at construction, so the verdict is stable for a run's lifetime.
    Sinks without an ``enabled`` flag always receive the stream.
    """

    def __init__(self, recorder: Any) -> None:
        self.recorder = recorder

    def on_event(self, time: float, category: str, name: str,
                 fields: Dict[str, Any]) -> None:
        self.recorder.record(time, category, name, **fields)


def _overridden(sub: ListenerInterface, method: str):
    """``sub``'s bound ``method`` if it overrides the ListenerInterface
    no-op, else None (base no-ops are skipped at compile time, not
    called per event). Instance-level overrides (monkeypatched
    callables) are detected too: only a bound method whose underlying
    function *is* the base-class no-op is dropped."""
    fn = getattr(sub, method)
    if getattr(fn, "__func__", None) is getattr(ListenerInterface, method):
        return None
    return fn


class EventBus:
    """Fan-out hub with the ``TraceRecorder.record`` signature.

    ``validate=True`` (the default) rejects events not registered in
    :mod:`repro.observability.categories` — the runtime half of the
    taxonomy lint. Pass ``validate=False`` to route ad-hoc events.
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate
        self._subscribers: List[ListenerInterface] = []
        self._context: Optional[Dict[str, Any]] = None
        #: (category, name) -> tuple of (typed_bound_or_None,
        #: on_event_bound_or_None) per subscriber that handles the
        #: event, in subscription order. Compiled lazily; cleared on any
        #: subscription change. An empty tuple is the cached no-op
        #: verdict (zero interested subscribers).
        self._plans: Dict[Tuple[str, str], tuple] = {}

    def set_context(self, fields: Optional[Dict[str, Any]]) -> None:
        """Ambient fields merged into every published event until
        cleared with ``set_context(None)``.

        The serve driver uses this to stamp the trace ids of in-flight
        pooled jobs onto the sim's CAT_* events while it advances the
        shared simulation, linking wall-clock spans to sim-time events
        without the emitters knowing about tracing. Explicit event
        fields win on key collision. Batch runs never set a context,
        so single-run event logs (and their golden files) are
        untouched.
        """
        self._context = dict(fields) if fields else None

    def subscribe(self, listener: Any) -> Any:
        """Add a subscriber; returns ``listener`` for chaining.

        A non-``ListenerInterface`` object exposing ``record(...)`` is
        wrapped so it receives the raw stream.
        """
        if isinstance(listener, ListenerInterface):
            self._subscribers.append(listener)
        elif callable(getattr(listener, "record", None)):
            self._subscribers.append(_RecorderSubscriber(listener))
        else:
            raise TypeError(
                f"subscriber must be a ListenerInterface or expose "
                f"record(time, category, name, **fields); got {listener!r}")
        self._plans.clear()
        return listener

    def unsubscribe(self, listener: Any) -> None:
        """Remove a subscriber added via :meth:`subscribe` (no-op if
        absent). Removes in place — no list copy — so SSE-churn
        subscribe/unsubscribe cycles stay allocation-free."""
        subs = self._subscribers
        removed = False
        for i in range(len(subs) - 1, -1, -1):
            sub = subs[i]
            if sub is listener or (isinstance(sub, _RecorderSubscriber)
                                   and sub.recorder is listener):
                del subs[i]
                removed = True
        if removed:
            self._plans.clear()

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def _compile(self, category: str, name: str) -> tuple:
        """Build, cache, and return the call plan for one event type.

        Validation runs here — once per (category, name) — and an
        invalid event raises *without* caching, so every publish of a
        bad event keeps raising exactly as per-call validation did.
        """
        if self.validate:
            validate_event(category, name)
        method = dispatch_method(category, name)
        plan = []
        for sub in self._subscribers:
            if (isinstance(sub, _RecorderSubscriber)
                    and not getattr(sub.recorder, "enabled", True)):
                # TraceRecorder.enabled is fixed at construction, so a
                # disabled sink drops out of the plan instead of
                # no-opping per event.
                continue
            typed = _overridden(sub, method) if method is not None else None
            generic = _overridden(sub, "on_event")
            if typed is not None or generic is not None:
                plan.append((typed, generic))
        compiled = tuple(plan)
        self._plans[(category, name)] = compiled
        return compiled

    def record(self, time: float, category: str, name: str,
               **fields: Any) -> None:
        """Publish one event to every subscriber (TraceRecorder-compatible
        signature, so emitters accept a bus anywhere they accept a
        recorder)."""
        self.record_packed(time, category, name, fields)

    def record_packed(self, time: float, category: str, name: str,
                      fields: Dict[str, Any]) -> None:
        """:meth:`record` taking the payload as an already-built dict.

        Hot emitters with a precomputed base payload (e.g. the executor's
        identity fields) merge once and pass the dict straight through,
        skipping a kwargs repack per event. Ownership transfers to the
        bus: the caller must pass a fresh dict and never mutate it after
        the call (subscribers may retain references).
        """
        plan = self._plans.get((category, name))
        if plan is None:
            plan = self._compile(category, name)
        if not plan:
            return
        context = self._context
        if context is not None:
            fields = {**context, **fields}
        for typed, generic in plan:
            if typed is not None:
                typed(time, fields)
            if generic is not None:
                generic(time, category, name, fields)
