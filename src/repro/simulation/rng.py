"""Reproducible named random-number streams.

Every stochastic component of the simulation (VM boot times, Lambda cold
starts, task service-time jitter, arrival processes, ...) draws from its
own named stream so that changing one component's draw count does not
perturb any other component — a standard variance-reduction / repeatability
technique in discrete-event simulation.

The helper methods (:meth:`RandomStreams.uniform_jitter`,
:meth:`~RandomStreams.exponential`, :meth:`~RandomStreams.lognormal_around`)
dispense from per-stream buffers of *standard* draws refilled in numpy
batches, because a numpy scalar draw costs ~15µs of wrapper overhead while
a batched draw costs nanoseconds. Buffering is bit-identical to per-call
scalar draws on two grounds, both locked in by
``tests/simulation/test_rng_batching.py``:

- a batched ``random(n)`` / ``standard_exponential(n)`` /
  ``standard_normal(n)`` consumes the generator bitstream exactly like n
  scalar calls;
- numpy's parameterized samplers are affine maps over the standard draw
  (``uniform(l, h) = l + (h-l)·u``, ``exponential(m) = m·e``,
  ``lognormal(µ, σ) = exp(µ + σ·z)``), so applying the same map in Python
  per dispensed draw reproduces the scalar result bit for bit — which is
  also what makes buffering safe for *varying* parameters (the buffered
  standard draws are parameter-free).

The one unsafe mix is using the same stream name through a helper *and*
via direct :meth:`~RandomStreams.stream` access (or through helpers of
different distributions): the buffer runs ahead of the dispensed count, so
interleaved direct draws would come from a shifted bitstream position.
Both mixes raise instead of silently diverging.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List

import numpy as np

#: Standard draws fetched per buffer refill. Large enough to amortize the
#: per-call numpy overhead across a stage's worth of task jitters, small
#: enough that an abandoned stream strands a trivial number of doubles.
BATCH_DRAWS = 128


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams.

    Streams are keyed by name. The same ``(seed, name)`` pair always
    yields an identical stream, independent of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        #: name -> [distribution kind, pending standard draws]. The draws
        #: list is kept reversed so ``pop()`` dispenses in bitstream order.
        self._buffers: Dict[str, list] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``.

        Raises if ``name`` is dispensed through a batched helper: the
        helper's buffer runs ahead of the dispensed draw count, so direct
        generator access would read from a shifted bitstream position and
        silently diverge from scalar draw order. Use a distinct stream
        name for direct access.
        """
        if name in self._buffers:
            raise RuntimeError(
                f"stream {name!r} is dispensed through a batched helper; "
                f"direct stream() access would read past its "
                f"{len(self._buffers[name][1])} pending buffered draws — "
                f"use a distinct stream name")
        return self._generator(name)

    def _generator(self, name: str) -> np.random.Generator:
        generator = self._streams.get(name)
        if generator is None:
            # Derive a child seed from the master seed and the stream name.
            child = zlib.crc32(name.encode("utf-8"))
            generator = np.random.default_rng(np.random.SeedSequence([self._seed, child]))
            self._streams[name] = generator
        return generator

    def _standard_draw(self, name: str, kind: str) -> float:
        """Next standard draw for ``name``, refilled in numpy batches."""
        entry = self._buffers.get(name)
        if entry is None:
            entry = self._buffers[name] = [kind, []]
        elif entry[0] != kind:
            if entry[1]:
                raise RuntimeError(
                    f"stream {name!r}: helper distribution changed from "
                    f"{entry[0]!r} to {kind!r} with {len(entry[1])} "
                    f"buffered draws pending; use a distinct stream name "
                    f"per distribution")
            entry[0] = kind
        buf: List[float] = entry[1]
        if not buf:
            gen = self._generator(name)
            if kind == "uniform":
                draws = gen.random(BATCH_DRAWS)
            elif kind == "exponential":
                draws = gen.standard_exponential(BATCH_DRAWS)
            else:
                draws = gen.standard_normal(BATCH_DRAWS)
            buf = draws.tolist()
            buf.reverse()
            entry[1] = buf
        return buf.pop()

    def lognormal_around(self, name: str, mean: float, cv: float) -> float:
        """Draw a lognormal sample with the given mean and coefficient of
        variation — the workhorse distribution for latencies in this
        reproduction (strictly positive, right-skewed).
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative, got {cv}")
        if cv == 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return math.exp(mu + math.sqrt(sigma2)
                        * self._standard_draw(name, "normal"))

    def uniform_jitter(self, name: str, value: float, fraction: float) -> float:
        """Return ``value`` multiplied by U(1-fraction, 1+fraction)."""
        if not 0 <= fraction < 1:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        low, high = 1.0 - fraction, 1.0 + fraction
        return value * (low + (high - low)
                        * self._standard_draw(name, "uniform"))

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential inter-arrival sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return mean * self._standard_draw(name, "exponential")
