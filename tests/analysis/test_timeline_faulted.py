"""Timeline reconstruction on faulted runs: spans close, never dangle.

Two real fault shapes (an executor killed mid-task, a Lambda reaped at
its lifetime) plus synthetic truncated traces. In every case
``build_timeline`` must close each task span with ``end >= start`` —
in-flight work destroyed by the fault lands as a ``"lost"`` span at the
executor's decommission time, not as a dangling record.
"""

from repro.analysis.timeline import build_timeline
from repro.cloud import LambdaConfig
from repro.simulation import TraceRecorder

from tests.spark.helpers import MiniCluster, single_stage_rdd


def _assert_all_spans_closed(timeline):
    for span in timeline.executors:
        for task in span.tasks:
            assert task.end >= task.start, (span.executor_id, task)
            assert task.state, (span.executor_id, task)


def test_executor_killed_mid_task_spans_close():
    cluster = MiniCluster()
    victim = cluster.vm_executors(1)[0]
    cluster.vm_executors(1)
    rdd = single_stage_rdd(cluster.builder, tasks=6, seconds=10.0)
    job = cluster.driver.submit(rdd)

    def sabotage(env):
        yield env.timeout(4.0)
        cluster.driver.task_scheduler.decommission_executor(
            victim, graceful=False, reason="fault: executor_kill")

    cluster.env.process(sabotage(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed

    timeline = build_timeline(cluster.trace)
    _assert_all_spans_closed(timeline)
    victim_span = next(s for s in timeline.executors
                       if s.executor_id == victim.executor_id)
    assert victim_span.decommissioned_at is not None
    # The task the kill interrupted still occupies timeline real estate,
    # closed at the kill (state "killed" via its task_end record).
    killed = [t for t in victim_span.tasks if t.state in ("killed", "lost")]
    assert killed
    assert all(t.end <= victim_span.decommissioned_at + 1e-9
               for t in killed)


def test_lambda_lifetime_expiry_spans_close():
    cluster = MiniCluster()
    cluster.vm_executors(1)
    fn = cluster.provider.invoke_lambda(
        LambdaConfig(memory_mb=1536, lifetime_s=5.0))
    cluster.env.run(until=fn.ready)
    la_ex = cluster.driver.add_lambda_executor(fn)

    # Tasks outlive the Lambda: the one it picks up dies with the
    # container and reruns on the VM executor.
    rdd = single_stage_rdd(cluster.builder, tasks=2, seconds=8.0)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=job.done)
    assert not job.failed

    timeline = build_timeline(cluster.trace)
    _assert_all_spans_closed(timeline)
    la_span = next(s for s in timeline.executors
                   if s.executor_id == la_ex.executor_id)
    assert la_span.kind == "lambda"
    assert la_span.decommissioned_at is not None
    # Its in-flight task closed at/before the reap, never past it.
    assert la_span.tasks
    assert all(t.end <= la_span.decommissioned_at + 1e-9
               for t in la_span.tasks)
    assert not any(t.state == "finished" for t in la_span.tasks)


def test_truncated_trace_closes_open_task_as_lost():
    # A task_start with no matching task_end (trace ended mid-task):
    # the span closes at the executor's death with state "lost".
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0", kind="vm")
    trace.record(2.0, "executor", "task_start", executor="e0",
                 task="stage0/p0")
    trace.record(5.0, "executor", "dead", executor="e0")
    timeline = build_timeline(trace)
    (span,) = timeline.executors
    (task,) = span.tasks
    assert task.state == "lost"
    assert task.start == 2.0
    assert task.end == 5.0


def test_open_task_without_death_closes_at_trace_end():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0", kind="vm")
    trace.record(2.0, "executor", "task_start", executor="e0",
                 task="stage0/p0")
    trace.record(7.0, "executor", "task_start", executor="e0",
                 task="stage0/p1")
    timeline = build_timeline(trace)
    (span,) = timeline.executors
    assert [t.state for t in span.tasks] == ["lost", "lost"]
    # Both close at the last record's time; the later start never goes
    # backwards (end >= start even at zero width).
    assert span.tasks[0].end == 7.0
    assert span.tasks[1].end == 7.0
    _assert_all_spans_closed(timeline)


def test_task_start_pairs_with_matching_end():
    # With explicit start/end records the span uses the true start, not
    # the duration back-projection.
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0", kind="vm")
    trace.record(1.0, "executor", "task_start", executor="e0", task="t")
    trace.record(4.0, "executor", "task_end", executor="e0", task="t",
                 state="finished", duration=2.5)
    timeline = build_timeline(trace)
    (task,) = timeline.executors[0].tasks
    assert task.start == 1.0
    assert task.end == 4.0
    assert task.state == "finished"


def test_segue_time_prefers_segue_event_over_drain():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0",
                 kind="lambda")
    trace.record(6.0, "segue", "triggered", vm="vm1", cores=4)
    trace.record(8.0, "executor", "draining", executor="e0")
    timeline = build_timeline(trace)
    assert timeline.segue_time == 6.0


def test_segue_time_falls_back_to_drain_for_older_traces():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0",
                 kind="lambda")
    trace.record(8.0, "executor", "draining", executor="e0")
    assert build_timeline(trace).segue_time == 8.0
