"""The typed event bus every instrumented component publishes to.

Historically components wrote straight into a
:class:`~repro.simulation.tracing.TraceRecorder` — the recorder *was*
the observability API, so anything else that wanted the event stream
(metrics, exporters, live listeners) had to post-process the trace.
The :class:`EventBus` inverts that: components publish through the same
``record(time, category, name, **fields)`` duck-typed signature, and the
recorder becomes one subscriber among several.

Subscribers are either:

- a :class:`ListenerInterface` implementation — known (category, name)
  pairs dispatch to typed callbacks (``on_task_start`` ...), and every
  event reaches the generic ``on_event`` hook; or
- anything exposing ``record(time, category, name, **fields)`` (e.g. a
  ``TraceRecorder``), which receives the raw stream unchanged.

Publishing is synchronous and in subscription order, so delivery is as
deterministic as the simulation itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.observability.categories import (
    CAT_DAG,
    CAT_EXECUTOR,
    CAT_FAULT,
    CAT_SCHEDULER,
    CAT_SEGUE,
    EV_DEAD,
    EV_EXECUTOR_DRAINED,
    EV_REGISTERED,
    EV_SEGUE_TRIGGERED,
    EV_STAGE_COMPLETE,
    EV_STAGE_SUBMITTED,
    EV_TASK_END,
    EV_TASK_START,
    EVENTS,
    validate_event,
)


class ListenerInterface:
    """Typed subscriber callbacks. Override any subset.

    Typed callbacks receive ``(time, fields)``; ``fields`` is the
    emitter's payload dict (shared, do not mutate). Every event — typed
    or not — additionally reaches :meth:`on_event`.
    """

    def on_task_start(self, time: float, fields: Dict[str, Any]) -> None:
        """A task attempt began running on an executor."""

    def on_task_end(self, time: float, fields: Dict[str, Any]) -> None:
        """A task attempt finished/failed/was killed on an executor."""

    def on_stage_submitted(self, time: float, fields: Dict[str, Any]) -> None:
        """The DAG scheduler submitted a stage's task set."""

    def on_stage_completed(self, time: float, fields: Dict[str, Any]) -> None:
        """A stage's outputs are complete."""

    def on_executor_added(self, time: float, fields: Dict[str, Any]) -> None:
        """An executor registered (fields carry ``executor``, ``kind``)."""

    def on_executor_removed(self, time: float, fields: Dict[str, Any]) -> None:
        """An executor left the cluster — drained gracefully or died."""

    def on_segue_triggered(self, time: float, fields: Dict[str, Any]) -> None:
        """The segueing facility began a Lambda→VM hand-off round."""

    def on_fault_injected(self, time: float, fields: Dict[str, Any]) -> None:
        """The fault injector fired one fault (any kind)."""

    def on_event(self, time: float, category: str, name: str,
                 fields: Dict[str, Any]) -> None:
        """Generic hook: called for every published event."""


#: (category, name) -> ListenerInterface method name. Fault injections
#: are category-wide (every FaultInjector emission except the
#: ``recovered`` milestone), handled separately below.
TYPED_DISPATCH: Dict[Tuple[str, str], str] = {
    (CAT_EXECUTOR, EV_TASK_START): "on_task_start",
    (CAT_EXECUTOR, EV_TASK_END): "on_task_end",
    (CAT_DAG, EV_STAGE_SUBMITTED): "on_stage_submitted",
    (CAT_DAG, EV_STAGE_COMPLETE): "on_stage_completed",
    (CAT_EXECUTOR, EV_REGISTERED): "on_executor_added",
    (CAT_EXECUTOR, EV_DEAD): "on_executor_removed",
    (CAT_SCHEDULER, EV_EXECUTOR_DRAINED): "on_executor_removed",
    (CAT_SEGUE, EV_SEGUE_TRIGGERED): "on_segue_triggered",
}

#: Fault-category names that count as injections (everything but the
#: post-hoc "recovered" milestone).
_FAULT_INJECTED_NAMES = EVENTS[CAT_FAULT] - {"recovered"}


class _RecorderSubscriber(ListenerInterface):
    """Adapter: feeds the raw stream into a TraceRecorder-like sink."""

    def __init__(self, recorder: Any) -> None:
        self.recorder = recorder

    def on_event(self, time: float, category: str, name: str,
                 fields: Dict[str, Any]) -> None:
        self.recorder.record(time, category, name, **fields)


class EventBus:
    """Fan-out hub with the ``TraceRecorder.record`` signature.

    ``validate=True`` (the default) rejects events not registered in
    :mod:`repro.observability.categories` — the runtime half of the
    taxonomy lint. Pass ``validate=False`` to route ad-hoc events.
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate
        self._subscribers: List[ListenerInterface] = []
        self._context: Optional[Dict[str, Any]] = None

    def set_context(self, fields: Optional[Dict[str, Any]]) -> None:
        """Ambient fields merged into every published event until
        cleared with ``set_context(None)``.

        The serve driver uses this to stamp the trace ids of in-flight
        pooled jobs onto the sim's CAT_* events while it advances the
        shared simulation, linking wall-clock spans to sim-time events
        without the emitters knowing about tracing. Explicit event
        fields win on key collision. Batch runs never set a context,
        so single-run event logs (and their golden files) are
        untouched.
        """
        self._context = dict(fields) if fields else None

    def subscribe(self, listener: Any) -> Any:
        """Add a subscriber; returns ``listener`` for chaining.

        A non-``ListenerInterface`` object exposing ``record(...)`` is
        wrapped so it receives the raw stream.
        """
        if isinstance(listener, ListenerInterface):
            self._subscribers.append(listener)
        elif callable(getattr(listener, "record", None)):
            self._subscribers.append(_RecorderSubscriber(listener))
        else:
            raise TypeError(
                f"subscriber must be a ListenerInterface or expose "
                f"record(time, category, name, **fields); got {listener!r}")
        return listener

    def unsubscribe(self, listener: Any) -> None:
        """Remove a subscriber added via :meth:`subscribe` (no-op if
        absent)."""
        for sub in list(self._subscribers):
            if sub is listener or (isinstance(sub, _RecorderSubscriber)
                                   and sub.recorder is listener):
                self._subscribers.remove(sub)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def record(self, time: float, category: str, name: str,
               **fields: Any) -> None:
        """Publish one event to every subscriber (TraceRecorder-compatible
        signature, so emitters accept a bus anywhere they accept a
        recorder)."""
        if self.validate:
            validate_event(category, name)
        if self._context is not None:
            fields = {**self._context, **fields}
        method = TYPED_DISPATCH.get((category, name))
        if method is None and category == CAT_FAULT \
                and name in _FAULT_INJECTED_NAMES:
            method = "on_fault_injected"
        for sub in self._subscribers:
            if method is not None:
                getattr(sub, method)(time, fields)
            sub.on_event(time, category, name, fields)
