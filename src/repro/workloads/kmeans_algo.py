"""A reference NumPy K-means: grounds the simulated per-point compute.

The simulation replaces task execution with a service-time model; this
module keeps the reproduction honest by (a) implementing the actual
algorithm the workload models (Lloyd's iterations with k-means++ style
seeding by sampling), and (b) providing a measured per-point-per-
iteration cost that the calibrated constants in
:mod:`repro.workloads.kmeans` can be sanity-checked against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of one clustering run."""

    centroids: np.ndarray
    assignments: np.ndarray
    iterations: int
    converged: bool
    inertia: float


def generate_points(n_points: int, n_dims: int, k: int,
                    seed: int = 0, spread: float = 5.0) -> np.ndarray:
    """Synthesize a clusterable dataset: ``k`` Gaussian blobs."""
    if n_points <= 0 or n_dims <= 0 or k <= 0:
        raise ValueError("n_points, n_dims, k must all be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-spread * 10, spread * 10, size=(k, n_dims))
    labels = rng.integers(0, k, size=n_points)
    return centers[labels] + rng.normal(0, spread, size=(n_points, n_dims))


def assign_points(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Map step: nearest centroid per point (squared Euclidean)."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the x^2 term is constant
    # per point and can be dropped for argmin.
    cross = points @ centroids.T
    c_sq = np.einsum("ij,ij->i", centroids, centroids)
    return np.argmin(c_sq[None, :] - 2.0 * cross, axis=1)


def update_centroids(points: np.ndarray, assignments: np.ndarray,
                     k: int) -> np.ndarray:
    """Reduce step: mean of each cluster (empty clusters keep a point)."""
    dims = points.shape[1]
    sums = np.zeros((k, dims))
    np.add.at(sums, assignments, points)
    counts = np.bincount(assignments, minlength=k).astype(float)
    empty = counts == 0
    counts[empty] = 1.0
    centroids = sums / counts[:, None]
    if empty.any():
        # Re-seed empty clusters on the farthest points (standard fix).
        centroids[empty] = points[: int(empty.sum())]
    return centroids


def kmeans(points: np.ndarray, k: int, max_iterations: int = 5,
           convergence_distance: float = 0.5,
           seed: int = 0) -> KMeansResult:
    """Lloyd's algorithm with the paper's K-means job parameters:
    "runs for a maximum of 5 iterations and tries to achieve a
    convergence distance of 0.5" (§5.2)."""
    if k <= 1:
        raise ValueError("k must be > 1")
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")
    rng = np.random.default_rng(seed)
    centroids = points[rng.choice(len(points), size=k, replace=False)]
    assignments = np.zeros(len(points), dtype=int)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        assignments = assign_points(points, centroids)
        new_centroids = update_centroids(points, assignments, k)
        movement = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
        centroids = new_centroids
        if movement < convergence_distance:
            converged = True
            break
    diffs = points - centroids[assignments]
    inertia = float(np.einsum("ij,ij->", diffs, diffs))
    return KMeansResult(centroids=centroids, assignments=assignments,
                        iterations=iterations, converged=converged,
                        inertia=inertia)


def measure_assign_cost(n_points: int = 200_000, n_dims: int = 20,
                        k: int = 10, repeats: int = 3,
                        seed: int = 0) -> float:
    """Measured seconds per point per assign pass on this machine —
    used to sanity-check the simulation's calibrated constant."""
    points = generate_points(n_points, n_dims, k, seed=seed)
    centroids = points[:k]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        assign_points(points, centroids)
        best = min(best, time.perf_counter() - start)
    return best / n_points
