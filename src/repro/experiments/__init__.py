"""Declarative, parallel, cached experiment execution.

The subsystem has three pieces:

- :class:`~repro.experiments.spec.ExperimentSpec` — a frozen, hashable
  value object (workload + params, scenario, seed, conf overrides) that
  fully determines one simulation run;
- :class:`~repro.experiments.records.RunRecord` — the single result
  schema every experiment produces (and every exporter emits), with a
  round-trippable ``to_dict``/``from_dict`` and JSONL helpers;
- :class:`~repro.experiments.runner.ExperimentRunner` — fans a list of
  specs out over a ``ProcessPoolExecutor`` and memoizes results in an
  on-disk cache keyed by spec hash + code version.

Because every run builds its own :class:`~repro.simulation.Environment`
and :class:`~repro.simulation.RandomStreams` from the spec's seed,
parallel and serial execution produce bit-identical records.
"""

from repro.experiments.cache import ResultCache, code_version
from repro.experiments.records import RunRecord, read_jsonl, write_jsonl
from repro.experiments.runner import ExperimentRunner, run_spec
from repro.experiments.spec import ExperimentSpec

__all__ = [
    "ExperimentRunner",
    "ExperimentSpec",
    "ResultCache",
    "RunRecord",
    "code_version",
    "read_jsonl",
    "run_spec",
    "write_jsonl",
]
