"""``GET /metrics``: Prometheus exposition off a live control plane.

The parser below implements the text format 0.0.4 grammar (HELP/TYPE
comments, optional labels, ``+Inf``/``NaN`` values) so the tests prove
the endpoint is machine-parseable, not merely non-empty: every sample
must belong to a declared family, histogram buckets must be cumulative
and capped by ``+Inf``, and the deterministic subset of the exposition
must be byte-identical across fixed-seed runs.
"""

import re

import pytest

from repro.api import schemas
from repro.api.app import create_app
from repro.api.service import ServeConfig
from repro.api.testclient import TestClient
from repro.observability.serve_obs import deterministic_metric_lines

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_SUFFIXES = ("_bucket", "_count", "_sum")


def parse_prometheus(text):
    """Parse a text-format 0.0.4 exposition.

    Returns ``(families, samples)`` where ``families`` maps family name
    to ``{"type", "help"}`` and ``samples`` is a list of
    ``(name, labels_dict, value)``. Raises AssertionError on any line
    that does not fit the grammar.
    """
    families = {}
    samples = []
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            families.setdefault(name, {})["help"] = help_text
        elif line.startswith("# TYPE "):
            name, _, type_ = line[len("# TYPE "):].partition(" ")
            assert type_ in _TYPES, f"unknown TYPE {type_!r}"
            families.setdefault(name, {})["type"] = type_
        elif line.startswith("#") or not line.strip():
            continue
        else:
            match = _SAMPLE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, labels_raw, value_raw = match.groups()
            labels = {}
            if labels_raw:
                body = labels_raw[1:-1]
                labels = dict(_LABEL.findall(body))
                rebuilt = ",".join(f'{k}="{v}"'
                                   for k, v in _LABEL.findall(body))
                assert rebuilt == body, f"bad label syntax: {line!r}"
            value = float(value_raw)  # accepts +Inf/-Inf/NaN
            samples.append((name, labels, value))
    for name, meta in families.items():
        assert "type" in meta, f"family {name} missing # TYPE"
        assert "help" in meta, f"family {name} missing # HELP"
    return families, samples


def family_of(sample_name, families):
    """The declared family a sample line belongs to, or None."""
    if sample_name in families:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in families and families[base]["type"] in (
                    "histogram", "summary"):
                return base
    return None


def _scrape(client):
    response = client.get("/metrics")
    assert response.status == 200
    content_type = dict(response.headers)["content-type"]
    assert "text/plain" in content_type
    assert "version=0.0.4" in content_type
    return response.body.decode("utf-8")


def _run_job(client, seed=0):
    r = client.post("/jobs", json={"workload": "sparkpi",
                                   "scenario": "spark_R_vm",
                                   "seed": seed})
    assert r.status == 202
    job_id = r.data["job_id"]
    final = client.get(f"/jobs/{job_id}", params={"wait": 60})
    assert final.data["state"] == schemas.JOB_COMPLETED
    return job_id


@pytest.mark.smoke
def test_metrics_exposition_parses_and_carries_serve_families():
    config = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4)
    with TestClient(create_app(config)) as client:
        _run_job(client)
        text = _scrape(client)
    families, samples = parse_prometheus(text)

    # Every sample belongs to a declared family — nothing dangling.
    for name, _, _ in samples:
        assert family_of(name, families) is not None, name

    # The serve plane's core families, with the right types.
    expect = {
        "repro_serve_jobs_running": "gauge",
        "repro_serve_jobs_queued": "gauge",
        "repro_serve_jobs_failed": "gauge",
        "repro_serve_jobs_submitted_total": "counter",
        "repro_serve_jobs_rejected_total": "counter",
        "repro_serve_events_published_total": "counter",
        "repro_serve_admission_latency_seconds": "histogram",
        "repro_serve_admission_latency_seconds_p99": "gauge",
        "repro_serve_slo_availability_burn_rate": "gauge",
        "repro_serve_slo_latency_burn_rate": "gauge",
        "repro_serve_slo_healthy": "gauge",
        "repro_uptime_seconds": "gauge",
    }
    for name, type_ in expect.items():
        assert families.get(name, {}).get("type") == type_, name

    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    [(_, submitted)] = by_name["repro_serve_jobs_submitted_total"]
    assert submitted == 1
    [(_, healthy)] = by_name["repro_serve_slo_healthy"]
    assert healthy == 1


def test_metrics_histogram_buckets_are_cumulative():
    config = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4)
    with TestClient(create_app(config)) as client:
        for seed in range(3):
            _run_job(client, seed=seed)
        text = _scrape(client)
    _, samples = parse_prometheus(text)
    buckets = [(labels["le"], value) for name, labels, value in samples
               if name == "repro_serve_admission_latency_seconds_bucket"]
    assert buckets, "admission histogram missing"
    values = [v for _, v in buckets]
    assert values == sorted(values), "buckets must be cumulative"
    assert buckets[-1][0] == "+Inf"
    count = next(v for name, _, v in samples
                 if name == "repro_serve_admission_latency_seconds_count")
    assert buckets[-1][1] == count == 3


def test_metrics_deterministic_lines_identical_across_fixed_seed_runs():
    def run():
        config = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4,
                             seed=0)
        with TestClient(create_app(config)) as client:
            _run_job(client, seed=3)
            return deterministic_metric_lines(_scrape(client))

    first, second = run(), run()
    assert first, "deterministic subset must not be empty"
    assert first == second


def test_profiler_families_only_when_enabled():
    base = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4)
    with TestClient(create_app(base)) as client:
        _run_job(client)
        assert "repro_serve_profile_samples_total" not in _scrape(client)

    profiled = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4,
                           profile=True, profile_interval_s=0.001)
    with TestClient(create_app(profiled)) as client:
        _run_job(client)
        text = _scrape(client)
    families, samples = parse_prometheus(text)
    assert families["repro_serve_profile_samples_total"]["type"] \
        == "counter"
    count = next(v for name, _, v in samples
                 if name == "repro_serve_profile_samples_total")
    assert count > 0  # the sampler watched the driver thread


@pytest.mark.smoke
def test_dashboard_serves_stdlib_html():
    config = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4)
    with TestClient(create_app(config)) as client:
        response = client.get("/dashboard")
        assert response.status == 200
        assert "text/html" in dict(response.headers)["content-type"]
        html = response.body.decode("utf-8")
    # Stdlib-only page over the two live surfaces.
    assert "/metrics" in html
    assert "EventSource" in html
    assert "<script" in html
