"""Tests for RDD lineage construction."""

import pytest

from repro.spark.rdd import (
    NarrowDependency,
    RDD,
    RDDBuilder,
    ShuffleDependency,
    reset_id_counters,
)


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_id_counters()


def test_rdd_validation():
    with pytest.raises(ValueError):
        RDD("x", num_partitions=0)
    with pytest.raises(ValueError):
        RDD("x", num_partitions=4, working_set_bytes=-1)


def test_compute_seconds_constant_and_callable():
    constant = RDD("c", 4, compute_seconds=2.5)
    assert constant.compute_seconds(0) == 2.5
    varying = RDD("v", 4, compute_seconds=lambda p: p * 1.0)
    assert varying.compute_seconds(3) == 3.0


def test_negative_compute_rejected_at_call():
    bad = RDD("bad", 2, compute_seconds=lambda p: -1.0)
    with pytest.raises(ValueError):
        bad.compute_seconds(0)


def test_shuffle_dependency_bytes_per_map():
    parent = RDD("parent", 8)
    dep = ShuffleDependency(parent, total_bytes=800)
    assert dep.bytes_per_map == 100


def test_shuffle_dependency_negative_bytes_rejected():
    parent = RDD("p", 2)
    with pytest.raises(ValueError):
        ShuffleDependency(parent, total_bytes=-1)


def test_builder_map_preserves_partitions():
    b = RDDBuilder()
    src = b.source("src", partitions=16, compute_seconds=1.0)
    mapped = b.map(src, "mapped", compute_seconds=0.5)
    assert mapped.num_partitions == 16
    assert isinstance(mapped.deps[0], NarrowDependency)


def test_builder_shuffle_changes_partitions():
    b = RDDBuilder()
    src = b.source("src", partitions=16, compute_seconds=1.0)
    red = b.shuffle(src, "red", partitions=4, shuffle_bytes=1e6)
    assert red.num_partitions == 4
    assert isinstance(red.deps[0], ShuffleDependency)


def test_narrow_ancestry_order_is_upstream_first():
    b = RDDBuilder()
    a = b.source("a", 4, 1.0)
    c = b.map(a, "c")
    d = b.map(c, "d")
    names = [r.name for r in d.narrow_ancestry()]
    assert names == ["a", "c", "d"]


def test_narrow_ancestry_stops_at_shuffle():
    b = RDDBuilder()
    a = b.source("a", 4, 1.0)
    red = b.shuffle(a, "red", 4, 1e6)
    mapped = b.map(red, "m")
    names = [r.name for r in mapped.narrow_ancestry()]
    assert names == ["red", "m"]  # 'a' is across the shuffle boundary


def test_join_has_two_shuffle_deps():
    b = RDDBuilder()
    left = b.source("l", 4, 1.0)
    right = b.source("r", 4, 1.0)
    joined = b.join(left, right, "j", partitions=8,
                    left_bytes=100, right_bytes=200)
    sids = joined.shuffle_deps
    assert len(sids) == 2
    assert {d.parent.name for d in sids} == {"l", "r"}


def test_rdd_ids_unique_and_increasing():
    r1 = RDD("x", 1)
    r2 = RDD("y", 1)
    assert r2.rdd_id == r1.rdd_id + 1
