"""Tests for SplitServe's facilities: state, launching, segueing."""

import pytest

from repro.cloud import CloudProvider
from repro.core import SplitServe
from repro.spark import HostKind
from repro.spark.rdd import RDDBuilder, reset_id_counters
from repro.simulation import Environment, RandomStreams, TraceRecorder


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_id_counters()


def make_splitserve(seed=0, conf=None, worker_cores=0,
                    worker_itype="m4.4xlarge"):
    env = Environment()
    rng = RandomStreams(seed)
    trace = TraceRecorder()
    provider = CloudProvider(env, rng, trace=trace)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    master.allocate_cores(master.itype.vcpus)
    ss = SplitServe(env, provider, rng, conf=conf, trace=trace,
                    master_vm=master)
    workers = []
    remaining = worker_cores
    while remaining > 0:
        vm = provider.request_vm(worker_itype, already_running=True)
        workers.append(vm)
        free_here = min(remaining, vm.itype.vcpus)
        surplus = vm.itype.vcpus - free_here
        if surplus > 0:
            # Claim the surplus so exactly worker_cores are free
            # cluster-wide (other tenants' jobs occupy the rest).
            vm.allocate_cores(surplus)
        remaining -= free_here
    return env, provider, ss, workers


def simple_job(tasks=8, seconds=5.0):
    b = RDDBuilder()
    return b.source("work", partitions=tasks, compute_seconds=seconds)


# ---------------------------------------------------------------------------
# ClusterState
# ---------------------------------------------------------------------------

def test_state_counts_free_cores():
    env, provider, ss, workers = make_splitserve(worker_cores=16)
    assert ss.state.free_vm_cores() == 16  # master cores are claimed


def test_state_orders_vms_most_free_first():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    a = provider.request_vm("m4.xlarge", already_running=True)
    b = provider.request_vm("m4.4xlarge", already_running=True)
    a.allocate_cores(3)  # 1 free vs 16 free
    order = ss.state.vms_with_free_cores()
    assert order[0] is b


def test_state_tracks_executor_records():
    env, provider, ss, workers = make_splitserve(worker_cores=4)
    outcome = ss.launching.acquire(4)
    assert ss.state.live_vm_count == 4
    assert ss.state.live_lambda_count == 0
    ss.launching.release_vm_executor(outcome.vm_executors[0])
    assert ss.state.live_vm_count == 3


# ---------------------------------------------------------------------------
# LaunchingFacility
# ---------------------------------------------------------------------------

def test_acquire_prefers_vm_cores():
    env, provider, ss, workers = make_splitserve(worker_cores=16)
    outcome = ss.launching.acquire(10)
    assert outcome.vm_cores == 10
    assert outcome.lambda_cores == 0
    assert outcome.all_registered.triggered


def test_acquire_bridges_shortfall_with_lambdas():
    env, provider, ss, workers = make_splitserve(worker_cores=4)
    outcome = ss.launching.acquire(10)
    env.run(until=outcome.all_registered)
    assert outcome.vm_cores == 4
    assert outcome.lambda_cores == 6
    # Warm Lambdas register in well under a second.
    assert env.now < 1.0


def test_acquire_all_lambda_with_zero_vm_budget():
    env, provider, ss, workers = make_splitserve(worker_cores=16)
    outcome = ss.launching.acquire(8, max_vm_cores=0)
    env.run(until=outcome.all_registered)
    assert outcome.vm_cores == 0
    assert outcome.lambda_cores == 8


def test_acquire_rejects_nonpositive():
    env, provider, ss, workers = make_splitserve()
    with pytest.raises(ValueError):
        ss.launching.acquire(0)


def test_release_lambda_bills_usage():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    outcome = ss.launching.acquire(2)
    env.run(until=outcome.all_registered)
    env.run(until=env.now + 30)
    for executor in outcome.lambda_executors:
        ss.launching.release_lambda_executor(executor)
    assert provider.meter.breakdown().get("lambda", 0) > 0


# ---------------------------------------------------------------------------
# SegueingFacility
# ---------------------------------------------------------------------------

def test_should_launch_vms_only_beyond_startup_delay():
    env, provider, ss, workers = make_splitserve()
    assert not ss.segueing.should_launch_vms(30.0)
    assert ss.segueing.should_launch_vms(500.0)


def test_segue_replaces_lambdas_with_vm_executors():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    run = ss.submit_job(simple_job(tasks=16, seconds=20.0),
                        required_cores=4)
    new_vm = provider.request_vm("m4.xlarge", already_running=False,
                                 boot_delay_s=15.0)

    def do_segue(env):
        yield new_vm.ready
        ss.segueing.segue_to_vm(new_vm, 4)

    env.process(do_segue(env))
    env.run(until=run.job.done)
    ss.finish_run(run)
    assert not run.job.failed
    # Some tasks ran on Lambdas (before segue), some on the VM (after).
    kinds = {("lambda" if a.executor_id.startswith("la-") else "vm")
             for a in run.job.task_attempts}
    assert kinds == {"lambda", "vm"}
    # No task was killed: graceful drain means zero failures.
    assert all(a.failure is None for a in run.job.task_attempts)


def test_segue_background_vm_covers_lambda_cores():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    run = ss.submit_job(simple_job(tasks=32, seconds=30.0),
                        required_cores=4,
                        expected_duration_s=400.0, segue=True)
    assert len(run.background_vms) == 1
    env.run(until=run.job.done)
    ss.finish_run(run)
    assert not run.job.failed


def test_no_background_vms_for_short_slo():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    run = ss.submit_job(simple_job(tasks=4, seconds=5.0),
                        required_cores=4,
                        expected_duration_s=20.0, segue=True)
    assert run.background_vms == []
    env.run(until=run.job.done)


def test_drain_lambda_rejects_vm_executor():
    env, provider, ss, workers = make_splitserve(worker_cores=4)
    outcome = ss.launching.acquire(2)
    with pytest.raises(ValueError):
        ss.segueing.drain_lambda(outcome.vm_executors[0])


def test_segue_drains_oldest_lambdas_first():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    first = ss.launching.acquire(1)
    env.run(until=first.all_registered)
    env.run(until=env.now + 10)
    second = ss.launching.acquire(1)
    env.run(until=second.all_registered)
    ordered = ss.segueing._drainable_lambda_executors()
    assert ordered[0] is first.lambda_executors[0]


# ---------------------------------------------------------------------------
# SplitServe facade end-to-end
# ---------------------------------------------------------------------------

def test_run_job_hybrid_executes_on_both_kinds():
    env, provider, ss, workers = make_splitserve(worker_cores=4)
    result = ss.run_job(simple_job(tasks=16, seconds=5.0),
                        required_cores=8)
    assert result.num_tasks == 16
    assert result.tasks_by_kind.get("vm", 0) > 0
    assert result.tasks_by_kind.get("lambda", 0) > 0


def test_finish_run_releases_lambda_containers():
    env, provider, ss, workers = make_splitserve(worker_cores=0)
    result = ss.run_job(simple_job(tasks=4, seconds=2.0), required_cores=4)
    assert all(fn.finish_time is not None for fn in provider.lambdas)
