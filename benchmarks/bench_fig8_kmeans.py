"""Figure 8: K-means performance and cost, with error bars (15 trials).

Paper's findings at R=16, r=4:
- r=4 degrades execution ~10x (cache thrash on top of the core deficit);
- VM autoscaling still ~3.3x (cache-cold new executors);
- Qubole's S3 shuffle costs ~51% extra; SS 16 La only ~11% worse;
- here the hybrid is NOT the winner — an all-Lambda SplitServe run is.

All 8 scenarios x 15 seeds are independent ExperimentSpecs fanned out
over the ExperimentRunner; per-spec seeded RNG streams keep the trial
statistics identical at any worker count.
"""

import statistics

import pytest

from repro.analysis.reporting import format_table
from repro.core.scenarios import SCENARIO_NAMES
from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.workloads import KMeansWorkload
from benchmarks.conftest import run_once

TRIALS = 15  # the paper's sample count


def fig8_specs():
    return [ExperimentSpec(workload="kmeans", scenario=name, seed=seed)
            for name in SCENARIO_NAMES for seed in range(TRIALS)]


def run_fig8(runner=None):
    runner = runner if runner is not None else ExperimentRunner()
    records = runner.run(fig8_specs(), keep_errors=False)
    out = {name: [] for name in SCENARIO_NAMES}
    for record in records:
        out[record.scenario].append(record)
    return out


def test_fig8_kmeans(benchmark, emit):
    by_scenario = run_once(benchmark, run_fig8)
    spec = KMeansWorkload().spec
    base_mean = statistics.mean(
        r.duration_s for r in by_scenario["spark_R_vm"])

    rows = []
    stats = {}
    for name in SCENARIO_NAMES:
        runs = by_scenario[name]
        durations = [r.duration_s for r in runs]
        costs = [r.cost for r in runs]
        mean, stdev = statistics.mean(durations), statistics.stdev(durations)
        stats[name] = mean
        rows.append([runs[0].label(spec), f"{mean:.1f}", f"{stdev:.2f}",
                     f"{mean / base_mean:.2f}x",
                     f"${statistics.mean(costs):.4f}"])
    emit("Figure 8 — K-means, mean +/- stdev over 15 trials",
         format_table(["scenario", "time (s)", "stdev", "vs base", "cost"],
                      rows))

    assert stats["spark_R_vm"] < 120.0  # the chosen SLO
    assert stats["spark_r_vm"] / base_mean > 5.0  # paper: ~10x
    assert 2.2 < stats["spark_autoscale"] / base_mean < 4.5  # paper: 3.3x
    assert stats["ss_R_la"] / base_mean < 1.25  # paper: ~1.11x
    assert stats["qubole_R_la"] > 1.3 * stats["ss_R_la"]  # paper: +51% vs +11%
    # The paper's conclusion for this workload: all-Lambda under SS beats
    # waiting out VM-based scaling by a wide margin.
    assert stats["ss_R_la"] < 0.5 * stats["spark_autoscale"]


@pytest.mark.smoke
def test_smoke_one_kmeans_trial(tmp_path):
    runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
    [record] = runner.run([ExperimentSpec("kmeans", "ss_R_la", seed=0)])
    assert record.error is None and not record.failed
    assert record.duration_s > 0 and record.tasks > 0
