"""The common storage-service protocol and shared bookkeeping.

Every service stores *keyed byte blobs* (shuffle blocks, in practice) and
exposes event-returning ``write``/``read`` whose completion time models
the service's latency, bandwidth contention, and throttling. Callers pass
``via_links`` — the fair-share links on the *caller's* side of the path
(a Lambda's NIC, a VM's network interface) — so that client-side
bottlenecks compose with service-side ones.

Services implement three hooks:

- :meth:`_admit` — request-rate admission control (S3 throttling);
- :meth:`_op_latency` — per-request software/network latency;
- :meth:`_bulk_transfer` — the payload's path through the service's own
  bandwidth constraints.

On top of the hooks the base class offers single-object ``write``/
``read``/``read_partial`` and aggregate ``batch_write``/``batch_read``.
The batch forms model N requests + one fused payload stream; the shuffle
layer uses them so a 200-partition Spark SQL stage costs hundreds of
*requests* (correctly billed and throttled) without hundreds of simulated
transfers.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.network import FairShareLink
    from repro.cloud.pricing import BillingMeter
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams


class StorageKeyError(KeyError):
    """Raised when reading or deleting a key that does not exist."""


@dataclass
class StorageStats:
    """Aggregate I/O counters for one service."""

    bytes_written: float = 0.0
    bytes_read: float = 0.0
    write_requests: int = 0
    read_requests: int = 0
    #: Cumulative seconds requests spent queued behind throttling.
    throttle_wait_s: float = 0.0
    #: Extra seconds added by an active brownout (degradation_factor > 1).
    brownout_wait_s: float = 0.0


class StorageService(abc.ABC):
    """Base class: key registry, stats, billing, and the event plumbing."""

    #: Requests issued concurrently within one batch operation.
    DEFAULT_PARALLELISM = 5

    def __init__(
        self,
        env: "Environment",
        name: str,
        rng: "RandomStreams",
        meter: "BillingMeter" = None,
    ) -> None:
        self.env = env
        self.name = name
        self.rng = rng
        self.meter = meter
        self.stats = StorageStats()
        self._objects: Dict[str, float] = {}
        #: Brownout multiplier (>= 1) stretching admission delay,
        #: per-request latency and payload transfer. 1.0 = healthy; a
        #: ``storage_brownout`` fault raises it for its window. Elevated
        #: error rates are folded in as latency (retry-until-success),
        #: which keeps the model deterministic.
        self.degradation_factor = 1.0

    # ------------------------------------------------------------------
    # Brownouts (fault injection)
    # ------------------------------------------------------------------

    def degrade(self, factor: float) -> None:
        """Enter a brownout: every operation stretched by ``factor``."""
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self.degradation_factor = float(factor)

    def restore(self) -> None:
        """Leave the brownout; subsequent operations run at full health."""
        self.degradation_factor = 1.0

    # ------------------------------------------------------------------
    # Service hooks
    # ------------------------------------------------------------------

    def _admit(self, count: int, write: bool) -> float:
        """Seconds of throttle delay before ``count`` requests may start
        (0 = no admission control)."""
        return 0.0

    def _op_latency(self, write: bool) -> float:
        """Latency of one request (drawn fresh per request)."""
        return 0.0

    @abc.abstractmethod
    def _bulk_transfer(self, nbytes: float,
                       via_links: Sequence["FairShareLink"], write: bool,
                       context=None):
        """Generator: move the payload through the service-side and
        caller-side constraints."""

    def _bill_write(self, nbytes: float, count: int = 1) -> float:
        """Dollar cost of ``count`` write requests (0 unless charged)."""
        return 0.0

    def _bill_read(self, nbytes: float, count: int = 1) -> float:
        return 0.0

    def _op_context(self, key: str, write: bool):
        """Service-specific per-operation context (e.g. HDFS replica
        placement), resolved at request time and passed to
        :meth:`_bulk_transfer`."""
        return None

    # ------------------------------------------------------------------
    # Public API: single objects
    # ------------------------------------------------------------------

    def write(self, key: str, nbytes: float,
              via_links: Sequence["FairShareLink"] = ()) -> Event:
        """Store ``nbytes`` under ``key``; event fires when durable."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        done = Event(self.env)
        self.env.process(
            self._run_io(1, float(nbytes), list(via_links), True, done,
                         key=key, context=self._op_context(key, True)))
        return done

    def read(self, key: str,
             via_links: Sequence["FairShareLink"] = ()) -> Event:
        """Fetch the blob under ``key``; the event's value is its size."""
        nbytes = self.size_of(key)
        done = Event(self.env)
        self.env.process(
            self._run_io(1, nbytes, list(via_links), False, done,
                         context=self._op_context(key, False)))
        return done

    def read_partial(self, key: str, nbytes: float,
                     via_links: Sequence["FairShareLink"] = ()) -> Event:
        """Ranged read: fetch ``nbytes`` out of the blob under ``key``.

        Both S3 (ranged GET) and HDFS (positioned read) support this; the
        shuffle layer uses it so a reducer pulls only its slice of a
        consolidated map-output file. Billed like a normal read.
        """
        stored = self.size_of(key)
        if nbytes < 0 or nbytes > stored + 1e-6:
            raise ValueError(
                f"range of {nbytes} bytes outside object {key!r} ({stored} bytes)")
        done = Event(self.env)
        self.env.process(
            self._run_io(1, float(nbytes), list(via_links), False, done,
                         context=self._op_context(key, False)))
        return done

    # ------------------------------------------------------------------
    # Public API: request batches (fused payload, counted requests)
    # ------------------------------------------------------------------

    def batch_write(self, count: int, total_bytes: float,
                    via_links: Sequence["FairShareLink"] = (),
                    parallelism: int = None, key_prefix: str = None) -> Event:
        """Issue ``count`` write requests carrying ``total_bytes`` overall.

        Pays admission for all requests, per-request latency in waves of
        ``parallelism``, and one fused payload stream. When ``key_prefix``
        is given, a single registry entry ``<prefix>`` of ``total_bytes``
        records the data for later batch reads.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
        done = Event(self.env)
        self.env.process(self._run_io(count, float(total_bytes),
                                      list(via_links), True, done,
                                      key=key_prefix,
                                      parallelism=parallelism))
        return done

    def batch_read(self, count: int, total_bytes: float,
                   via_links: Sequence["FairShareLink"] = (),
                   parallelism: int = None) -> Event:
        """Issue ``count`` read requests fetching ``total_bytes`` overall."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
        done = Event(self.env)
        self.env.process(self._run_io(count, float(total_bytes),
                                      list(via_links), False, done,
                                      parallelism=parallelism))
        return done

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def exists(self, key: str) -> bool:
        return key in self._objects

    def size_of(self, key: str) -> float:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageKeyError(f"{self.name}: no object {key!r}") from None

    def delete(self, key: str) -> None:
        try:
            del self._objects[key]
        except KeyError:
            raise StorageKeyError(f"{self.name}: no object {key!r}") from None

    def keys(self):
        """Iterate over stored keys (snapshot)."""
        return list(self._objects)

    @property
    def total_stored_bytes(self) -> float:
        return sum(self._objects.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_io(self, count: int, nbytes: float, via_links, write: bool,
                done: Event, key: str = None, parallelism: int = None,
                context=None):
        if parallelism is None:
            parallelism = self.DEFAULT_PARALLELISM
        try:
            degraded = self.degradation_factor
            throttle = self._admit(count, write)
            if throttle > 0:
                if degraded > 1.0:
                    self.stats.brownout_wait_s += throttle * (degraded - 1.0)
                    throttle *= degraded
                self.stats.throttle_wait_s += throttle
                yield self.env.timeout(throttle)
            waves = math.ceil(count / max(1, parallelism))
            for _ in range(waves):
                latency = self._op_latency(write)
                if latency > 0:
                    if degraded > 1.0:
                        self.stats.brownout_wait_s += latency * (degraded - 1.0)
                        latency *= degraded
                    yield self.env.timeout(latency)
            if nbytes > 0:
                transfer_start = self.env.now
                yield from self._bulk_transfer(nbytes, via_links, write,
                                               context=context)
                if degraded > 1.0:
                    # A browned-out service streams the payload at 1/factor
                    # of its healthy rate: stretch the observed transfer.
                    stall = (self.env.now - transfer_start) * (degraded - 1.0)
                    if stall > 0:
                        self.stats.brownout_wait_s += stall
                        yield self.env.timeout(stall)
        except BaseException as exc:  # pragma: no cover - defensive
            done.fail(exc)
            return
        if write:
            if key is not None:
                self._objects[key] = nbytes
            self.stats.bytes_written += nbytes
            self.stats.write_requests += count
            cost = self._bill_write(nbytes, count)
        else:
            self.stats.bytes_read += nbytes
            self.stats.read_requests += count
            cost = self._bill_read(nbytes, count)
        if cost and self.meter is not None:
            self.meter.bill_storage(self.name, cost)
        done.succeed(nbytes)

    def _transfer_all(self, links, nbytes: float):
        """Yield until ``nbytes`` has crossed every link in ``links``."""
        events = [link.transfer(nbytes) for link in links]
        for event in events:
            yield event

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
