"""Inter-job autoscaling (§4.1, Figure 2).

The tenant predicts its executor demand over the day as a mean m(t) with
variance σ²(t) and provisions VM capacity at m(t) + k·σ(t) for some
conservatism k. Whatever the policy, moments arise where the true demand
w(t) exceeds provisioned capacity (t₁ in Figure 2 — SplitServe bridges
the shortfall with Lambdas) or falls below it (t₂ — idle VM cores).

:class:`InterJobAutoscaler` replays a demand trace under a policy and
reports the provisioned/shortfall/idle series plus the cost comparison
that motivates less conservative policies once SplitServe exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.cloud.constants import SECONDS_PER_HOUR
from repro.cloud.instance_types import InstanceType
from repro.cloud.pricing import lambda_cost


@dataclass(frozen=True)
class DemandPoint:
    """One sample of the demand trace."""

    time_s: float
    mean: float  # m(t), executors
    sigma: float  # sigma(t)
    actual: float  # w(t)


@dataclass(frozen=True)
class ProvisioningPolicy:
    """Provision m(t) + k·σ(t) cores, re-evaluated each sample."""

    k: float
    name: str = ""

    def cores_at(self, point: DemandPoint) -> int:
        import math

        return max(0, math.ceil(point.mean + self.k * point.sigma))

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        if self.k == 0:
            return "m(t)"
        return f"m(t)+{self.k:g}sigma(t)"


@dataclass
class AutoscaleReport:
    """Outcome of replaying one policy over one trace."""

    policy: ProvisioningPolicy
    times: List[float] = field(default_factory=list)
    provisioned: List[int] = field(default_factory=list)
    actual: List[float] = field(default_factory=list)
    shortfall: List[float] = field(default_factory=list)  # w - provisioned, >0
    idle: List[float] = field(default_factory=list)  # provisioned - w, >0
    vm_core_hours: float = 0.0
    shortfall_core_hours: float = 0.0
    idle_core_hours: float = 0.0

    @property
    def shortfall_events(self) -> int:
        """Samples where Lambdas would be needed (t1-style moments)."""
        return sum(1 for s in self.shortfall if s > 0)

    def vm_cost(self, itype: InstanceType) -> float:
        """Dollar cost of the provisioned VM core-hours."""
        return self.vm_core_hours * itype.price_per_vcpu_hour

    def lambda_bridge_cost(self, memory_mb: int = 1536) -> float:
        """Dollar cost of bridging every shortfall core-hour with Lambdas
        (upper bound: Lambdas billed for the full shortfall duration)."""
        return lambda_cost(memory_mb, self.shortfall_core_hours * SECONDS_PER_HOUR,
                           invocations=max(1, self.shortfall_events))

    def total_cost(self, itype: InstanceType, memory_mb: int = 1536) -> float:
        return self.vm_cost(itype) + self.lambda_bridge_cost(memory_mb)


class InterJobAutoscaler:
    """Replays provisioning policies over demand traces."""

    def replay(self, trace: Sequence[DemandPoint],
               policy: ProvisioningPolicy) -> AutoscaleReport:
        if len(trace) < 2:
            raise ValueError("trace needs at least two samples")
        report = AutoscaleReport(policy=policy)
        for i, point in enumerate(trace):
            cores = policy.cores_at(point)
            shortfall = max(0.0, point.actual - cores)
            idle = max(0.0, cores - point.actual)
            report.times.append(point.time_s)
            report.provisioned.append(cores)
            report.actual.append(point.actual)
            report.shortfall.append(shortfall)
            report.idle.append(idle)
            if i + 1 < len(trace):
                dt_h = (trace[i + 1].time_s - point.time_s) / SECONDS_PER_HOUR
                report.vm_core_hours += cores * dt_h
                report.shortfall_core_hours += shortfall * dt_h
                report.idle_core_hours += idle * dt_h
        return report

    def compare_policies(self, trace: Sequence[DemandPoint],
                         policies: Sequence[ProvisioningPolicy],
                         itype: InstanceType) -> List[AutoscaleReport]:
        """Replay each policy; sorted by total (VM + Lambda-bridge) cost."""
        reports = [self.replay(trace, p) for p in policies]
        return sorted(reports, key=lambda r: r.total_cost(itype))
