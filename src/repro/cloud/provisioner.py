"""The cloud-provider facade: VM fleet, Lambda warm pool, billing hooks.

:class:`CloudProvider` is what the SplitServe launching facility talks to.
It owns:

- the VM fleet (request / terminate, with realistic provisioning delays);
- the Lambda warm pool — containers of a given memory size that finished
  recently are reusable for ~90 minutes, so subsequent invocations start
  warm (the paper's experiments run against a warmed pool; cold-start
  behaviour is reproducible by draining the pool);
- the :class:`~repro.cloud.pricing.BillingMeter` for marginal-cost
  accounting.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cloud.constants import LAMBDA_WARM_KEEPALIVE_S
from repro.cloud.instance_types import InstanceType, instance_type
from repro.cloud.lambda_fn import (
    LambdaConfig,
    LambdaInstance,
    LambdaThrottledError,
)
from repro.cloud.pricing import BillingMeter
from repro.cloud.vm import VirtualMachine
from repro.observability.categories import (
    CAT_PROVIDER,
    EV_LAMBDA_INVOKE_FAILED,
    EV_LAMBDA_THROTTLED,
)
from repro.observability.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder


class CloudProvider:
    """Simulated public-cloud control plane."""

    def __init__(
        self,
        env: "Environment",
        rng: "RandomStreams",
        trace: Optional["TraceRecorder"] = None,
        meter: Optional[BillingMeter] = None,
        warm_pool_size: int = 10_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.rng = rng
        self.trace = trace
        self.meter = meter if meter is not None else BillingMeter()
        #: ``cloud.*`` counters land here; scenario runtimes pass their
        #: per-run registry so the counts reach RunRecord.metrics.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.vms: List[VirtualMachine] = []
        self.lambdas: List[LambdaInstance] = []
        #: memory_mb -> list of sim-times at which a container went idle;
        #: each entry is one reusable warm container.
        self._warm_pool: Dict[int, List[float]] = {}
        self._initial_warm = warm_pool_size
        self._vm_ids = itertools.count()
        self._lambda_ids = itertools.count()
        #: Account-level concurrent-execution cap; invocations beyond it
        #: raise :class:`LambdaThrottledError` (None = unlimited). Set
        #: statically or by a ``lambda_throttle`` fault window.
        self.concurrency_limit: Optional[int] = None
        #: Optional per-invocation failure hook (wired by the fault
        #: injector): a callable returning an exception to raise, or None
        #: to admit the invocation.
        self.invoke_fault = None
        self.throttled_invocations = 0
        self.failed_invocations = 0

    # ------------------------------------------------------------------
    # VMs
    # ------------------------------------------------------------------

    def request_vm(
        self,
        itype: "InstanceType | str",
        name: Optional[str] = None,
        already_running: bool = False,
        boot_delay_s: Optional[float] = None,
    ) -> VirtualMachine:
        """Ask for a new instance. ``already_running=True`` models capacity
        that was provisioned before the scenario began (the 'r cores
        available' starting condition)."""
        if isinstance(itype, str):
            itype = instance_type(itype)
        if name is None:
            name = f"vm-{next(self._vm_ids)}"
        self.metrics.counter("cloud.vm.requested").inc()
        vm = VirtualMachine(
            self.env, name, itype, self.rng, trace=self.trace,
            boot_delay_s=boot_delay_s, already_running=already_running)
        self.vms.append(vm)
        return vm

    def terminate_vm(self, vm: VirtualMachine) -> None:
        vm.terminate()

    @property
    def running_vms(self) -> List[VirtualMachine]:
        return [vm for vm in self.vms if vm.is_running]

    # ------------------------------------------------------------------
    # Lambdas
    # ------------------------------------------------------------------

    def invoke_lambda(
        self,
        config: Optional[LambdaConfig] = None,
        name: Optional[str] = None,
        force_cold: bool = False,
    ) -> LambdaInstance:
        """Invoke one function; warm-start if the pool has a live container
        of the same memory size.

        Raises :class:`LambdaThrottledError` past the account concurrency
        limit, or whatever the injected ``invoke_fault`` hook returns —
        callers own the retry policy (see
        :class:`repro.core.launching.LaunchingFacility`).
        """
        if config is None:
            config = LambdaConfig()
        if (self.concurrency_limit is not None
                and self.active_lambda_count >= self.concurrency_limit):
            self.throttled_invocations += 1
            self.metrics.counter("cloud.lambda.throttles").inc()
            self._record(EV_LAMBDA_THROTTLED, limit=self.concurrency_limit,
                         active=self.active_lambda_count)
            raise LambdaThrottledError(
                f"concurrency limit {self.concurrency_limit} reached "
                f"({self.active_lambda_count} active)")
        if self.invoke_fault is not None:
            error = self.invoke_fault()
            if error is not None:
                self.failed_invocations += 1
                self.metrics.counter("cloud.lambda.invoke_failures").inc()
                self._record(EV_LAMBDA_INVOKE_FAILED, error=str(error))
                raise error
        if name is None:
            name = f"lambda-{next(self._lambda_ids)}"
        warm = (not force_cold) and self._take_warm(config.memory_mb)
        self.metrics.counter("cloud.lambda.invocations").inc()
        self.metrics.counter("cloud.lambda.warm_starts" if warm
                             else "cloud.lambda.cold_starts").inc()
        instance = LambdaInstance(
            self.env, name, config, self.rng, warm=warm, trace=self.trace)
        self.lambdas.append(instance)
        return instance

    def release_lambda(self, instance: LambdaInstance) -> None:
        """The function returned; its container rejoins the warm pool."""
        instance.finish()
        pool = self._warm_pool.setdefault(instance.config.memory_mb, [])
        pool.append(self.env.now)

    def _take_warm(self, memory_mb: int) -> bool:
        """Pop one live warm container of this size, or consume one slot
        of the pre-warmed initial pool."""
        pool = self._warm_pool.setdefault(memory_mb, [])
        cutoff = self.env.now - LAMBDA_WARM_KEEPALIVE_S
        # Expire stale containers (kept sorted by construction).
        while pool and pool[0] < cutoff:
            pool.pop(0)
        if pool:
            pool.pop()
            return True
        if self._initial_warm > 0:
            self._initial_warm -= 1
            return True
        return False

    @property
    def active_lambda_count(self) -> int:
        """Functions invoked and not yet finished/reaped — the quantity
        the account concurrency limit is enforced against."""
        return sum(1 for fn in self.lambdas if fn.finish_time is None)

    @property
    def warm_pool_available(self) -> int:
        """Containers currently reusable as warm starts (any size) plus
        the untouched pre-warmed allotment."""
        cutoff = self.env.now - LAMBDA_WARM_KEEPALIVE_S
        live = sum(sum(1 for t in pool if t >= cutoff)
                   for pool in self._warm_pool.values())
        return live + self._initial_warm

    def _record(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(self.env.now, CAT_PROVIDER, event, **fields)

    # ------------------------------------------------------------------
    # Billing helpers
    # ------------------------------------------------------------------

    def bill_lambda_usage(self, instance: LambdaInstance) -> float:
        """Bill one finished (or still-running) function's full duration."""
        end = (instance.finish_time if instance.finish_time is not None
               else self.env.now)
        return self.meter.bill_lambda(
            instance.name, instance.config.memory_mb, instance.invoke_time, end)

    def bill_vm_usage(self, vm: VirtualMachine, cores_fraction: float = 1.0,
                      start: Optional[float] = None,
                      end: Optional[float] = None) -> float:
        """Bill a VM from when it started running (or ``start``) to
        termination/now (or ``end``)."""
        if start is None:
            start = vm.running_time if vm.running_time is not None else self.env.now
        if end is None:
            end = vm.terminate_time if vm.terminate_time is not None else self.env.now
        return self.meter.bill_vm(vm.name, vm.itype, start, end, cores_fraction)
