"""HiBench ML K-means — compute-intensive, light shuffle, cached input.

§5.2 setup: 3·10⁶ points, 20-dimensional, k = 10, up to 5 iterations,
convergence distance 0.5, R = 16, r = 4. Degree of parallelism 16 was
chosen (via §5.1 profiling) to meet a < 2 minute SLO.

Structure (Spark MLlib K-means):

  stage 0   read + parse + **cache** the points RDD (expensive ingest)
  per iteration: a map stage (assign points, partial sums per cluster —
  narrow over the cached points) and a tiny reduce stage (combine the
  k x dims partial sums).

Two modelled effects carry the paper's findings:

- the cached points dominate executor storage memory. 16 executors hold
  one partition each comfortably; 4 executors must hold 4 and **evict**
  (LRU), so every iteration re-ingests — the honest mechanism behind the
  paper's 10x degradation on r = 4 (not just the 4x core deficit);
- autoscaled VMs arrive cache-cold and re-ingest on first touch, which
  is why VM scaling only recovers to ≈ 3.3x ("a large fraction of the
  tasks have already been scheduled on the existing executors").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.constants import GB
from repro.spark.rdd import RDDBuilder
from repro.workloads.base import Workload, WorkloadSpec

#: Reference-core seconds to read + parse + densify one point (HiBench's
#: text input format is expensive to ingest).
INGEST_SECONDS_PER_POINT = 1.3e-4
#: Reference-core seconds per point per assign iteration (distance to
#: k=10 centroids in 20 dims; ~2 orders above the measured pure-NumPy
#: cost in kmeans_algo, matching JVM/MLlib overhead).
ASSIGN_SECONDS_PER_POINT = 2.6e-5
#: Reduce-side compute per partition (combine k x dims partial sums).
REDUCE_SECONDS = 0.15
#: JVM-resident bytes per cached point (boxed vectors: ~15x the raw 160 B
#: of 20 doubles is what old MLlib's Vector objects actually cost). At 16
#: partitions this makes one partition ~450 MB: a 1536 MB Lambda's storage
#: region holds exactly one, a 4 GB VM executor's holds two — so an
#: under-provisioned r=4 cluster (4 partitions per executor) thrashes.
CACHED_BYTES_PER_POINT = 2_400.0
#: Shuffle volume per iteration: partial sums are tiny.
ITER_SHUFFLE_BYTES = 2 * 1024 * 1024
#: On-disk input size (HiBench text: ~200 bytes per point).
INPUT_BYTES_PER_POINT = 200.0


@dataclass
class KMeansWorkload(Workload):
    """K-means over ``points`` points, ``iterations`` Lloyd's passes."""

    points: int = 3_000_000
    dims: int = 20
    k: int = 10
    iterations: int = 5

    def __post_init__(self) -> None:
        if min(self.points, self.dims, self.k, self.iterations) <= 0:
            raise ValueError("all K-means parameters must be positive")
        self.spec = WorkloadSpec(
            name=f"kmeans-{self.points}",
            required_cores=16,
            available_cores=4,
            worker_itype="m4.4xlarge",
            master_itype="m4.xlarge",
            slo_seconds=120.0,  # "< 2 minutes for Spark 16 VM"
            vm_ready_delay_s=60.0,  # "VMs are available to use within ~1 minute"
        )

    @property
    def cached_dataset_bytes(self) -> float:
        return self.points * CACHED_BYTES_PER_POINT

    def build(self, parallelism: int):
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        from repro.spark.rdd import RDD, NarrowDependency

        b = RDDBuilder()
        p = parallelism
        per_part_cache = self.cached_dataset_bytes / p
        points = b.source(
            "points", partitions=p,
            compute_seconds=self.points * INGEST_SECONDS_PER_POINT / p,
            working_set_bytes=per_part_cache,
            cache=True,
            input_bytes=self.points * INPUT_BYTES_PER_POINT)
        centroids = None
        for i in range(1, self.iterations + 1):
            # The assign step depends on the cached points and (from the
            # second iteration) on the previous centroids — MLlib ships
            # centroids by broadcast, which sequences the iterations just
            # as this narrow dependency does.
            deps = [NarrowDependency(points)]
            if centroids is not None:
                deps.append(NarrowDependency(centroids))
            assign = RDD(
                f"assign{i}", p,
                compute_seconds=self.points * ASSIGN_SECONDS_PER_POINT / p,
                deps=deps,
                working_set_bytes=per_part_cache * 0.3)
            centroids = b.shuffle(
                assign, f"centroids{i}", partitions=p,
                shuffle_bytes=ITER_SHUFFLE_BYTES,
                compute_seconds=REDUCE_SECONDS)
        return centroids

    @property
    def num_stages(self) -> int:
        """One map stage per iteration (ingest pipelines into the first;
        each centroid reduce pipelines into the next iteration's map)
        plus the result stage."""
        return self.iterations + 1
