"""Task scheduling: TaskSets, delay scheduling, retries, decommission.

Mirrors Spark's ``TaskSchedulerImpl`` + ``TaskSetManager``:

- FIFO across task sets, cache-locality preference within one (delay
  scheduling with ``spark.locality.wait``);
- per-task retry accounting up to ``spark.task.maxFailures``;
- fetch failures zombify the task set and are escalated to the DAG
  scheduler (stage resubmission, not task retry);
- SplitServe's scheduler hook (§4.3): before offering a task to a
  Lambda-based executor, check how long it has been running; past
  ``spark.lambda.executor.timeout`` the executor is drained instead —
  it finishes its current work and is gracefully decommissioned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.observability.categories import (
    CAT_SCHEDULER,
    EV_BLACKLIST_SUPPRESSED,
    EV_EXECUTOR_BLACKLISTED,
    EV_EXECUTOR_DRAINED,
    EV_EXECUTOR_REGISTERED,
    EV_MAP_OUTPUTS_LOST,
    EV_SPECULATIVE_LAUNCH,
    EV_TASKSET_SUBMITTED,
)
from repro.spark.executor import Executor, ExecutorState, HostKind
from repro.spark.shuffle import (
    FetchFailedError,
    MapOutputTracker,
    ShuffleBackend,
)
from repro.spark.task import TaskAttempt, TaskSpec, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder
    from repro.spark.config import SparkConf


class SchedulerListener:
    """Callbacks the DAG scheduler (and SplitServe) hook into."""

    def on_task_finished(self, attempt: TaskAttempt) -> None:
        """A task attempt completed successfully."""

    def on_task_failed(self, attempt: TaskAttempt) -> None:
        """A task attempt failed or was killed (before any retry)."""

    def on_taskset_complete(self, taskset: "TaskSet") -> None:
        """Every partition of the task set has finished."""

    def on_taskset_failed(self, taskset: "TaskSet", reason: str) -> None:
        """A task exhausted its retries; the stage (and job) is dead."""

    def on_fetch_failed(self, taskset: "TaskSet", attempt: TaskAttempt,
                        error: FetchFailedError) -> None:
        """A reducer lost a shuffle input; stage-level recovery needed."""

    def on_executor_drained(self, executor: Executor) -> None:
        """A draining executor has gone idle and can be released."""

    def on_executor_lost(self, executor: Executor, reason: str) -> None:
        """An executor died (host gone or hard-killed)."""


class TaskSet:
    """All tasks of one stage attempt, with retry bookkeeping."""

    def __init__(self, stage_id: int, attempt: int, specs: List[TaskSpec],
                 name: str = "") -> None:
        if not specs:
            raise ValueError("a TaskSet needs at least one task")
        self.stage_id = stage_id
        self.attempt = attempt
        self.name = name or f"stage-{stage_id}.{attempt}"
        self.specs: Dict[int, TaskSpec] = {s.partition: s for s in specs}
        self.pending: List[int] = sorted(self.specs)
        self.running: Dict[int, TaskAttempt] = {}
        self.finished: Set[int] = set()
        self.failure_counts: Dict[int, int] = {}
        self.attempt_counter: Dict[int, int] = {}
        #: A zombie set stops launching tasks (fetch failure or abort) but
        #: lets in-flight tasks finish, exactly like Spark's TaskSetManager.
        self.zombie = False
        #: Per-taskset listener (multi-application pools): when set, the
        #: scheduler routes this set's lifecycle callbacks here instead of
        #: its primary listener. None = single-driver behaviour.
        self.listener: Optional[SchedulerListener] = None
        #: Opaque handle grouping the set under one schedulable entity
        #: (a ClusterApp in pooled mode); scheduler pools read it to
        #: compute per-application running-task counts.
        self.schedulable: Optional[object] = None
        self.submit_time: Optional[float] = None
        self.last_launch_time: Optional[float] = None
        #: partition -> sim-time it (re)became runnable; launch reads it
        #: to charge TaskMetrics.scheduler_delay_seconds.
        self.pending_since: Dict[int, float] = {}
        #: Fast path: task sets with no cached pipeline steps have no
        #: locality preferences, so task selection is O(1).
        self.has_cache_preferences = any(
            step.cache for spec in specs for step in spec.pipeline)
        #: Heterogeneity-aware sizing (§7): some tasks are sized for a
        #: specific executor kind.
        self.has_kind_preferences = any(
            spec.sized_for is not None for spec in specs)
        #: Speculation bookkeeping: completed attempt durations, and the
        #: second copies currently in flight per partition.
        self.finished_durations: List[float] = []
        self.speculative: Dict[int, TaskAttempt] = {}

    def median_duration(self) -> Optional[float]:
        if not self.finished_durations:
            return None
        ordered = sorted(self.finished_durations)
        return ordered[len(ordered) // 2]

    @property
    def is_complete(self) -> bool:
        return len(self.finished) == len(self.specs)

    @property
    def has_pending(self) -> bool:
        return bool(self.pending) and not self.zombie

    def requeue(self, partition: int) -> None:
        if partition not in self.pending:
            self.pending.append(partition)

    def next_attempt_number(self, partition: int) -> int:
        n = self.attempt_counter.get(partition, 0)
        self.attempt_counter[partition] = n + 1
        return n

    def describe(self) -> str:
        return (f"{self.name}: {len(self.finished)}/{len(self.specs)} done, "
                f"{len(self.running)} running, {len(self.pending)} pending")


class TaskScheduler:
    """Assigns tasks to free executors; owns the executor registry."""

    def __init__(
        self,
        env: "Environment",
        conf: "SparkConf",
        rng: "RandomStreams",
        shuffle_backend: ShuffleBackend,
        trace: Optional["TraceRecorder"] = None,
        listener: Optional[SchedulerListener] = None,
    ) -> None:
        self.env = env
        self.conf = conf
        self.rng = rng
        self.shuffle_backend = shuffle_backend
        self.trace = trace
        self.listener = listener if listener is not None else SchedulerListener()
        #: Additional listeners (fault injectors, recovery accounting)
        #: notified after the primary listener. Observers may implement
        #: any subset of the SchedulerListener methods.
        self.observers: List[object] = []
        self.executors: Dict[str, Executor] = {}
        self.map_output_tracker = MapOutputTracker()
        self.tasksets: List[TaskSet] = []
        self._locality_wait = float(conf.get("spark.locality.wait"))
        self._max_failures = int(conf.get("spark.task.maxFailures"))
        self._dispatch_scheduled = False
        self._speculation = bool(conf.get("spark.speculation"))
        self._speculation_quantile = float(
            conf.get("spark.speculation.quantile"))
        self._speculation_multiplier = float(
            conf.get("spark.speculation.multiplier"))
        self._speculation_interval = float(
            conf.get("spark.speculation.interval"))
        self._speculation_active = False
        # The Lambda-timeout knob is fixed at conf-construction time;
        # re-reading it per executor per dispatch was a measurable share
        # of the free-executor scan.
        _timeout = conf.get("spark.lambda.executor.timeout")
        self._lambda_timeout = None if _timeout is None else float(_timeout)
        self._blacklist_enabled = bool(conf.get("spark.blacklist.enabled"))
        self._blacklist_threshold = int(
            conf.get("spark.blacklist.maxFailedTasksPerExecutor"))
        #: Executor ids barred from receiving tasks (too many failures).
        self.blacklisted: Set[str] = set()
        #: Pooled schedulers re-sort the taskset order after every launch
        #: so shares rebalance at task grain; the single-driver scheduler
        #: keeps its historical greedy inner loop.
        self._resort_each_launch = False
        #: How source RDD partitions reach executors: a callable
        #: ``(executor, nbytes) -> generator`` the scenario wires to its
        #: input store (worker-local HDFS for vanilla clusters, the
        #: shared HDFS node for SplitServe, S3 for Qubole). None models
        #: fully data-local input via the executor's own disk.
        self.input_reader = None

    def _notify(self, method: str, *args,
                taskset: Optional[TaskSet] = None) -> None:
        """Fan one listener callback out to the responsible listener and
        every observer (observers implementing only part of the protocol
        are fine).

        Taskset-scoped callbacks go to the set's own listener when one is
        attached (multi-application pools route each application's
        callbacks to its own DAG scheduler); otherwise — and for
        executor-level callbacks — the primary listener receives them.
        """
        target = self.listener
        if taskset is not None and taskset.listener is not None:
            target = taskset.listener
        getattr(target, method)(*args)
        for observer in list(self.observers):
            handler = getattr(observer, method, None)
            if handler is not None:
                handler(*args)

    def read_input(self, executor: Executor, nbytes: float):
        """Generator: deliver ``nbytes`` of source input to ``executor``."""
        if nbytes <= 0:
            return
        if self.input_reader is not None:
            yield from self.input_reader(executor, nbytes)
            return
        links = executor.disk_links() or executor.net_links()
        for link in links:
            yield link.transfer(nbytes)

    # ------------------------------------------------------------------
    # Executor registry
    # ------------------------------------------------------------------

    def register_executor(self, executor: Executor) -> None:
        if executor.executor_id in self.executors:
            raise ValueError(f"duplicate executor id {executor.executor_id}")
        self.executors[executor.executor_id] = executor
        self._record(EV_EXECUTOR_REGISTERED, executor=executor.executor_id,
                     kind=executor.kind.value)
        self._dispatch()

    def decommission_executor(self, executor: Executor, graceful: bool = True,
                              reason: str = "decommission") -> None:
        """Graceful: drain. Hard: kill (tasks fail, local outputs lost)."""
        if graceful:
            executor.drain()
            if executor.is_idle:
                self._finalize_drained(executor)
        else:
            self._lose_executor(executor, reason)

    def _lose_executor(self, executor: Executor, reason: str) -> None:
        executor.kill(reason)  # interrupts the running task, if any
        self.executors.pop(executor.executor_id, None)
        if not self.shuffle_backend.outputs_survive_executor_loss:
            lost = self.map_output_tracker.remove_outputs_on_executor(
                executor.executor_id)
            if lost:
                self._record(EV_MAP_OUTPUTS_LOST,
                             executor=executor.executor_id, count=len(lost))
        self.shuffle_backend.on_executor_lost(executor.executor_id)
        self._notify("on_executor_lost", executor, reason)
        self._dispatch()

    def _finalize_drained(self, executor: Executor) -> None:
        self.executors.pop(executor.executor_id, None)
        self._record(EV_EXECUTOR_DRAINED, executor=executor.executor_id,
                     kind=executor.kind.value)
        self._notify("on_executor_drained", executor)

    @property
    def registered_executors(self) -> List[Executor]:
        return list(self.executors.values())

    def executor_counts(self) -> Dict[str, int]:
        """Live executors by host kind, e.g. {'vm': 2, 'lambda': 3}."""
        counts: Dict[str, int] = {}
        for ex in self.executors.values():
            counts[ex.kind.value] = counts.get(ex.kind.value, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Task set lifecycle
    # ------------------------------------------------------------------

    def submit_taskset(self, taskset: TaskSet) -> None:
        taskset.submit_time = self.env.now
        for partition in taskset.pending:
            taskset.pending_since[partition] = self.env.now
        self.tasksets.append(taskset)
        self._record(EV_TASKSET_SUBMITTED, taskset=taskset.name,
                     tasks=len(taskset.specs))
        if self._speculation and not self._speculation_active:
            self._speculation_active = True
            self.env.process(self._speculation_loop(
                self._speculation_interval))
        self._dispatch()

    @property
    def pending_task_count(self) -> int:
        return sum(len(ts.pending) for ts in self.tasksets if not ts.zombie)

    @property
    def running_task_count(self) -> int:
        return sum(len(ts.running) for ts in self.tasksets)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _preferred_executors(self, spec: TaskSpec) -> Set[str]:
        """Executors holding a cached partition this task could reuse."""
        preferred: Set[str] = set()
        cache_steps = spec.cache_steps
        if not cache_steps:
            return preferred
        partition = spec.partition
        for ex in self.executors.values():
            cache = ex._cache
            for _i, step in cache_steps:
                if (step.rdd_id, partition) in cache:
                    preferred.add(ex.executor_id)
                    break
        return preferred

    def _holds_cached_step(self, executor: Executor, spec: TaskSpec) -> bool:
        """True when ``executor`` itself holds a cached partition for
        ``spec`` (the fast-path half of :meth:`_preferred_executors`)."""
        cache = executor._cache
        partition = spec.partition
        for _i, step in spec.cache_steps:
            if (step.rdd_id, partition) in cache:
                return True
        return False

    def _anyone_holds_cached_step(self, spec: TaskSpec) -> bool:
        """True when any registered executor holds a cached partition for
        ``spec`` — i.e. :meth:`_preferred_executors` would be non-empty —
        with first-holder early exit."""
        partition = spec.partition
        for ex in self.executors.values():
            cache = ex._cache
            for _i, step in spec.cache_steps:
                if (step.rdd_id, partition) in cache:
                    return True
        return False

    def _check_lambda_timeout(self, executor: Executor) -> bool:
        """SplitServe hook: True if the executor should be drained instead
        of receiving tasks (its Lambda has run past the timeout knob)."""
        timeout = self._lambda_timeout
        if timeout is None or executor.kind is not HostKind.LAMBDA:
            return False
        return executor.time_on_lambda >= timeout

    def _free_executors(self) -> List[Executor]:
        # Deterministic order: registration order is dict order.
        blacklisted = self.blacklisted
        if self._lambda_timeout is None:
            # Common path: nothing below mutates the registry, so scan it
            # directly (no snapshot) with ``is_free`` inlined — including
            # the host-liveness read (state is REGISTERED already implies
            # not DEAD, so ``host_alive``'s extra check is redundant here).
            registered = ExecutorState.REGISTERED
            return [ex for ex in self.executors.values()
                    if ex.state is registered
                    and len(ex._tasks) < ex.cores
                    and ex._host.is_running
                    and ex.executor_id not in blacklisted]
        free = []
        for ex in list(self.executors.values()):
            if not ex.is_free:
                continue
            if ex.executor_id in blacklisted:
                continue
            if self._check_lambda_timeout(ex):
                ex.drain()
                self._finalize_drained(ex)
                continue
            free.append(ex)
        return free

    def _select_task(self, taskset: TaskSet, executor: Executor,
                     locality_relaxed: bool) -> Optional[int]:
        """Pick a pending partition for ``executor`` under delay
        scheduling. Returns the partition or None."""
        if taskset.has_kind_preferences:
            return self._select_sized_task(taskset, executor,
                                           locality_relaxed)
        if not taskset.has_cache_preferences:
            return taskset.pending[0] if taskset.pending else None
        no_pref_choice: Optional[int] = None
        any_choice: Optional[int] = None
        for partition in taskset.pending:
            spec = taskset.specs[partition]
            # Split the old build-the-whole-preferred-set probe into two
            # early-exit checks: "this executor holds it" (the return
            # case) and "anyone holds it" (only needed while a
            # no-preference fallback is still being sought).
            if self._holds_cached_step(executor, spec):
                return partition
            if no_pref_choice is None \
                    and not self._anyone_holds_cached_step(spec):
                no_pref_choice = partition
            if any_choice is None:
                any_choice = partition
        if no_pref_choice is not None:
            return no_pref_choice
        if locality_relaxed:
            return any_choice
        return None

    def _select_sized_task(self, taskset: TaskSet, executor: Executor,
                           locality_relaxed: bool) -> Optional[int]:
        """Heterogeneity-aware pick (§7): prefer a task sized for this
        executor's kind; after the locality wait, take anything."""
        kind = executor.kind.value
        fallback: Optional[int] = None
        for partition in taskset.pending:
            sized_for = taskset.specs[partition].sized_for
            if sized_for in (None, kind):
                return partition
            if fallback is None:
                fallback = partition
        return fallback if locality_relaxed else None

    def _schedulable_tasksets(self) -> List[TaskSet]:
        """Task sets in offer order. The base scheduler is strict FIFO
        (submission order); pooled schedulers override this with their
        FAIR/FIFO pool policy."""
        return self.tasksets

    def _dispatch(self) -> None:
        """Match free executors to pending tasks; defer for locality."""
        launched = True
        wake_in: Optional[float] = None
        free: Optional[List[Executor]] = None
        # Launching is synchronous bookkeeping — the task process only
        # starts when its Initialize event is dispatched later — so a
        # launch can change the freeness of exactly one executor: the one
        # it ran on. The pooled per-launch re-sort loop therefore keeps
        # the free list across iterations with a point fix instead of
        # rescanning the registry each time. The Lambda-timeout path
        # keeps the rescan: its scan drains overdue executors (side
        # effects the reuse would skip).
        reuse_free = self._lambda_timeout is None
        while launched:
            launched = False
            if free is None:
                free = self._free_executors()
            if not free:
                break
            for taskset in self._schedulable_tasksets():
                if not taskset.has_pending:
                    continue
                reference = (taskset.last_launch_time
                             if taskset.last_launch_time is not None
                             else taskset.submit_time)
                remaining = self._locality_wait - (self.env.now - reference)
                relaxed = remaining <= 0
                for ex in list(free):
                    if not taskset.has_pending:
                        break
                    partition = self._select_task(taskset, ex, relaxed)
                    if partition is None:
                        if taskset.pending:
                            delay = max(0.001, remaining)
                            wake_in = delay if wake_in is None else min(wake_in, delay)
                        continue
                    if self._resort_each_launch:
                        self._launch(taskset, partition, ex)
                        launched = True
                        if reuse_free:
                            if not ex.is_free:
                                free.remove(ex)
                        else:
                            free = None
                        break
                    free.remove(ex)
                    self._launch(taskset, partition, ex)
                    launched = True
                if launched and self._resort_each_launch:
                    # Re-enter the outer loop so running-task counts feed
                    # back into the pool ordering before the next offer.
                    break
            if not (self._resort_each_launch and reuse_free):
                free = None
        if wake_in is not None:
            self._schedule_redispatch(wake_in)

    def _schedule_redispatch(self, delay: float) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True

        def wake(_event):
            self._dispatch_scheduled = False
            self._dispatch()

        self.env.timeout(delay).callbacks.append(wake)

    def _launch(self, taskset: TaskSet, partition: int, executor: Executor) -> None:
        taskset.pending.remove(partition)
        spec = taskset.specs[partition]
        attempt = TaskAttempt(spec, taskset.next_attempt_number(partition),
                              executor.executor_id)
        attempt.metrics.scheduler_delay_seconds = max(
            0.0, self.env.now - taskset.pending_since.get(partition,
                                                          self.env.now))
        taskset.running[partition] = attempt
        taskset.last_launch_time = self.env.now
        executor.launch_task(attempt, self, self._on_task_finish)

    # ------------------------------------------------------------------
    # Speculative execution (Spark's straggler mitigation)
    # ------------------------------------------------------------------

    def _speculation_loop(self, interval: float):
        # Lazily started with the first task set; exits when the last
        # one completes so an idle scheduler holds no pending events.
        while self.tasksets:
            yield self.env.timeout(interval)
            if self._launch_speculative_copies():
                self._dispatch()
        self._speculation_active = False

    def _speculatable_partitions(self, taskset: TaskSet):
        """Partitions whose sole running attempt has outlived the
        multiplier x median of finished durations (and enough of the
        stage is done to trust the median)."""
        done_fraction = len(taskset.finished) / len(taskset.specs)
        if done_fraction < self._speculation_quantile:
            return []
        median = taskset.median_duration()
        if median is None:
            return []
        threshold = self._speculation_multiplier * median
        out = []
        for partition, attempt in taskset.running.items():
            if partition in taskset.speculative:
                continue
            age = self.env.now - attempt.metrics.launch_time
            if age > threshold:
                out.append(partition)
        return out

    def _launch_speculative_copies(self) -> bool:
        launched = False
        for taskset in list(self.tasksets):
            if taskset.zombie:
                continue
            candidates = self._speculatable_partitions(taskset)
            if not candidates:
                continue
            free = self._free_executors()
            for partition in candidates:
                original = taskset.running.get(partition)
                if original is None:
                    continue
                host = next((ex for ex in free
                             if ex.executor_id != original.executor_id), None)
                if host is None:
                    break
                free.remove(host)
                spec = taskset.specs[partition]
                copy = TaskAttempt(spec, taskset.next_attempt_number(partition),
                                   host.executor_id)
                taskset.speculative[partition] = copy
                self._record(EV_SPECULATIVE_LAUNCH, task=spec.describe(),
                             executor=host.executor_id)
                host.launch_task(copy, self, self._on_task_finish)
                launched = True
        return launched

    def _cancel_losing_copy(self, taskset: TaskSet, partition: int,
                            winner: TaskAttempt) -> None:
        """The other in-flight copy of ``partition`` (if any) is aborted
        on its executor."""
        for loser in (taskset.running.get(partition),
                      taskset.speculative.get(partition)):
            if loser is None or loser is winner:
                continue
            executor = self.executors.get(loser.executor_id)
            if executor is not None:
                from repro.spark.executor import SPECULATION_CANCEL

                executor.kill_task(loser, SPECULATION_CANCEL)
        taskset.running.pop(partition, None)
        taskset.speculative.pop(partition, None)

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------

    def _taskset_for(self, attempt: TaskAttempt) -> Optional[TaskSet]:
        partition = attempt.spec.partition
        for taskset in self.tasksets:
            if taskset.stage_id != attempt.spec.stage_id:
                continue
            if (taskset.running.get(partition) is attempt
                    or taskset.speculative.get(partition) is attempt):
                return taskset
        return None

    def _on_task_finish(self, executor: Executor, attempt: TaskAttempt) -> None:
        taskset = self._taskset_for(attempt)
        if taskset is not None:
            partition = attempt.spec.partition
            if taskset.running.get(partition) is attempt:
                taskset.running.pop(partition, None)
            elif taskset.speculative.get(partition) is attempt:
                taskset.speculative.pop(partition, None)
            self._handle_outcome(taskset, attempt)
        if executor.state is ExecutorState.DRAINING and executor.is_idle:
            self._finalize_drained(executor)
        self._dispatch()

    def _handle_outcome(self, taskset: TaskSet, attempt: TaskAttempt) -> None:
        partition = attempt.spec.partition
        if attempt.state is TaskState.FINISHED:
            if partition in taskset.finished:
                return  # the other speculated copy already won
            taskset.finished.add(partition)
            taskset.finished_durations.append(attempt.metrics.duration)
            self._cancel_losing_copy(taskset, partition, attempt)
            self._notify("on_task_finished", attempt, taskset=taskset)
            if taskset.is_complete:
                self.tasksets.remove(taskset)
                self._notify("on_taskset_complete", taskset, taskset=taskset)
            return
        if partition in taskset.finished:
            return  # a cancelled speculation loser; not a real failure
        self._notify("on_task_failed", attempt, taskset=taskset)
        if isinstance(attempt.failure, FetchFailedError):
            # Stage-level problem: zombify and let the DAG scheduler
            # resubmit (lost map outputs must be recomputed first).
            taskset.zombie = True
            self._invalidate_unreachable_outputs(attempt.failure.shuffle_id)
            self._notify("on_fetch_failed", taskset, attempt, attempt.failure,
                         taskset=taskset)
            return
        # Plain failure/kill: retry up to the limit.
        if self._blacklist_enabled:
            executor = self.executors.get(attempt.executor_id)
            if (executor is not None
                    and executor.tasks_failed >= self._blacklist_threshold
                    and attempt.executor_id not in self.blacklisted):
                if self._has_other_live_executor(executor):
                    self.blacklisted.add(attempt.executor_id)
                    self._record(EV_EXECUTOR_BLACKLISTED,
                                 executor=attempt.executor_id,
                                 failures=executor.tasks_failed)
                else:
                    # Blacklisting the last live executor would leave
                    # every pending task set unschedulable (deadlock);
                    # keep it and let per-task retry accounting decide.
                    self._record(EV_BLACKLIST_SUPPRESSED,
                                 executor=attempt.executor_id,
                                 failures=executor.tasks_failed)
        count = taskset.failure_counts.get(partition, 0) + 1
        taskset.failure_counts[partition] = count
        if count >= self._max_failures:
            taskset.zombie = True
            self.tasksets.remove(taskset)
            self._notify("on_taskset_failed",
                taskset,
                f"task {attempt.describe()} failed {count} times: "
                f"{attempt.failure}",
                taskset=taskset)
            return
        if not taskset.zombie:
            taskset.requeue(partition)
            taskset.pending_since[partition] = self.env.now

    def _invalidate_unreachable_outputs(self, shuffle_id: int) -> None:
        """Spark's ``unregisterMapOutput`` on fetch failure: drop map
        outputs whose serving executor is gone (drained or lost), so the
        resubmitted map stage actually recomputes them. Backends whose
        outputs survive executor loss keep every registration."""
        if self.shuffle_backend.outputs_survive_executor_loss:
            return
        for status in self.map_output_tracker.statuses(shuffle_id):
            executor = self.executors.get(status.executor_id)
            if executor is not None and executor.host_alive:
                continue
            lost = self.map_output_tracker.remove_outputs_on_executor(
                status.executor_id)
            if lost:
                self._record(EV_MAP_OUTPUTS_LOST,
                             executor=status.executor_id, count=len(lost))

    def _has_other_live_executor(self, executor: Executor) -> bool:
        """True if any *other* registered, alive, non-blacklisted executor
        could still take tasks."""
        for other in self.executors.values():
            if other is executor:
                continue
            if other.executor_id in self.blacklisted:
                continue
            if other.state is ExecutorState.REGISTERED and other.host_alive:
                return True
        return False

    # ------------------------------------------------------------------

    def remove_taskset(self, taskset: TaskSet) -> None:
        """Withdraw a (typically zombie) task set from scheduling."""
        if taskset in self.tasksets:
            self.tasksets.remove(taskset)

    def _record(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(self.env.now, CAT_SCHEDULER, event, **fields)
