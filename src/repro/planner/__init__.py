"""Model-based FaaS/IaaS split planning (the §6 open control problem).

The paper fixes each scenario's Lambda/VM split by hand; this package
turns that split into a decision made by a calibrated model:

- :mod:`repro.planner.model` — per-workload stage profiles measured
  from two cheap probe simulations, fitted into an analytical runtime
  predictor over (vm_cores, lambda_cores, segue point);
- :mod:`repro.planner.cost` — prices any candidate split with the real
  billing rules (60 s VM minimum, GB-second Lambda rounding);
- :mod:`repro.planner.planner` — searches candidate splits against an
  SLO and returns a ranked :class:`~repro.planner.planner.SplitPlan`;
- :mod:`repro.planner.planned` — executes a chosen split as an
  ``ss_planned`` :class:`~repro.experiments.spec.ExperimentSpec` and
  closes the calibration loop (``planner.predicted_*`` vs
  ``planner.actual_*`` in ``RunRecord.metrics``);
- :mod:`repro.planner.policy` — the online ``PlannerPolicy`` consulted
  by :class:`~repro.cluster.apps.AppManager` at job admission.
"""

from repro.planner.cost import CostModel
from repro.planner.model import (
    PerformanceModel,
    SplitCandidate,
    StageProfile,
    WorkloadProfile,
    build_profile,
)
from repro.planner.planner import PlanOutcome, PlannedCandidate, SplitPlan, SplitPlanner

__all__ = [
    "CostModel",
    "PerformanceModel",
    "PlanOutcome",
    "PlannedCandidate",
    "SplitCandidate",
    "SplitPlan",
    "SplitPlanner",
    "StageProfile",
    "WorkloadProfile",
    "build_profile",
]
