"""Reproducible named random-number streams.

Every stochastic component of the simulation (VM boot times, Lambda cold
starts, task service-time jitter, arrival processes, ...) draws from its
own named stream so that changing one component's draw count does not
perturb any other component — a standard variance-reduction / repeatability
technique in discrete-event simulation.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams.

    Streams are keyed by name. The same ``(seed, name)`` pair always
    yields an identical stream, independent of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            # Derive a child seed from the master seed and the stream name.
            child = zlib.crc32(name.encode("utf-8"))
            generator = np.random.default_rng(np.random.SeedSequence([self._seed, child]))
            self._streams[name] = generator
        return generator

    def lognormal_around(self, name: str, mean: float, cv: float) -> float:
        """Draw a lognormal sample with the given mean and coefficient of
        variation — the workhorse distribution for latencies in this
        reproduction (strictly positive, right-skewed).
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative, got {cv}")
        if cv == 0:
            return mean
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self.stream(name).lognormal(mu, np.sqrt(sigma2)))

    def uniform_jitter(self, name: str, value: float, fraction: float) -> float:
        """Return ``value`` multiplied by U(1-fraction, 1+fraction)."""
        if not 0 <= fraction < 1:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        low, high = 1.0 - fraction, 1.0 + fraction
        return float(value * self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential inter-arrival sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))
