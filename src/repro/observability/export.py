"""Trace exporters: JSONL event logs and Chrome-trace (Perfetto) JSON.

Two serialized views of the same event stream:

- the **event log** — one JSON object per :class:`TraceRecord`, payload
  namespaced under ``fields``, keys sorted — is the replayable,
  diff-able artifact (two same-seed runs produce byte-identical files);
- the **Chrome trace** — the ``traceEvents`` JSON that
  https://ui.perfetto.dev (or ``chrome://tracing``) renders — is the
  human-facing Figure-7-style timeline: one process row per resource
  kind, one thread lane per executor, complete ("X") slices per task,
  and instant markers for stage/segue/fault milestones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.observability.categories import (
    CAT_DAG,
    CAT_EXECUTOR,
    CAT_FAULT,
    CAT_SEGUE,
    EV_STAGE_COMPLETE,
    EV_STAGE_SUBMITTED,
    EV_TASK_END,
)
from repro.simulation.tracing import TraceRecord, TraceRecorder

TraceLike = Union[TraceRecorder, Iterable[TraceRecord]]

#: Fixed process ids per resource kind, so lanes are stable across runs.
_KIND_PIDS = {"vm": 1, "lambda": 2}
#: Everything that is not a per-executor slice lands on this process.
_CONTROL_PID = 0


def _records(trace: TraceLike) -> List[TraceRecord]:
    if isinstance(trace, TraceRecorder):
        return trace.records
    return list(trace)


# ---------------------------------------------------------------------------
# Event log (JSONL)
# ---------------------------------------------------------------------------

def event_log_dicts(trace: TraceLike) -> List[Dict[str, Any]]:
    """Records as envelope dicts: ``{time, category, name, fields}``."""
    return [{"time": r.time, "category": r.category, "name": r.name,
             "fields": dict(r.fields)} for r in _records(trace)]


def save_event_log(trace: TraceLike, path: str) -> int:
    """Write the event log as JSONL; returns the row count.

    Keys are sorted and floats use Python's shortest-repr, so the output
    is byte-identical for byte-identical event streams.
    """
    rows = event_log_dicts(trace)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=str) + "\n")
    return len(rows)


def load_event_log(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL event log back into envelope dicts."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ---------------------------------------------------------------------------
# Chrome trace (Perfetto)
# ---------------------------------------------------------------------------

def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(trace: TraceLike) -> Dict[str, Any]:
    """Project the event stream onto the Chrome-trace JSON schema.

    Task slices are emitted from ``task_end`` records (whose ``duration``
    field closes the span); stage, segue, and fault milestones become
    global instant events.
    """
    events: List[Dict[str, Any]] = []
    #: executor id -> tid, first-seen order within its kind.
    tids: Dict[str, int] = {}
    seen_pids = set()

    def tid_for(executor: str, pid: int) -> int:
        if executor not in tids:
            tids[executor] = len(tids) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tids[executor],
                           "args": {"name": executor}})
        return tids[executor]

    def pid_for(kind: str) -> int:
        pid = _KIND_PIDS.get(kind, _CONTROL_PID)
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0,
                           "args": {"name": f"{kind} executors"}})
        return pid

    for rec in _records(trace):
        if rec.category == CAT_EXECUTOR and rec.name == EV_TASK_END:
            duration = float(rec.get("duration", 0.0))
            executor = str(rec.get("executor", "?"))
            pid = pid_for(str(rec.get("kind", "vm")))
            events.append({
                "ph": "X",
                "name": str(rec.get("task", "task")),
                "cat": rec.category,
                "ts": _us(rec.time - duration),
                "dur": _us(duration),
                "pid": pid,
                "tid": tid_for(executor, pid),
                "args": dict(rec.fields),
            })
        elif ((rec.category == CAT_DAG
               and rec.name in (EV_STAGE_SUBMITTED, EV_STAGE_COMPLETE))
              or rec.category in (CAT_SEGUE, CAT_FAULT)):
            events.append({
                "ph": "i",
                "s": "g",
                "name": f"{rec.category}:{rec.name}",
                "cat": rec.category,
                "ts": _us(rec.time),
                "pid": _CONTROL_PID,
                "tid": 0,
                "args": dict(rec.fields),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: TraceLike, path: str) -> int:
    """Write the Perfetto-loadable JSON; returns the event count."""
    payload = chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, default=str)
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# Serve spans: host wall-clock + sim-time on one timeline
# ---------------------------------------------------------------------------

#: Serve-side spans (ServeTracer, host wall clock) render on this
#: process row; sim-time events stamped with the job's trace id render
#: on the next one. One Perfetto view, two clearly-labeled clocks.
_HOST_SPAN_PID = 10
_SIM_EVENT_PID = 11


def spans_chrome_trace(spans: Sequence[Mapping[str, Any]],
                       sim_events: Optional[
                           Sequence[Mapping[str, Any]]] = None
                       ) -> Dict[str, Any]:
    """Merge a job's serve spans with its sim-time events.

    ``spans`` are :class:`~repro.observability.serve_obs.Span` dicts
    (host wall seconds since serve start); ``sim_events`` are hub
    envelope dicts (``{time, category, name, fields}``, simulated
    seconds) — events the driver stamped with the trace id via the
    EventBus context. Both clocks start near zero, so one timeline
    shows cause (wall-clock control plane, pid 10) above effect
    (sim-time cluster activity, pid 11) without rebasing either.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": _HOST_SPAN_PID,
         "tid": 0, "args": {"name": "serve (host wall clock)"}},
    ]
    tids: Dict[str, int] = {}
    for span in spans:
        trace_id = str(span.get("trace_id", "?"))
        if trace_id not in tids:
            tids[trace_id] = len(tids) + 1
            events.append({"ph": "M", "name": "thread_name",
                           "pid": _HOST_SPAN_PID, "tid": tids[trace_id],
                           "args": {"name": f"trace {trace_id}"}})
        tid = tids[trace_id]
        start = float(span.get("start_s") or 0.0)
        end = span.get("end_s")
        args = {"span_id": span.get("span_id"),
                "parent_span_id": span.get("parent_span_id"),
                "status": span.get("status"),
                **dict(span.get("attrs") or {})}
        if end is not None and float(end) > start:
            events.append({"ph": "X", "name": str(span.get("name")),
                           "cat": "trace", "ts": _us(start),
                           "dur": _us(float(end) - start),
                           "pid": _HOST_SPAN_PID, "tid": tid,
                           "args": args})
        else:
            events.append({"ph": "i", "s": "t",
                           "name": str(span.get("name")), "cat": "trace",
                           "ts": _us(start), "pid": _HOST_SPAN_PID,
                           "tid": tid, "args": args})
    if sim_events:
        events.append({"ph": "M", "name": "process_name",
                       "pid": _SIM_EVENT_PID, "tid": 0,
                       "args": {"name": "cluster (sim clock)"}})
        for rec in sim_events:
            events.append({
                "ph": "i", "s": "t",
                "name": f"{rec.get('category')}:{rec.get('name')}",
                "cat": str(rec.get("category")),
                "ts": _us(float(rec.get("time", 0.0))),
                "pid": _SIM_EVENT_PID, "tid": 1,
                "args": dict(rec.get("fields") or {}),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_spans_chrome_trace(spans: Sequence[Mapping[str, Any]],
                            path: str,
                            sim_events: Optional[
                                Sequence[Mapping[str, Any]]] = None
                            ) -> int:
    """Write the merged serve-span timeline; returns the event count."""
    payload = spans_chrome_trace(spans, sim_events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, default=str)
    return len(payload["traceEvents"])
