"""Service-plane fault tolerance: retries, deadlines, circuit breaking.

The simulation has had a fault model since the resilience PR
(:mod:`repro.simulation.faults`), but the long-lived ``repro serve``
control plane itself used to fail open: a worker-thread crash lost the
job, a wedged sim driver hung every ``?wait=`` client, and nothing
bounded how long a job could sit in the system. This module is the
service-side counterpart — small, dependency-free mechanisms the
:class:`~repro.api.service.ServeRuntime` composes:

- :func:`deterministic_jitter` — seeded, hash-derived jitter so backoff
  and ``Retry-After`` spreading never touches ambient ``random`` (the
  replayability lint bans it) and never synchronizes client retry
  storms: the same key always yields the same offset, different keys
  spread uniformly.
- :class:`RetryPolicy` — bounded retries with exponential backoff plus
  that deterministic jitter, keyed by job id.
- :class:`CircuitBreaker` — the classic closed/open/half-open machine
  wrapped around the Lambda-bridge path: consecutive
  ``LambdaInvokeError``/``LambdaThrottledError`` failures open it, an
  open breaker fast-fails invocations (the pool degrades to VM-only
  admission), and after a cooldown a half-open probe decides whether to
  close again.
- Transient-error classification (:func:`is_transient`,
  :class:`TransientJobError`, :class:`WorkerCrashError`) shared by the
  retry path and the chaos harness.
- :func:`run_chaos` — the chaos harness behind ``repro chaos`` and
  ``benchmarks/bench_chaos.py``: drives seeded
  :class:`~repro.simulation.faults.FaultPlan` storms and service-level
  faults (worker-thread kills, sim-driver stalls) against a live
  :class:`~repro.api.service.ServeRuntime` and reports recovery-time
  and availability metrics.

Wall-clock note: the breaker cooldown, retry backoffs and chaos
timings are host-side quantities (this layer serves real HTTP
traffic), so this module is on the lint's wall-clock exemption list —
nothing here feeds simulated behavior, and every *random* quantity is
hash-derived, never drawn.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "deterministic_jitter", "RetryPolicy",
    "TransientJobError", "WorkerCrashError", "is_transient",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
    "CircuitBreaker", "run_chaos", "CHAOS_DEFAULTS",
]


# ---------------------------------------------------------------------------
# Deterministic jitter
# ---------------------------------------------------------------------------

def deterministic_jitter(key: str, salt: str = "") -> float:
    """A uniform-looking fraction in ``[0, 1)`` derived from ``key``.

    SHA-256 of ``key:salt`` — stable across processes and runs (unlike
    ``hash()``, which is salted per interpreter), so the same job id
    always backs off by the same amount while distinct ids spread out.
    """
    digest = hashlib.sha256(f"{key}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def retry_after_s(key: str, lo: float = 0.5, hi: float = 2.0) -> float:
    """A deterministic ``Retry-After`` for a shed submission.

    Derived from the submission's identity rather than ``random`` so
    that (a) the replayability lint holds and (b) a burst of rejected
    clients spreads its retries across ``[lo, hi)`` instead of
    stampeding back in lockstep after a constant hint.
    """
    return round(lo + deterministic_jitter(key, "retry-after")
                 * (hi - lo), 3)


# ---------------------------------------------------------------------------
# Transient-error classification
# ---------------------------------------------------------------------------

class TransientJobError(RuntimeError):
    """An error the service may retry (bounded by the job's policy)."""


class WorkerCrashError(TransientJobError):
    """A worker thread died mid-job (real crash or chaos-injected)."""


def is_transient(exc: BaseException) -> bool:
    """Should the service retry after this worker-boundary error?

    Transient: our own :class:`TransientJobError` family, the Lambda
    provider's invoke/throttle errors, and the host-level flakes a real
    worker pool sees (connection resets, timeouts, I/O hiccups).
    Anything else — a ``SchemaError``, a ``TypeError`` in a scenario
    body — is deterministic and retrying it would just burn a slot.
    """
    from repro.cloud.lambda_fn import LambdaInvokeError
    return isinstance(exc, (TransientJobError, LambdaInvokeError,
                            ConnectionError, TimeoutError, OSError))


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + deterministic jitter.

    ``max_attempts`` counts *executions* (1 = never retry). The backoff
    before attempt ``n+1`` is ``base * multiplier**(n-1)`` capped at
    ``max_backoff_s``, plus up to ``jitter_frac`` of itself derived
    from the job key — so two jobs failing at the same instant retry at
    different instants, reproducibly.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff bounds cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1.0, got {self.multiplier}")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}")

    def should_retry(self, attempts: int) -> bool:
        """May another execution follow ``attempts`` completed ones?"""
        return attempts < self.max_attempts

    def backoff_s(self, key: str, attempts: int) -> float:
        """Seconds to wait before the attempt after ``attempts``."""
        base = min(self.max_backoff_s,
                   self.base_backoff_s
                   * self.multiplier ** max(0, attempts - 1))
        jitter = (deterministic_jitter(key, f"retry-{attempts}")
                  * self.jitter_frac * base)
        return base + jitter


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"
BREAKER_STATES = (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


class CircuitBreaker:
    """Closed/open/half-open breaker with an injectable clock.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures
    open it. Open: :meth:`allow` returns False (callers fast-fail —
    the serve runtime maps this to VM-only admission) until
    ``cooldown_s`` has elapsed, then the breaker turns half-open.
    Half-open: exactly one probe call is allowed in flight; its success
    closes the breaker, its failure re-opens it (restarting the
    cooldown).

    ``clock`` defaults to the host monotonic clock; tests inject a fake
    so the state machine is exercised deterministically.
    ``on_transition(old, new)`` fires outside the lock on every state
    change — the serve runtime uses it to emit breaker-state events and
    bump ``serve.breaker.*`` metrics.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str], None]] = None) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        #: Lifetime transition counts (monotone; readable without lock).
        self.opens = 0
        self.closes = 0
        self.fast_fails = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        """Current state, promoting open → half-open once cooled."""
        if (self._state == BREAKER_OPEN
                and self._clock() - self._opened_at >= self.cooldown_s):
            self._transition_locked(BREAKER_HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May one call proceed right now?"""
        notify = None
        with self._lock:
            state = self._state_locked()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_OPEN:
                self.fast_fails += 1
                return False
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                self.fast_fails += 1
                return False
            self._probe_in_flight = True
            return True
        del notify  # appease linters; transitions notify in-place

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state == BREAKER_HALF_OPEN:
                self._transition_locked(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == BREAKER_HALF_OPEN:
                self._transition_locked(BREAKER_OPEN)
                return
            if self._state == BREAKER_CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition_locked(BREAKER_OPEN)

    def _transition_locked(self, new: str) -> None:
        old, self._state = self._state, new
        if new == BREAKER_OPEN:
            self.opens += 1
            self._opened_at = self._clock()
            self._consecutive_failures = 0
        elif new == BREAKER_CLOSED:
            self.closes += 1
            self._opened_at = None
        self._probe_in_flight = False
        if self._on_transition is not None and old != new:
            self._on_transition(old, new)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "closes": self.closes,
                "fast_fails": self.fast_fails,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
            }


# ---------------------------------------------------------------------------
# Chaos harness
# ---------------------------------------------------------------------------

#: Default shape of one chaos run (kept small enough for smoke runs to
#: finish in seconds; the headline bench scales n_jobs up).
CHAOS_DEFAULTS: Dict[str, Any] = {
    "plan": "throttle_storm",
    "seed": 0,
    "n_jobs": 12,
    "kill_workers": 2,
    "stall_driver_s": 0.2,
    "lambda_probes": 8,
    "storm_duration_s": 2.0,
}


@dataclass
class _Phase:
    """One timed chaos phase for the report."""

    name: str
    started_s: float
    finished_s: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)


def run_chaos(plan: str = "throttle_storm", seed: int = 0,
              n_jobs: int = 12, kill_workers: int = 2,
              stall_driver_s: float = 0.2, lambda_probes: int = 8,
              storm_duration_s: float = 2.0,
              state_dir: Optional[str] = None,
              config=None) -> Dict[str, Any]:
    """Drive one seeded chaos scenario against a live ServeRuntime.

    Phases (all wall-clock timed into the report):

    1. **Load** — submit ``n_jobs`` small spec jobs (deterministic
       sparkpi specs, seeds ``0..n-1``) plus pooled arrivals so
       simulated time advances for the armed
       :class:`~repro.simulation.faults.FaultPlan`.
    2. **Storm** — arm the named chaos plan against the shared cluster
       and hammer the Lambda bridge with ``lambda_probes`` scale
       requests; under a throttle storm the breaker must open (VM-only
       admission) and, once the storm lifts, recover to closed.
    3. **Kill** — mark ``kill_workers`` of the spec jobs for an
       injected :class:`WorkerCrashError` on their first execution;
       the retry layer must bring every one of them to ``completed``.
    4. **Stall** — hold the sim lock for ``stall_driver_s`` (a wedged
       driver); admission and ``/jobs`` reads must keep answering.
    5. **Settle** — drain; assert *every* submitted job reached a
       terminal state (the no-hangs invariant) and collect recovery
       and availability metrics.

    Returns the ``BENCH_chaos.json`` payload. Raises ``AssertionError``
    when a recovery invariant does not hold — chaos runs are tests, not
    just measurements.
    """
    from repro.api import schemas
    from repro.api.service import ServeConfig, ServeRuntime
    from repro.simulation.faults import chaos_plan

    cfg = config or ServeConfig(
        max_concurrent=4, max_queue=max(16, n_jobs + 8), seed=seed,
        pool_cores=4, state_dir=state_dir,
        default_deadline_s=120.0, max_attempts=3,
        retry_base_backoff_s=0.02,
        breaker_failure_threshold=3, breaker_cooldown_s=0.15)
    service = ServeRuntime(cfg).start()
    t0 = time.monotonic()
    phases: List[_Phase] = []
    report: Dict[str, Any] = {
        "plan": plan, "seed": seed, "n_jobs": n_jobs,
        "kill_workers": kill_workers,
        "stall_driver_s": stall_driver_s,
        "lambda_probes": lambda_probes,
        "storm_duration_s": storm_duration_s,
    }

    def now() -> float:
        return round(time.monotonic() - t0, 6)

    def slo_burn() -> Dict[str, float]:
        # SLO burn rates sampled at each phase's end (rolling window) —
        # the per-phase error-budget spend the chaos report commits to.
        return {k: round(v, 6)
                for k, v in service.slo.burn_rates().items()}

    try:
        # -- phase 1: load --------------------------------------------------
        load = _Phase("load", now())
        statuses = []
        rejected = 0
        for i in range(n_jobs):
            payload = {"workload": "sparkpi", "scenario": "spark_R_vm",
                       "seed": i}
            if i % 4 == 3:
                payload = {"workload": "sparkpi", "mode": "pooled",
                           "seed": i}
            try:
                statuses.append(service.submit(payload))
            except Exception:  # noqa: BLE001 - backpressure is data here
                rejected += 1
        load.finished_s = now()
        load.detail = {"accepted": len(statuses), "rejected": rejected,
                       "slo_burn": slo_burn()}
        phases.append(load)

        # -- phase 2: throttle storm vs the breaker -------------------------
        storm = _Phase("storm", now())
        service.inject_chaos({"plan": plan, "start_s": 0.0,
                              "duration_s": storm_duration_s})
        opened_at = None
        closed_at = None
        deadline = time.monotonic() + max(30.0, storm_duration_s + 10.0)
        probes = 0
        while time.monotonic() < deadline:
            outcome = service.inject_chaos({"scale_lambda": 1})
            probes += 1
            state = outcome["breaker"]["state"]
            if state == BREAKER_OPEN and opened_at is None:
                opened_at = now()
            if opened_at is not None and state == BREAKER_CLOSED:
                closed_at = now()
                break
            if probes >= lambda_probes and opened_at is None:
                break  # plan without a throttle leg: nothing to open
            time.sleep(0.02)
        storm.finished_s = now()
        storm.detail = {
            "probes": probes,
            "breaker_opened": opened_at is not None,
            "breaker_recovered": closed_at is not None,
            "breaker": service.breaker.snapshot(),
            "slo_burn": slo_burn(),
        }
        phases.append(storm)
        if plan == "throttle_storm":
            assert opened_at is not None, \
                "breaker never opened under the throttle storm"
            assert closed_at is not None, \
                "breaker never recovered to closed after the storm"
            report["breaker_recovery_s"] = round(closed_at - opened_at, 6)

        # -- phase 3: worker kills ------------------------------------------
        # Armed *before* the submissions (and applied under the
        # admission lock) so the crash lands on each job's first
        # execution even when a free slot starts it instantly.
        kill = _Phase("kill", now())
        service.inject_chaos({"crash_next_submissions": kill_workers})
        crash_ids = []
        for i in range(kill_workers):
            status = service.submit(
                {"workload": "sparkpi", "scenario": "spark_R_vm",
                 "seed": 100 + i})
            crash_ids.append(status.job_id)
        kill.finished_s = now()
        kill.detail = {"crashed_jobs": crash_ids, "slo_burn": slo_burn()}
        phases.append(kill)

        # -- phase 4: sim-driver stall --------------------------------------
        stall = _Phase("stall", now())
        service.inject_chaos({"stall_driver_s": stall_driver_s})
        # Admission and reads must answer while the driver is wedged.
        t_read = time.monotonic()
        service.jobs()
        service.admission_stats()
        read_latency_s = time.monotonic() - t_read
        stall.finished_s = now()
        stall.detail = {"read_latency_s": round(read_latency_s, 6),
                        "slo_burn": slo_burn()}
        phases.append(stall)
        assert read_latency_s < max(1.0, stall_driver_s), \
            "admission reads blocked on the stalled sim driver"

        # -- phase 5: settle -------------------------------------------------
        settle = _Phase("settle", now())
        drained = service.drain(timeout=240.0)
        settle.finished_s = now()
        settle.detail = {"slo_burn": slo_burn()}
        phases.append(settle)
        assert drained, "jobs did not drain after chaos"

        finals = service.jobs()
        non_terminal = [s.job_id for s in finals
                        if s.state not in (schemas.JOB_COMPLETED,
                                           schemas.JOB_FAILED)]
        assert not non_terminal, \
            f"jobs stuck in non-terminal states after chaos: {non_terminal}"
        crashed_finals = [s for s in finals if s.job_id in crash_ids]
        for s in crashed_finals:
            assert s.state == schemas.JOB_COMPLETED, \
                f"crashed job {s.job_id} did not recover: {s.error}"
            assert s.attempts >= 2, \
                f"crashed job {s.job_id} was not retried"

        completed = sum(1 for s in finals
                        if s.state == schemas.JOB_COMPLETED)
        failed = sum(1 for s in finals if s.state == schemas.JOB_FAILED)
        submitted = len(finals) + rejected
        retried = sum(1 for s in finals if s.attempts > 1)
        recovery_times = [
            round(s.finished_at - s.started_at, 6) for s in crashed_finals
            if s.finished_at is not None and s.started_at is not None]
        report.update({
            "submitted": submitted,
            "accepted": len(finals),
            "rejected_503": rejected,
            "completed": completed,
            "failed": failed,
            "retried_jobs": retried,
            "availability": round(len(finals) / submitted, 6)
            if submitted else 1.0,
            "completion_rate": round(completed / len(finals), 6)
            if finals else 1.0,
            "crash_recovery_s": recovery_times,
            "metrics": service.cluster.metrics.snapshot(prefix="serve."),
            "phases": [{"name": p.name,
                        "duration_s": round(p.finished_s - p.started_s, 6),
                        **p.detail} for p in phases],
            "total_wall_s": now(),
        })
    finally:
        service.close()

    # -- optional phase 6: crash-restart journal recovery -------------------
    if state_dir is not None:
        report["recovery"] = _crash_restart_recovery(cfg, seed)
    return report


def _crash_restart_recovery(cfg, seed: int) -> Dict[str, Any]:
    """kill -9 + restart: journaled queued jobs must recover exactly
    once. Returns recovery-time/count metrics for the report."""
    from repro.api import schemas
    from repro.api.service import ServeRuntime

    first = ServeRuntime(cfg).start()
    ids = []
    try:
        for i in range(4):
            ids.append(first.submit(
                {"workload": "sparkpi", "scenario": "spark_R_vm",
                 "seed": 200 + seed + i}).job_id)
    finally:
        # As close to kill -9 as an in-process harness gets: no drain,
        # no checkpoint, journal handle dropped mid-flight.
        first.hard_stop()

    t0 = time.monotonic()
    second = ServeRuntime(cfg).start()
    try:
        assert second.drain(timeout=240.0), "recovered jobs did not drain"
        recovery_wall_s = time.monotonic() - t0
        finals = second.jobs()
        recovered = [s for s in finals if s.job_id in ids]
        assert len(finals) == len(ids) == len(recovered), (
            f"duplicate or missing jobs after restart: "
            f"{[s.job_id for s in finals]}")
        terminal = [s for s in recovered
                    if s.state in (schemas.JOB_COMPLETED,
                                   schemas.JOB_FAILED)]
        assert len(terminal) == len(ids), "recovered job left non-terminal"
        return {
            "journaled_jobs": len(ids),
            "recovered_jobs": len(recovered),
            "duplicates": 0,
            "recovery_wall_s": round(recovery_wall_s, 6),
        }
    finally:
        second.close()
