"""Simulated IaaS virtual machines (EC2 m4-family instances).

A VM goes ``REQUESTED -> PROVISIONING -> RUNNING -> TERMINATED``. The
provisioning delay is the paper's headline IaaS weakness: ~2 minutes
before a freshly requested instance can host executors (§3). A running VM
exposes per-instance fair-share links for its dedicated EBS channel and
its network interface, and a simple core-accounting API used by the
cluster state.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.cloud.constants import VM_STARTUP_CV, VM_STARTUP_MEAN_S
from repro.cloud.instance_types import InstanceType
from repro.cloud.network import FairShareLink
from repro.observability.categories import (
    CAT_VM,
    EV_REQUESTED,
    EV_RUNNING,
    EV_TERMINATED,
)
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams
    from repro.simulation.tracing import TraceRecorder


class VMState(enum.Enum):
    REQUESTED = "requested"
    PROVISIONING = "provisioning"
    RUNNING = "running"
    TERMINATED = "terminated"


class VirtualMachine:
    """One simulated instance.

    ``ready`` is an event that fires when the VM reaches ``RUNNING``.
    Use :meth:`allocate_cores` / :meth:`release_cores` for scheduling
    accounting; the VM itself does not run tasks (executors do).
    """

    def __init__(
        self,
        env: "Environment",
        name: str,
        itype: InstanceType,
        rng: "RandomStreams",
        trace: Optional["TraceRecorder"] = None,
        boot_delay_s: Optional[float] = None,
        already_running: bool = False,
    ) -> None:
        self.env = env
        self.name = name
        self.itype = itype
        self._rng = rng
        self._trace = trace
        self.state = VMState.REQUESTED
        self.request_time = env.now
        self.running_time: Optional[float] = None
        self.terminate_time: Optional[float] = None
        self._allocated_cores = 0
        self.ready: Event = Event(env)
        #: Fires when the VM is terminated (spot reclaim, scale-down, or
        #: an explicit release) — executors on it are lost at that point.
        self.stopped: Event = Event(env)

        self.ebs_link = FairShareLink(
            env, itype.ebs_bandwidth_bytes_per_s, name=f"{name}/ebs")
        self.net_link = FairShareLink(
            env, itype.network_bandwidth_bytes_per_s, name=f"{name}/net")

        if already_running:
            # Pre-provisioned capacity (the 'r cores available' scenarios).
            self.state = VMState.RUNNING
            self.running_time = env.now
            self.ready.succeed(self)
            self._record(EV_RUNNING, pre_provisioned=True)
        else:
            delay = boot_delay_s
            if delay is None:
                delay = rng.lognormal_around(
                    "vm.boot", VM_STARTUP_MEAN_S, VM_STARTUP_CV)
            env.process(self._boot(delay))
            self._record(EV_REQUESTED, boot_delay=delay)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _boot(self, delay: float):
        self.state = VMState.PROVISIONING
        yield self.env.timeout(delay)
        if self.state is VMState.TERMINATED:
            return  # terminated while provisioning
        self.state = VMState.RUNNING
        self.running_time = self.env.now
        self.ready.succeed(self)
        self._record(EV_RUNNING)

    def terminate(self) -> None:
        """Release the instance back to the provider."""
        if self.state is VMState.TERMINATED:
            return
        previous = self.state
        self.state = VMState.TERMINATED
        self.terminate_time = self.env.now
        self.stopped.succeed(self)
        self._record(EV_TERMINATED, from_state=previous.value)

    @property
    def state(self) -> VMState:
        return self._state

    @state.setter
    def state(self, value: VMState) -> None:
        # ``is_running`` is maintained as a plain attribute because the
        # scheduler's free-executor scans and the shuffle fetch loop
        # read it thousands of times per run; transitions are rare.
        self._state = value
        self.is_running = value is VMState.RUNNING

    @property
    def uptime(self) -> float:
        """Seconds the VM has been (or was) running."""
        if self.running_time is None:
            return 0.0
        end = self.terminate_time if self.terminate_time is not None else self.env.now
        return max(0.0, end - self.running_time)

    # ------------------------------------------------------------------
    # Core accounting
    # ------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.itype.vcpus

    @property
    def free_cores(self) -> int:
        return self.itype.vcpus - self._allocated_cores

    @property
    def allocated_cores(self) -> int:
        return self._allocated_cores

    def allocate_cores(self, n: int) -> None:
        """Claim ``n`` cores for executors; raises if unavailable."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not self.is_running:
            raise RuntimeError(f"{self.name} is not running (state={self.state})")
        if n > self.free_cores:
            raise RuntimeError(
                f"{self.name}: requested {n} cores but only {self.free_cores} free")
        self._allocated_cores += n

    def release_cores(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if n > self._allocated_cores:
            raise RuntimeError(
                f"{self.name}: releasing {n} cores but only "
                f"{self._allocated_cores} allocated")
        self._allocated_cores -= n

    # ------------------------------------------------------------------

    def _record(self, event: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.env.now, CAT_VM, event, vm=self.name,
                               itype=self.itype.name, **fields)

    def __repr__(self) -> str:
        return f"<VM {self.name} {self.itype.name} {self.state.value}>"
