"""Tests for multi-core executors (footnote 7's generalization)."""

import pytest

from tests.spark.helpers import MiniCluster, single_stage_rdd


def test_multicore_executor_runs_tasks_concurrently():
    cluster = MiniCluster()
    vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
    cluster.driver.add_vm_executor(vm, cores=4)
    rdd = single_stage_rdd(cluster.builder, tasks=8, seconds=10.0)
    result = cluster.run_job(rdd)
    # 8 tasks over 4 concurrent slots: two 10s waves.
    assert result.duration == pytest.approx(20.0, rel=0.05)


def test_multicore_equivalent_to_same_core_count_single():
    multi = MiniCluster()
    vm = multi.provider.request_vm("m4.4xlarge", already_running=True)
    multi.driver.add_vm_executor(vm, cores=4)
    t_multi = multi.run_job(
        single_stage_rdd(multi.builder, tasks=16, seconds=5.0)).duration

    singles = MiniCluster()
    singles.vm_executors(4)
    t_single = singles.run_job(
        single_stage_rdd(singles.builder, tasks=16, seconds=5.0)).duration
    assert t_multi == pytest.approx(t_single, rel=0.05)


def test_multicore_claims_cores_on_vm():
    cluster = MiniCluster()
    vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
    cluster.driver.add_vm_executor(vm, cores=3)
    assert vm.free_cores == 13


def test_multicore_memory_scales_with_cores():
    cluster = MiniCluster()
    vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
    one = cluster.driver.add_vm_executor(vm, cores=1)
    four = cluster.driver.add_vm_executor(vm, cores=4)
    assert four.memory_bytes == pytest.approx(4 * one.memory_bytes)


def test_multicore_concurrent_working_sets_share_heap():
    """Concurrent tasks on one multi-core executor contend for its heap:
    GC pressure reflects the *sum* of in-flight working sets, so the
    equally-provisioned pooled and private configurations behave alike
    (same aggregate pressure ratio)."""
    GB = 1024 ** 3

    def run(multicore):
        cluster = MiniCluster()
        vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
        if multicore:
            cluster.driver.add_vm_executor(vm, cores=2, memory_bytes=4 * GB)
        else:
            cluster.driver.add_vm_executor(vm, memory_bytes=2 * GB)
            cluster.driver.add_vm_executor(vm, memory_bytes=2 * GB)
        rdd = cluster.builder.source("hungry", partitions=2,
                                     compute_seconds=10.0,
                                     working_set_bytes=1.5 * GB)
        return cluster.run_job(rdd).duration

    pooled = run(True)   # 3.0 GB in flight / 2.4 GB usable = 1.25
    private = run(False)  # 1.5 GB / 1.2 GB usable each = 1.25
    assert pooled > 10.0  # pressure slows both beyond raw compute
    assert pooled == pytest.approx(private, rel=0.15)


def test_multicore_validation():
    cluster = MiniCluster()
    vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
    with pytest.raises(ValueError):
        cluster.driver.add_vm_executor(vm, cores=0)


def test_running_tasks_counter():
    cluster = MiniCluster()
    vm = cluster.provider.request_vm("m4.4xlarge", already_running=True)
    executor = cluster.driver.add_vm_executor(vm, cores=4)
    rdd = single_stage_rdd(cluster.builder, tasks=4, seconds=10.0)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=5)
    assert executor.running_tasks == 4
    assert not executor.is_free
    cluster.env.run(until=job.done)
    assert executor.is_idle
