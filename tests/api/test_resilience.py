"""Units for the service-plane fault-tolerance primitives.

Everything here is deterministic by construction: jitter is
hash-derived (never ``random``), and the circuit breaker takes an
injectable clock so its state machine is exercised without sleeping.
"""

import pytest

from repro.api import resilience
from repro.api.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
    TransientJobError,
    WorkerCrashError,
    deterministic_jitter,
    is_transient,
    retry_after_s,
)
from repro.cloud.lambda_fn import LambdaInvokeError, LambdaThrottledError


# ---------------------------------------------------------------------------
# Deterministic jitter
# ---------------------------------------------------------------------------

def test_jitter_is_stable_and_in_range():
    values = [deterministic_jitter(f"job-{i:06d}") for i in range(200)]
    assert values == [deterministic_jitter(f"job-{i:06d}")
                      for i in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)


def test_jitter_spreads_distinct_keys():
    values = sorted(deterministic_jitter(f"job-{i:06d}")
                    for i in range(200))
    # Uniform-looking: both halves of [0, 1) are populated and there
    # are no mass collisions.
    assert values[0] < 0.25 and values[-1] > 0.75
    assert len(set(values)) == 200


def test_jitter_salt_decorrelates():
    assert (deterministic_jitter("job-000001", "retry-1")
            != deterministic_jitter("job-000001", "retry-2"))


def test_retry_after_bounds_and_determinism():
    values = {retry_after_s(f"k{i}") for i in range(100)}
    assert all(0.5 <= v < 2.0 for v in values)
    assert len(values) > 50  # spread, not a constant hint
    assert retry_after_s("k1") == retry_after_s("k1")


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="multiplier"):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError, match="jitter_frac"):
        RetryPolicy(jitter_frac=1.5)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(base_backoff_s=-1.0)


def test_retry_policy_bounded_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1)
    assert policy.should_retry(2)
    assert not policy.should_retry(3)
    assert not RetryPolicy(max_attempts=1).should_retry(1)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=10, base_backoff_s=0.1,
                         multiplier=2.0, max_backoff_s=0.5,
                         jitter_frac=0.0)
    waits = [policy.backoff_s("job-000001", n) for n in range(1, 6)]
    assert waits[0] == pytest.approx(0.1)
    assert waits[1] == pytest.approx(0.2)
    assert waits[2] == pytest.approx(0.4)
    assert waits[3] == pytest.approx(0.5)  # capped
    assert waits[4] == pytest.approx(0.5)


def test_backoff_jitter_is_deterministic_per_key():
    policy = RetryPolicy(base_backoff_s=0.1, jitter_frac=0.5)
    a1 = policy.backoff_s("job-000001", 1)
    a2 = policy.backoff_s("job-000001", 1)
    b = policy.backoff_s("job-000002", 1)
    assert a1 == a2
    assert a1 != b  # two jobs failing together retry apart
    assert 0.1 <= a1 <= 0.1 * 1.5


# ---------------------------------------------------------------------------
# Transient classification
# ---------------------------------------------------------------------------

def test_transient_classification():
    assert is_transient(TransientJobError("x"))
    assert is_transient(WorkerCrashError("x"))
    assert is_transient(LambdaInvokeError("x"))
    assert is_transient(LambdaThrottledError("x"))
    assert is_transient(ConnectionError("x"))
    assert is_transient(TimeoutError("x"))
    assert not is_transient(ValueError("deterministic"))
    assert not is_transient(TypeError("deterministic"))


# ---------------------------------------------------------------------------
# CircuitBreaker (fake clock — no sleeps)
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    transitions = []
    breaker = CircuitBreaker(
        failure_threshold=threshold, cooldown_s=cooldown, clock=clock,
        on_transition=lambda old, new: transitions.append((old, new)))
    return breaker, clock, transitions


def test_breaker_validation():
    with pytest.raises(ValueError, match="failure_threshold"):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError, match="cooldown_s"):
        CircuitBreaker(cooldown_s=0.0)


def test_breaker_opens_after_consecutive_failures_only():
    breaker, _, transitions = _breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # success resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert transitions == [(BREAKER_CLOSED, BREAKER_OPEN)]
    assert breaker.opens == 1


def test_open_breaker_fast_fails_until_cooldown():
    breaker, clock, _ = _breaker(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert not breaker.allow()
    assert not breaker.allow()
    assert breaker.fast_fails == 2
    clock.advance(9.9)
    assert not breaker.allow()
    clock.advance(0.2)  # cooled: half-open, one probe allowed
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()


def test_half_open_allows_exactly_one_probe():
    breaker, clock, _ = _breaker(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # concurrent call fast-fails
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_half_open_probe_failure_reopens():
    breaker, clock, transitions = _breaker(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    # The cooldown restarted at the re-open.
    assert not breaker.allow()
    clock.advance(1.5)
    assert breaker.state == BREAKER_HALF_OPEN
    assert transitions == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
    ]


def test_breaker_snapshot_shape():
    breaker, _, _ = _breaker(threshold=2, cooldown=5.0)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap == {
        "state": BREAKER_CLOSED, "consecutive_failures": 1,
        "opens": 0, "closes": 0, "fast_fails": 0,
        "failure_threshold": 2, "cooldown_s": 5.0,
    }


def test_chaos_defaults_cover_run_chaos_signature():
    import inspect
    params = inspect.signature(resilience.run_chaos).parameters
    for key in resilience.CHAOS_DEFAULTS:
        assert key in params, key
