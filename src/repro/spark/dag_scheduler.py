"""The DAG scheduler: stages, submission order, and fault recovery.

Faithful to Spark's ``DAGScheduler`` at the level the paper cares about:

- a job's lineage is cut into stages at shuffle boundaries; a stage's
  narrow chain runs pipelined in one task per partition;
- a stage is submitted once its parents' shuffle outputs are complete in
  the :class:`~repro.spark.shuffle.MapOutputTracker`;
- a fetch failure zombifies the failing stage attempt, re-runs the parent
  map stage's *missing* partitions, then resubmits the failed stage —
  the "execution roll-back ... cascading recomputations" (§4.3) that
  SplitServe's graceful drain exists to avoid;
- a task that exhausts its retries fails the job.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.observability.categories import (
    CAT_DAG,
    EV_EXECUTOR_LOST,
    EV_FETCH_FAILED,
    EV_JOB_COMPLETE,
    EV_JOB_FAILED,
    EV_JOB_SUBMITTED,
    EV_STAGE_COMPLETE,
    EV_STAGE_OUTPUTS_LOST,
    EV_STAGE_SUBMITTED,
)
from repro.simulation.events import Event
from repro.spark.rdd import RDD, ShuffleDependency
from repro.spark.shuffle import FetchFailedError
from repro.spark.task import PipelineStep, TaskAttempt, TaskSpec
from repro.spark.task_scheduler import (
    SchedulerListener,
    TaskScheduler,
    TaskSet,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.simulation.tracing import TraceRecorder


class JobFailedError(RuntimeError):
    """The job could not complete (a stage aborted)."""


class Stage:
    """One stage: the narrow pipeline ending at ``rdd``.

    ``out_dep`` is the outgoing shuffle dependency for a shuffle-map
    stage (None for the result stage); ``out_reducers`` is the partition
    count of the consuming RDD.
    """

    def __init__(self, stage_id: int, rdd: RDD,
                 out_dep: Optional[ShuffleDependency] = None,
                 out_reducers: int = 0) -> None:
        self.stage_id = stage_id
        self.rdd = rdd
        self.out_dep = out_dep
        self.out_reducers = out_reducers
        self.parents: List["Stage"] = []
        self.attempts = 0
        #: Result-stage bookkeeping (shuffle stages use the tracker).
        self.result_partitions: Set[int] = set()
        self.first_submit_time: Optional[float] = None
        self.complete_time: Optional[float] = None

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions

    @property
    def is_shuffle_map(self) -> bool:
        return self.out_dep is not None

    @property
    def name(self) -> str:
        kind = "map" if self.is_shuffle_map else "result"
        return f"stage{self.stage_id}({kind}:{self.rdd.name})"

    def __repr__(self) -> str:
        return f"<{self.name} tasks={self.num_tasks}>"


@dataclass
class Job:
    """One submitted action, resolved when its result stage completes."""

    job_id: int
    final_rdd: RDD
    submit_time: float
    done: Event
    stages: List[Stage] = field(default_factory=list)
    finish_time: Optional[float] = None
    failed: bool = False
    failure_reason: Optional[str] = None
    task_attempts: List[TaskAttempt] = field(default_factory=list)
    failed_attempts: List[TaskAttempt] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def stage_summaries(self) -> List[dict]:
        """Per-stage timing: submit/complete times and task counts, in
        completion order (the Figure 7 stage axis as data)."""
        rows = []
        for stage in self.stages:
            rows.append({
                "stage": stage.name,
                "tasks": stage.num_tasks,
                "submitted_at": stage.first_submit_time,
                "completed_at": stage.complete_time,
                "duration": (None if stage.complete_time is None
                             or stage.first_submit_time is None
                             else stage.complete_time - stage.first_submit_time),
                "attempts": stage.attempts,
            })
        rows.sort(key=lambda r: (r["completed_at"] is None,
                                 r["completed_at"]))
        return rows


class DAGScheduler(SchedulerListener):
    """Owns stage construction and drives the task scheduler."""

    def __init__(self, env: "Environment", task_scheduler: TaskScheduler,
                 trace: Optional["TraceRecorder"] = None,
                 exclusive: bool = True) -> None:
        self.env = env
        self.task_scheduler = task_scheduler
        self.trace = trace
        if exclusive:
            task_scheduler.listener = self
        #: App handle for pooled scheduling (set by the cluster layer);
        #: tagged onto every submitted taskset so a shared scheduler can
        #: group tasksets by application for fair-share ordering.
        self.schedulable: Optional[object] = None
        self._stage_ids = itertools.count()
        self._job_ids = itertools.count()
        self._shuffle_stage_by_id: Dict[int, Stage] = {}
        self._stage_by_id: Dict[int, Stage] = {}
        self._waiting: Set[Stage] = set()
        self._running: Set[Stage] = set()
        self._active_job: Optional[Job] = None
        self._max_stage_attempts = int(
            task_scheduler.conf.get("spark.stage.maxConsecutiveAttempts"))
        #: Optional hook fired when an executor finishes draining —
        #: SplitServe uses it to release (and bill) the Lambda container
        #: behind a drained executor.
        self.executor_drained_callback = None

    def on_executor_drained(self, executor) -> None:
        if self.executor_drained_callback is not None:
            self.executor_drained_callback(executor)

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------

    def submit_job(self, final_rdd: RDD) -> Job:
        """Submit an action on ``final_rdd``; returns the :class:`Job`
        whose ``done`` event fires with the job (or fails) at the end.

        One job at a time (matching the paper's single-job scenarios).
        """
        if self._active_job is not None and self._active_job.finish_time is None:
            raise RuntimeError("a job is already running")
        job = Job(next(self._job_ids), final_rdd, self.env.now, Event(self.env))
        self._active_job = job
        result_stage = self._create_result_stage(final_rdd)
        job.stages = self._collect_stages(result_stage)
        self._record(EV_JOB_SUBMITTED, job=job.job_id,
                     stages=len(job.stages))
        self._submit_stage(result_stage)
        return job

    def _create_result_stage(self, rdd: RDD) -> Stage:
        stage = Stage(next(self._stage_ids), rdd)
        self._stage_by_id[stage.stage_id] = stage
        stage.parents = [self._get_or_create_shuffle_stage(dep, owner)
                         for owner, dep in self._incoming_deps(rdd)]
        return stage

    def _get_or_create_shuffle_stage(self, dep: ShuffleDependency,
                                     owner: RDD) -> Stage:
        existing = self._shuffle_stage_by_id.get(dep.shuffle_id)
        if existing is not None:
            return existing
        stage = Stage(next(self._stage_ids), dep.parent, out_dep=dep,
                      out_reducers=owner.num_partitions)
        self.task_scheduler.map_output_tracker.register_shuffle(
            dep.shuffle_id, dep.parent.num_partitions)
        self._shuffle_stage_by_id[dep.shuffle_id] = stage
        self._stage_by_id[stage.stage_id] = stage
        stage.parents = [self._get_or_create_shuffle_stage(d, o)
                         for o, d in self._incoming_deps(dep.parent)]
        return stage

    @staticmethod
    def _incoming_deps(rdd: RDD) -> List[Tuple[RDD, ShuffleDependency]]:
        """Shuffle dependencies feeding ``rdd``'s stage (owner, dep)."""
        out = []
        for node in rdd.narrow_ancestry():
            for dep in node.shuffle_deps:
                out.append((node, dep))
        return out

    @staticmethod
    def _collect_stages(result_stage: Stage) -> List[Stage]:
        seen: List[Stage] = []
        seen_ids: Set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen_ids:
                return
            for parent in stage.parents:
                visit(parent)
            seen_ids.add(stage.stage_id)
            seen.append(stage)

        visit(result_stage)
        return seen

    # ------------------------------------------------------------------
    # Stage submission
    # ------------------------------------------------------------------

    def _stage_output_complete(self, stage: Stage) -> bool:
        if stage.is_shuffle_map:
            return self.task_scheduler.map_output_tracker.is_complete(
                stage.out_dep.shuffle_id, stage.num_tasks)
        return len(stage.result_partitions) == stage.num_tasks

    def _submit_stage(self, stage: Stage) -> None:
        if stage in self._running:
            return
        missing_parents = [p for p in stage.parents
                           if not self._stage_output_complete(p)]
        if missing_parents:
            self._waiting.add(stage)
            for parent in missing_parents:
                self._submit_stage(parent)
            return
        self._waiting.discard(stage)
        self._submit_missing_tasks(stage)

    def _submit_missing_tasks(self, stage: Stage) -> None:
        tracker = self.task_scheduler.map_output_tracker
        if stage.is_shuffle_map:
            partitions = tracker.missing_partitions(
                stage.out_dep.shuffle_id, stage.num_tasks)
        else:
            partitions = [p for p in range(stage.num_tasks)
                          if p not in stage.result_partitions]
        if not partitions:
            self._on_stage_complete(stage)
            return
        if stage.first_submit_time is None:
            stage.first_submit_time = self.env.now
        stage.attempts += 1
        if stage.attempts > self._max_stage_attempts:
            self._fail_job(f"{stage.name} exceeded "
                           f"{self._max_stage_attempts} attempts")
            return
        specs = [self._build_spec(stage, p) for p in partitions]
        self._running.add(stage)
        self._record(EV_STAGE_SUBMITTED, stage=stage.name,
                     stage_id=stage.stage_id,
                     attempt=stage.attempts, tasks=len(specs))
        taskset = TaskSet(stage.stage_id, stage.attempts - 1, specs,
                          name=stage.name)
        taskset.listener = self
        taskset.schedulable = self.schedulable
        self.task_scheduler.submit_taskset(taskset)

    def _build_spec(self, stage: Stage, partition: int) -> TaskSpec:
        # Everything except ``partition``, a per-partition compute model,
        # and the kind preference is identical across a stage's tasks
        # (lineage, shuffle volumes, and stage shape are immutable), so
        # the shared parts are resolved once per stage and reused. The
        # pipeline tuple itself is shared too when every RDD's compute
        # cost is a constant — PipelineStep is frozen, so aliasing one
        # tuple across TaskSpecs is safe.
        template = getattr(stage, "_spec_template", None)
        if template is None:
            ancestry = tuple(stage.rdd.narrow_ancestry())
            reads = tuple(
                (dep.shuffle_id, dep.total_bytes / stage.num_tasks)
                for _owner, dep in self._incoming_deps(stage.rdd))
            write = None
            reducers = 0
            if stage.is_shuffle_map:
                write = (stage.out_dep.shuffle_id, stage.out_dep.bytes_per_map)
                reducers = stage.out_reducers
            uniform_pipeline = None
            if all(not callable(rdd._compute) for rdd in ancestry):
                uniform_pipeline = self._stage_pipeline(ancestry, 0)
            template = stage._spec_template = (
                ancestry, reads, write, reducers, uniform_pipeline)
        ancestry, reads, write, reducers, uniform_pipeline = template
        pipeline = (uniform_pipeline if uniform_pipeline is not None
                    else self._stage_pipeline(ancestry, partition))
        sized_for = None
        if stage.rdd.kind_preference is not None:
            sized_for = stage.rdd.kind_preference(partition)
        spec = TaskSpec(stage_id=stage.stage_id, partition=partition,
                        pipeline=pipeline, shuffle_reads=reads,
                        shuffle_write=write, shuffle_write_reducers=reducers,
                        stage_task_count=stage.num_tasks,
                        sized_for=sized_for)
        if uniform_pipeline is not None:
            # Every spec of the stage shares pipeline and shuffle_reads,
            # so the lazily-derived views (suffix sums, cache steps, ...)
            # are identical too: compute them once on the stage's first
            # spec and seed every sibling's cache with the same immutable
            # values. Per-spec recomputation of the suffix sums was a
            # visible slice of stage submission.
            shared = getattr(stage, "_spec_shared", None)
            if shared is None:
                shared = stage._spec_shared = {
                    "total_compute_seconds": spec.total_compute_seconds,
                    "working_set_bytes": spec.working_set_bytes,
                    "total_shuffle_read_bytes": spec.total_shuffle_read_bytes,
                    "cache_steps": spec.cache_steps,
                    "input_bytes_from": spec.input_bytes_from,
                    "compute_seconds_from": spec.compute_seconds_from,
                }
            else:
                spec.__dict__.update(shared)
        return spec

    @staticmethod
    def _stage_pipeline(ancestry, partition: int):
        return tuple(
            PipelineStep(rdd.rdd_id, rdd.name, rdd.compute_seconds(partition),
                         rdd.working_set_bytes, rdd.cached,
                         input_bytes=rdd.input_bytes / rdd.num_partitions)
            for rdd in ancestry)

    # ------------------------------------------------------------------
    # SchedulerListener callbacks
    # ------------------------------------------------------------------

    def on_task_finished(self, attempt: TaskAttempt) -> None:
        job = self._active_job
        if job is not None:
            job.task_attempts.append(attempt)
        stage = self._stage_by_id.get(attempt.spec.stage_id)
        if stage is not None and not stage.is_shuffle_map:
            stage.result_partitions.add(attempt.spec.partition)

    def on_task_failed(self, attempt: TaskAttempt) -> None:
        job = self._active_job
        if job is not None:
            job.failed_attempts.append(attempt)

    def on_taskset_complete(self, taskset: TaskSet) -> None:
        stage = self._stage_by_id.get(taskset.stage_id)
        if stage is None:  # pragma: no cover - defensive
            return
        self._running.discard(stage)
        if not self._stage_output_complete(stage):
            # Outputs were lost while the stage ran (executor death):
            # immediately re-run the missing partitions.
            self._record(EV_STAGE_OUTPUTS_LOST, stage=stage.name)
            self._submit_missing_tasks(stage)
            return
        self._on_stage_complete(stage)

    def _on_stage_complete(self, stage: Stage) -> None:
        self._running.discard(stage)
        stage.complete_time = self.env.now
        self._record(EV_STAGE_COMPLETE, stage=stage.name,
                     stage_id=stage.stage_id)
        if not stage.is_shuffle_map:
            self._finish_job()
            return
        # Wake any waiting stages whose parents are now all complete.
        for waiting in sorted(self._waiting, key=lambda s: s.stage_id):
            if all(self._stage_output_complete(p) for p in waiting.parents):
                self._submit_stage(waiting)

    def on_fetch_failed(self, taskset: TaskSet, attempt: TaskAttempt,
                        error: FetchFailedError) -> None:
        stage = self._stage_by_id.get(taskset.stage_id)
        map_stage = self._shuffle_stage_by_id.get(error.shuffle_id)
        self._record(EV_FETCH_FAILED, stage=stage.name if stage else "?",
                     shuffle=error.shuffle_id)
        self.task_scheduler.remove_taskset(taskset)
        if stage is not None:
            self._running.discard(stage)
            self._waiting.add(stage)
        if map_stage is not None:
            self._submit_stage(map_stage)
        elif stage is not None:  # pragma: no cover - unknown shuffle
            self._fail_job(f"unrecoverable fetch failure in {stage.name}")

    def on_taskset_failed(self, taskset: TaskSet, reason: str) -> None:
        self._fail_job(reason)

    def on_executor_lost(self, executor, reason: str) -> None:
        # Lost map outputs are dropped by the task scheduler; affected
        # stages are re-run lazily when a reducer hits a fetch failure,
        # or eagerly at taskset completion (stage_outputs_lost above).
        self._record(EV_EXECUTOR_LOST, executor=executor.executor_id,
                     reason=reason)

    # ------------------------------------------------------------------
    # Job completion
    # ------------------------------------------------------------------

    def _finish_job(self) -> None:
        job = self._active_job
        if job is None or job.finish_time is not None:  # pragma: no cover
            return
        job.finish_time = self.env.now
        self._record(EV_JOB_COMPLETE, job=job.job_id, duration=job.duration)
        job.done.succeed(job)

    def _fail_job(self, reason: str) -> None:
        job = self._active_job
        if job is None or job.finish_time is not None:  # pragma: no cover
            return
        job.finish_time = self.env.now
        job.failed = True
        job.failure_reason = reason
        self._record(EV_JOB_FAILED, job=job.job_id, reason=reason)
        job.done.fail(JobFailedError(reason))

    def _record(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(self.env.now, CAT_DAG, event, **fields)
