"""Shared-resource primitives: Resource, Container, Store.

These follow the request/grant pattern: ``request()`` (or ``put``/``get``)
returns an :class:`~repro.simulation.events.Event` the caller yields on.
Grants are FIFO. A waiter that gives up (e.g. after an
:class:`~repro.simulation.events.Interrupt`) must call ``cancel()`` on its
pending request so the slot is not granted to a ghost.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment


class _Waiter(Event):
    """Base class for queued requests; adds cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw this request if it has not been granted yet."""
        if not self.triggered:
            self.cancelled = True


class ResourceRequest(_Waiter):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with ``capacity`` identical slots.

    Typical use inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._queue: Deque[ResourceRequest] = deque()
        self._users: List[ResourceRequest] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return sum(1 for req in self._queue if not req.cancelled)

    def request(self) -> ResourceRequest:
        """Queue a claim for one slot; the returned event fires on grant."""
        req = ResourceRequest(self)
        self._queue.append(req)
        self._dispatch()
        return req

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise RuntimeError("release of a request that does not hold a slot") from None
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            req = self._queue[0]
            if req.cancelled:
                self._queue.popleft()
                continue
            if req.triggered:  # pragma: no cover - defensive
                self._queue.popleft()
                continue
            self._queue.popleft()
            self._users.append(req)
            req.succeed()


class ContainerEvent(_Waiter):
    """A pending put or get of some ``amount`` on a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(env)
        self.amount = amount


class Container:
    """A homogeneous bulk store of a continuous quantity (e.g. bytes).

    ``put`` blocks while the container would overflow; ``get`` blocks
    while it holds less than requested.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._puts: Deque[ContainerEvent] = deque()
        self._gets: Deque[ContainerEvent] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerEvent:
        event = ContainerEvent(self.env, amount)
        if amount > self._capacity:
            raise ValueError(f"put of {amount} exceeds capacity {self._capacity}")
        self._puts.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerEvent:
        event = ContainerEvent(self.env, amount)
        self._gets.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._puts:
                put = self._puts[0]
                if put.cancelled:
                    self._puts.popleft()
                    continue
                if self._level + put.amount > self._capacity:
                    break
                self._puts.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            while self._gets:
                get = self._gets[0]
                if get.cancelled:
                    self._gets.popleft()
                    continue
                if get.amount > self._level:
                    break
                self._gets.popleft()
                self._level -= get.amount
                get.succeed()
                progressed = True


class StoreEvent(_Waiter):
    """A pending put or get on a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any = None) -> None:
        super().__init__(env)
        self.item = item


class Store:
    """A FIFO store of discrete Python objects (message-queue style)."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: Deque[Any] = deque()
        self._puts: Deque[StoreEvent] = deque()
        self._gets: Deque[StoreEvent] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def items(self) -> List[Any]:
        """Snapshot of the currently stored items (FIFO order)."""
        return list(self._items)

    def put(self, item: Any) -> StoreEvent:
        """Queue ``item``; the event fires once there is room."""
        event = StoreEvent(self.env, item)
        self._puts.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreEvent:
        """Request the oldest item; the event's value is the item."""
        event = StoreEvent(self.env)
        self._gets.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._puts and len(self._items) < self._capacity:
                put = self._puts.popleft()
                if put.cancelled:
                    continue
                self._items.append(put.item)
                put.succeed()
                progressed = True
            while self._gets and self._items:
                get = self._gets.popleft()
                if get.cancelled:
                    continue
                get.succeed(self._items.popleft())
                progressed = True
