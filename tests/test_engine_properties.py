"""Property-based tests on the whole engine: random DAGs, random mixes.

These assert *invariants* rather than calibrated numbers: every
well-formed job completes; each partition finishes exactly once; the
makespan respects work-conservation bounds; costs are non-negative.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.spark import TaskState

from tests.spark.helpers import MiniCluster


@st.composite
def dag_specs(draw):
    """A random linear DAG: per-stage compute and shuffle volumes."""
    stages = draw(st.integers(min_value=1, max_value=4))
    compute = [draw(st.floats(min_value=1.0, max_value=120.0))
               for _ in range(stages)]
    shuffles = [draw(st.floats(min_value=0.0, max_value=64e6))
                for _ in range(stages - 1)]
    partitions = draw(st.integers(min_value=1, max_value=12))
    return compute, shuffles, partitions


def build_chain(builder, compute, shuffles, partitions):
    current = builder.source("p0", partitions=partitions,
                             compute_seconds=compute[0] / partitions)
    for i, nbytes in enumerate(shuffles, start=1):
        current = builder.shuffle(current, f"p{i}", partitions=partitions,
                                  shuffle_bytes=nbytes,
                                  compute_seconds=compute[i] / partitions)
    return current


@given(spec=dag_specs(),
       vm_execs=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_random_dag_completes_with_exactly_one_finish_per_partition(
        spec, vm_execs):
    compute, shuffles, partitions = spec
    cluster = MiniCluster()
    cluster.vm_executors(vm_execs)
    job = cluster.driver.submit(
        build_chain(cluster.builder, compute, shuffles, partitions))
    cluster.env.run(until=job.done)
    assert not job.failed
    finished = [a for a in job.task_attempts
                if a.state is TaskState.FINISHED]
    per_stage = {}
    for attempt in finished:
        key = (attempt.spec.stage_id, attempt.spec.partition)
        per_stage[key] = per_stage.get(key, 0) + 1
    assert all(count == 1 for count in per_stage.values())
    expected_tasks = partitions * len(compute)
    assert len(finished) == expected_tasks


@given(spec=dag_specs(),
       vm_execs=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_makespan_respects_work_conservation(spec, vm_execs):
    compute, shuffles, partitions = spec
    cluster = MiniCluster()
    cluster.vm_executors(vm_execs)
    job = cluster.driver.submit(
        build_chain(cluster.builder, compute, shuffles, partitions))
    cluster.env.run(until=job.done)
    total_compute = sum(compute)
    slots = min(vm_execs, partitions)
    # Lower bound: perfect parallelism on the usable slots, no I/O.
    assert job.duration >= total_compute / slots * 0.999
    # Per-stage critical path: each stage's longest task is serialized.
    critical = sum(c / partitions for c in compute)
    assert job.duration >= critical * 0.999


@given(spec=dag_specs(),
       mix=st.tuples(st.integers(min_value=0, max_value=3),
                     st.integers(min_value=1, max_value=4)))
@settings(max_examples=25, deadline=None)
def test_hybrid_mixes_complete_via_hdfs(spec, mix):
    compute, shuffles, partitions = spec
    vm_execs, lambda_execs = mix
    cluster = MiniCluster(backend="hdfs")
    if vm_execs:
        cluster.vm_executors(vm_execs)
    cluster.lambda_executors(lambda_execs)
    job = cluster.driver.submit(
        build_chain(cluster.builder, compute, shuffles, partitions))
    cluster.env.run(until=job.done)
    assert not job.failed
    assert job.duration > 0
    assert not math.isnan(job.duration)
