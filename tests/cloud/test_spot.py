"""Tests for spot instances and the §2 transient-resource story."""

import pytest

from repro.cloud.spot import SPOT_DISCOUNT, SpotVM
from repro.simulation import Environment, RandomStreams

from tests.spark.helpers import MiniCluster, two_stage_rdd


def test_spot_is_discounted():
    env = Environment()
    vm = SpotVM(env, "spot-0", "m4.4xlarge", RandomStreams(0),
                already_running=True)
    assert vm.itype.price_per_hour == pytest.approx(
        0.80 * (1 - SPOT_DISCOUNT))
    assert vm.itype.vcpus == 16


def test_spot_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SpotVM(env, "x", "m4.large", RandomStreams(0),
               mean_revocation_s=0)


def test_spot_eventually_revoked():
    env = Environment()
    vm = SpotVM(env, "spot-0", "m4.large", RandomStreams(3),
                mean_revocation_s=60.0, already_running=True)
    env.run(until=vm.stopped)
    assert vm.revoked
    assert not vm.is_running


def test_tenant_termination_is_not_a_revocation():
    env = Environment()
    vm = SpotVM(env, "spot-0", "m4.large", RandomStreams(3),
                mean_revocation_s=1e9, already_running=True)
    vm.terminate()
    env.run()
    assert not vm.revoked


def _run_with_spot_worker(backend, seed=2, revoke_at=20.0):
    """A 2-stage job where half the cluster is a revocable spot VM that
    the market reclaims mid-reduce (t=20s: maps done at ~10s)."""
    cluster = MiniCluster(seed=seed, backend=backend)
    stable = cluster.provider.request_vm("m4.xlarge", already_running=True)
    cluster.driver.add_vm_executor(stable)
    cluster.driver.add_vm_executor(stable)
    spot = SpotVM(cluster.env, "spot-0", "m4.xlarge", cluster.rng,
                  revocation_at_s=revoke_at,
                  already_running=True)
    cluster.provider.vms.append(spot)
    cluster.driver.add_vm_executor(spot)
    cluster.driver.add_vm_executor(spot)
    rdd = two_stage_rdd(cluster.builder, maps=4, reduces=4,
                        map_seconds=10.0, reduce_seconds=15.0,
                        shuffle_bytes=8 * 1024 * 1024)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=job.done)
    return cluster, job, spot


def test_revocation_mid_job_recovers_on_survivors():
    cluster, job, spot = _run_with_spot_worker("local")
    assert spot.revoked
    assert not job.failed
    # Everything eventually ran on the stable VM's executors.
    assert len(cluster.driver.task_scheduler.executors) == 2


def test_external_shuffle_softens_revocation():
    """The §4.3 point, transient-resource edition: with shuffle on HDFS a
    revocation costs only in-flight tasks; with executor-local shuffle it
    also costs recomputation of the lost map outputs."""
    _cluster_l, job_local, spot_l = _run_with_spot_worker("local")
    _cluster_h, job_hdfs, spot_h = _run_with_spot_worker("hdfs")
    assert spot_l.revoked and spot_h.revoked  # same seed, same clock
    assert not job_local.failed and not job_hdfs.failed
    # Local shuffle re-ran map work; HDFS did not.
    local_maps = sum(1 for a in job_local.task_attempts
                     if a.spec.is_shuffle_map)
    hdfs_maps = sum(1 for a in job_hdfs.task_attempts
                    if a.spec.is_shuffle_map)
    assert local_maps > hdfs_maps
    assert job_hdfs.duration <= job_local.duration
