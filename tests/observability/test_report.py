"""Tests for ``repro report`` rendering and metric precision."""

import pytest

from repro.core.scenarios import run_scenario
from repro.experiments import ExperimentSpec, read_jsonl, write_jsonl
from repro.observability.export import event_log_dicts, save_event_log
from repro.observability.report import (
    render_event_log_report,
    render_report_file,
    render_run_report,
)


@pytest.fixture(scope="module")
def hybrid():
    """One hybrid run: (spec, ScenarioResult, RunRecord)."""
    spec = ExperimentSpec(workload="sparkpi", scenario="ss_hybrid", seed=0)
    result = run_scenario(spec, keep_trace=True)
    return spec, result, result.to_record(spec)


def test_cost_split_sums_to_total(hybrid):
    _spec, _result, record = hybrid
    m = record.metrics
    parts = m["cost.iaas"] + m["cost.faas"] + sum(
        v for k, v in m.items() if k.startswith("cost.storage."))
    assert abs(parts - m["cost.total"]) < 1e-6
    assert abs(m["cost.total"] - record.cost) < 1e-6


def test_render_run_report_sections(hybrid):
    _spec, _result, record = hybrid
    text = render_run_report(record.to_dict())
    assert "run: workload=sparkpi scenario=ss_hybrid seed=0" in text
    assert "cost split ($):" in text
    assert "IaaS (VM)" in text and "FaaS (Lambda)" in text
    assert "per-stage breakdown (* = critical path):" in text
    assert "*" in text
    assert "executor utilization:" in text
    assert "cloud counters:" in text
    assert "cloud.lambda.invocations" in text


def test_render_run_report_has_both_kinds(hybrid):
    _spec, _result, record = hybrid
    text = render_run_report(record.to_dict())
    util = text.split("executor utilization:")[1]
    assert "lambda" in util and "vm" in util


def test_render_event_log_report(hybrid):
    _spec, result, _record = hybrid
    rows = event_log_dicts(result.trace)
    text = render_event_log_report(rows)
    assert "event census:" in text
    assert "executor.task_end" in text
    assert "stages:" in text
    # Every stage of a successful run closes — no dangling "open" span.
    stage_table = text.split("stages:")[1].split("executor utilization:")[0]
    assert "open" not in stage_table
    assert "executor utilization:" in text


def test_render_event_log_report_empty():
    assert render_event_log_report([]) == "event log: empty"


def test_render_report_file_autodetects_run_records(tmp_path, hybrid):
    _spec, _result, record = hybrid
    path = tmp_path / "records.jsonl"
    write_jsonl([record, record], str(path))
    text = render_report_file(str(path))
    assert text.count("run: workload=sparkpi") == 2
    only_first = render_report_file(str(path), index=0)
    assert only_first.count("run: workload=sparkpi") == 1


def test_render_report_file_autodetects_event_logs(tmp_path, hybrid):
    _spec, result, _record = hybrid
    path = tmp_path / "events.jsonl"
    save_event_log(result.trace, str(path))
    text = render_report_file(str(path))
    assert "event census:" in text


def test_render_report_file_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert render_report_file(str(path)) == "empty file"


# ---------------------------------------------------------------------------
# Precision regression: metrics stay full-precision end to end
# ---------------------------------------------------------------------------

def test_metrics_survive_jsonl_roundtrip_at_full_precision(tmp_path, hybrid):
    spec, _result, record = hybrid
    probe = 0.12345678901234567  # more digits than any %.3f render keeps
    record.metrics["precision.probe"] = probe
    path = tmp_path / "records.jsonl"
    write_jsonl([record], str(path))
    [loaded] = read_jsonl(str(path))
    assert loaded.metrics["precision.probe"] == probe
    for name, value in record.metrics.items():
        assert loaded.metrics[name] == value, name


def test_rendering_does_not_mutate_metrics(hybrid):
    _spec, _result, record = hybrid
    payload = record.to_dict()
    before = dict(payload["metrics"])
    render_run_report(payload)
    assert payload["metrics"] == before
