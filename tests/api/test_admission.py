"""Admission-control semantics: queue, FIFO drain, 503 backpressure.

The satellite contract for the control plane:

- submissions beyond ``max_concurrent`` are *queued*, never dropped;
- the queue drains in FIFO order as running slots free up;
- beyond ``max_queue`` the service sheds load with a structured 503
  whose body comes from the shared schema module;
- the AppManager applies the same queue-don't-drop discipline to
  pooled jobs inside the simulation.

Jobs here run a ``custom:`` scenario gated on a threading.Event, so
saturation is constructed deterministically rather than raced.
"""

import threading

import pytest

from repro.api import schemas
from repro.api.app import create_app
from repro.api.service import (
    BackpressureError,
    ServeConfig,
    ServeRuntime,
)
from repro.api.testclient import TestClient
from repro.observability.categories import CAT_SERVE, EV_JOB_STARTED

#: Gates the blocking jobs wait on, keyed by test-chosen name so
#: concurrent tests cannot release each other's jobs.
_GATES = {}


def _gate(name: str) -> threading.Event:
    return _GATES.setdefault(name, threading.Event())


def blocking_job(spec):
    """``custom:`` scenario body: hold a running slot until released."""
    gate = _GATES[dict(spec.extra)["gate"]]
    assert gate.wait(timeout=30.0), "gate never released"
    return {"workload": "blocker", "duration_s": 1.0, "cost": 0.0}


def _request(seed: int, gate: str) -> dict:
    return {"workload": "blocker",
            "scenario": "custom:tests.api.test_admission:blocking_job",
            "seed": seed, "extra": {"gate": gate}}


@pytest.mark.smoke
def test_saturation_queues_fifo_then_rejects():
    gate = _gate("saturation")
    service = ServeRuntime(ServeConfig(max_concurrent=2,
                                       max_queue=2)).start()
    try:
        statuses = [service.submit(_request(i, "saturation"))
                    for i in range(4)]
        # Two run, two queue — in order, with live queue positions.
        assert [s.state for s in statuses] == [
            schemas.JOB_RUNNING, schemas.JOB_RUNNING,
            schemas.JOB_QUEUED, schemas.JOB_QUEUED]
        assert statuses[2].queue_position == 0
        assert statuses[3].queue_position == 1
        stats = service.admission_stats()
        assert (stats["running"], stats["queued"]) == (2, 2)

        # The fifth submission is shed with structured backpressure,
        # not silently queued or dropped.
        with pytest.raises(BackpressureError) as exc_info:
            service.submit(_request(4, "saturation"))
        assert exc_info.value.detail == {
            "running": 2, "queued": 2,
            "max_concurrent": 2, "max_queue": 2}
        assert exc_info.value.retry_after_s > 0

        # Release the gate: every admitted job completes (none dropped)...
        gate.set()
        assert service.drain(timeout=30.0)
        stats = service.admission_stats()
        assert stats["finished"] == 4
        assert stats["rejected"] == 1
        for s in statuses:
            final = service.job(s.job_id)
            assert final.state == schemas.JOB_COMPLETED, final.error

        # ...and the queue drained in FIFO order (started events are
        # recorded under the admission lock, so this is deterministic).
        started = [e["fields"]["job"]
                   for e in service.hub.snapshot(category=CAT_SERVE)
                   if e["name"] == EV_JOB_STARTED]
        assert started == [s.job_id for s in statuses]
    finally:
        gate.set()
        service.close()


def test_http_503_returns_structured_error_body():
    gate = _gate("http503")
    config = ServeConfig(max_concurrent=1, max_queue=1)
    try:
        with TestClient(create_app(config)) as client:
            first = client.post("/jobs", json=_request(0, "http503"))
            second = client.post("/jobs", json=_request(1, "http503"))
            assert first.status == second.status == 202

            shed = client.post("/jobs", json=_request(2, "http503"))
            assert shed.status == 503
            env = shed.envelope()
            assert env.kind == schemas.KIND_ERROR
            assert env.data["code"] == schemas.ERR_BACKPRESSURE
            assert "saturated" in env.data["message"]
            assert env.data["detail"] == {
                "running": 1, "queued": 1,
                "max_concurrent": 1, "max_queue": 1}
            # Retry-After is deterministically jittered (derived from
            # the submission's identity, never ``random``) so shed
            # clients spread across [0.5, 2.0) instead of stampeding
            # back in lockstep.
            assert 0.5 <= env.data["retry_after_s"] < 2.0
            assert shed.headers["retry-after"] == str(
                max(0, int(round(env.data["retry_after_s"]))))

            gate.set()
            done = client.get(f"/jobs/{first.data['job_id']}",
                              params={"wait": 30})
            assert done.data["state"] == schemas.JOB_COMPLETED
    finally:
        gate.set()


def test_app_manager_queues_pooled_jobs_beyond_limit():
    service = ServeRuntime(ServeConfig(max_concurrent=8, max_queue=8,
                                       pool_max_concurrent=1,
                                       pool_cores=4)).start()
    try:
        statuses = [service.submit({"workload": "sparkpi",
                                    "mode": "pooled", "seed": i})
                    for i in range(3)]
        assert service.drain(timeout=60.0)
        finals = [service.job(s.job_id) for s in statuses]
        for final in finals:
            assert final.state == schemas.JOB_COMPLETED, final.error
        # With one in-sim slot, the later arrivals queued inside the
        # AppManager (queued, not dropped) and accrued queueing delay.
        delays = [f.metrics["queueing_delay_s"] for f in finals]
        assert sum(1 for d in delays if d > 0) >= 2
        snapshot = service.pool_stats()["manager"]
        assert snapshot["finished"] == 3
        assert snapshot["max_concurrent"] == 1
        assert snapshot["queued"] == 0
    finally:
        service.close()
