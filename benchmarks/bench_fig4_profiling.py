"""Figure 4: offline profiling — time & cost vs degree of parallelism.

(a) all-Lambda executors, (b) all-VM executors on the fewest instances,
for the small/medium/large (25k/50k/100k pages) PageRank inputs. The
paper's findings: classic U-shaped curves, the same performance-optimal
parallelism for both substrates, and much lower absolute times on VMs.

Every (size, parallelism) point is one ExperimentSpec fanned out over
the ExperimentRunner, so the 48-point sweep scales with available cores
and re-runs hit the on-disk cache.
"""

import pytest

from repro.analysis.profiling import ProfilePoint, optimal_parallelism
from repro.analysis.reporting import format_series
from repro.experiments import ExperimentRunner, ExperimentSpec
from benchmarks.conftest import run_once

SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)
SIZES = {"small(25k)": "pagerank-small",
         "medium(50k)": "pagerank-medium",
         "large(100k)": "pagerank-large"}


def profile_specs(kind):
    return {label: [ExperimentSpec(workload=workload,
                                   scenario=f"profile_{kind}",
                                   parallelism=p) for p in SWEEP]
            for label, workload in SIZES.items()}


def run_profiles(kind, runner=None):
    runner = runner if runner is not None else ExperimentRunner()
    by_size = profile_specs(kind)
    flat = [spec for specs in by_size.values() for spec in specs]
    by_spec = dict(zip(flat, runner.run(flat, keep_errors=False)))
    return {label: [ProfilePoint(s.parallelism, by_spec[s].duration_s,
                                 by_spec[s].cost, kind) for s in specs]
            for label, specs in by_size.items()}


def _render(points_by_size):
    times = {label: [p.duration_s for p in pts]
             for label, pts in points_by_size.items()}
    costs = {f"{label} $": [p.cost for p in pts]
             for label, pts in points_by_size.items()}
    return (format_series("executors", list(SWEEP), times,
                          title="execution time (s)")
            + "\n\n"
            + format_series("executors", list(SWEEP), costs,
                            title="cost ($)", value_format="{:.4f}"))


def test_fig4a_lambda_profiling(benchmark, emit):
    profiles = run_once(benchmark, lambda: run_profiles("lambda"))
    emit("Figure 4(a) — PageRank profiling, all-Lambda executors",
         _render(profiles))
    for label, points in profiles.items():
        durations = [p.duration_s for p in points]
        best = optimal_parallelism(points)
        # U-shape: the optimum is interior, not at either extreme.
        assert durations[0] > best.duration_s
        assert durations[-1] > best.duration_s
        assert 2 <= best.parallelism <= 64


def test_fig4b_vm_profiling(benchmark, emit):
    vm_profiles = run_once(benchmark, lambda: run_profiles("vm"))
    emit("Figure 4(b) — PageRank profiling, all-VM executors",
         _render(vm_profiles))
    lambda_profiles = run_profiles("lambda")
    for label in SIZES:
        vm_points = {p.parallelism: p for p in vm_profiles[label]}
        la_points = {p.parallelism: p for p in lambda_profiles[label]}
        # "the overall execution time for the job is much lower when
        # running on VMs" at moderate parallelism.
        for parallelism in (4, 8, 16):
            assert (vm_points[parallelism].duration_s
                    <= la_points[parallelism].duration_s * 1.05)


@pytest.mark.smoke
def test_smoke_one_profile_point(tmp_path):
    runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
    [record] = runner.run([ExperimentSpec("pagerank-small", "profile_lambda",
                                          parallelism=4)])
    assert record.error is None
    assert record.duration_s > 0 and record.cost > 0
