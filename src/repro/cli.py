"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — available workloads, scenarios, and policies;
- ``run`` — one (workload, scenario) execution, optionally with the
  Figure 7-style executor timeline;
- ``plan`` — rank FaaS/IaaS split candidates against an SLO with the
  calibrated planner, then execute the chosen split and report
  predicted-vs-actual;
- ``profile`` — a §5.1 offline-profiling sweep (the Figure 4 curves);
- ``stream`` — the §4.1 day-of-jobs simulation under a chosen policy;
- ``serve`` — the long-lived control plane: a shared simulated cluster
  behind an HTTP API (``POST /jobs``, ``GET /jobs/{id}``, ``GET
  /executors``, ``GET /pools``, ``GET /plan``, ``GET /events`` SSE,
  ``GET /healthz``/``/readyz``, ``POST /chaos``);
- ``chaos`` — stand up a throwaway control plane, drive a seeded chaos
  scenario (Lambda throttle storms, worker-thread kills, sim-driver
  stalls, kill-9 + journal recovery) against it, assert the recovery
  invariants, and print/export the availability report (see DESIGN.md
  "Service resilience");
- ``trace`` — render the causal span tree of one served job (fetched
  from a live ``repro serve`` via ``GET /trace/{job_id}``, or from a
  saved trace document), optionally exporting the merged host-span +
  sim-event Chrome trace;
- ``report`` — render a breakdown from any export: RunRecord JSONL,
  event logs, or a ``GET /jobs/{id}`` JobStatus document.

Every command shares the same flag set: ``--seed`` picks the RNG seed,
``--workers N`` fans independent runs out over N processes (default:
all cores), and ``--json PATH`` exports the results as JSONL — each
line a versioned :class:`repro.api.schemas.ResponseEnvelope`, the same
shape the serve API returns. Runs go through
:class:`repro.experiments.ExperimentRunner`, so repeated invocations
hit the on-disk result cache (``.repro_cache``; see README).

The full table/figure reproduction lives in the benchmark harness
(``pytest benchmarks/ --benchmark-only``); the CLI is for interactive
exploration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.analysis.reporting import format_series, format_table, relative_to
from repro.analysis.timeline import build_timeline
from repro.core.scenarios import SCENARIO_NAMES, run_scenario
from repro.experiments import ExperimentRunner, ExperimentSpec, write_jsonl
from repro.simulation.faults import CHAOS_PLANS, FaultSpec
from repro.workloads.base import Workload
from repro.workloads.registry import WORKLOADS
from repro.workloads.registry import make_workload as _registry_make


def make_workload(name: str) -> Workload:
    try:
        return _registry_make(name)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_faults(arg: Optional[str]) -> Tuple[FaultSpec, ...]:
    """Parse ``--faults`` — inline JSON or ``@file`` — into FaultSpecs.

    Accepts a JSON list of fault objects or a single object; each object
    uses the :class:`~repro.simulation.faults.FaultSpec` vocabulary
    (``kind``, one of ``at_s``/``on_event``/``probability``, ``target``,
    ...). See DESIGN.md, "Fault model".
    """
    if not arg:
        return ()
    text = arg
    if arg.startswith("@"):
        try:
            with open(arg[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SystemExit(f"cannot read fault plan {arg[1:]}: {exc}")
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"--faults is not valid JSON: {exc}")
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise SystemExit("--faults must be a JSON object or list of objects")
    try:
        return tuple(FaultSpec.from_dict(item) for item in data)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid fault plan: {exc}")


def _export_json(path: Optional[str], records) -> None:
    if not path:
        return
    try:
        count = write_jsonl(records, path)
    except OSError as exc:
        raise SystemExit(f"cannot write {path}: {exc}")
    print(f"\nwrote {count} RunRecord(s) to {path}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_list(_args: argparse.Namespace) -> int:
    from repro.core.policies import known_policies, policy_entry

    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    print("  multijob (job-arrival replay on a shared pool; --mj-* flags)")
    print("\nscenarios (paper §5.1):")
    for name in SCENARIO_NAMES:
        print(f"  {name}")
    print("\npolicies:")
    for name in known_policies():
        entry = policy_entry(name)
        print(f"  {name} ({entry.kind}): {entry.description}")
    return 0


def _start_profiler(args: argparse.Namespace):
    """``--profile``: attach the statistical sampler to this thread."""
    if not getattr(args, "profile", False):
        return None
    from repro.observability.serve_obs import SamplingProfiler
    return SamplingProfiler().start()


def _finish_profiler(profiler, records) -> None:
    """Stop the sampler, fold its top-N frames into each record's
    metrics (flat ``profile.*`` keys, exported by ``--json``), and
    print the hot-path table."""
    if profiler is None:
        return
    profiler.stop()
    flat = profiler.metrics()
    for record in records:
        record.metrics.update(flat)
    total = max(1, profiler.sample_count)
    rows = [[label, count, f"{count / total:.1%}"]
            for label, count in profiler.top_frames(10)]
    buckets = ", ".join(f"{b} {frac:.0%}" for b, frac
                        in sorted(profiler.bucket_fractions().items(),
                                  key=lambda kv: -kv[1]))
    print()
    print(format_table(
        ["frame", "samples", "share"], rows,
        title=f"profiler: {profiler.sample_count} samples "
              f"({buckets or 'no samples — run too short or cached'})"))


def cmd_run(args: argparse.Namespace) -> int:
    if args.workload == "multijob":
        return _run_multijob(args)
    workload = make_workload(args.workload)
    scenarios = ([args.scenario] if args.scenario != "all"
                 else SCENARIO_NAMES)
    faults = _parse_faults(args.faults)
    specs = [ExperimentSpec(workload=args.workload, scenario=name,
                            seed=args.seed, faults=faults)
             for name in scenarios]
    wants_trace = bool(args.trace_out or args.events_out)
    if wants_trace and len(specs) != 1:
        raise SystemExit("--trace-out/--events-out need a single scenario; "
                         "pass --scenario <name>, not all")
    if args.timeline or wants_trace or args.profile:
        # Timelines and trace exports need the in-memory trace, which
        # records (being JSON-bounded) do not carry; the profiler needs
        # the run on this thread. Either way: run in-process.
        profiler = _start_profiler(args)
        results = [run_scenario(spec,
                                keep_trace=args.timeline or wants_trace)
                   for spec in specs]
        records = [res.to_record(spec)
                   for spec, res in zip(specs, results)]
        _finish_profiler(profiler, records)
        for res in results:
            if args.timeline and not res.failed and res.trace is not None:
                print(f"\n--- timeline: {res.label(workload.spec)} ---")
                print(build_timeline(res.trace).render())
        if wants_trace:
            from repro.observability.export import (
                save_chrome_trace,
                save_event_log,
            )
            trace = results[0].trace
            if args.events_out:
                count = save_event_log(trace, args.events_out)
                print(f"wrote {count} event(s) to {args.events_out}")
            if args.trace_out:
                count = save_chrome_trace(trace, args.trace_out)
                print(f"wrote {count} traceEvents to {args.trace_out} "
                      f"(load in https://ui.perfetto.dev)")
    else:
        records = ExperimentRunner(workers=args.workers).run(specs)

    base: Optional[float] = None
    for record in records:
        if record.scenario == "spark_R_vm" and not record.failed:
            base = record.duration_s
    rows = []
    for record in records:
        if record.failed:
            rows.append([record.label(workload.spec), "FAILED", "-", "-"])
            continue
        rows.append([record.label(workload.spec),
                     f"{record.duration_s:.1f}s",
                     relative_to(base, record.duration_s) if base else "",
                     f"${record.cost:.4f}"])
    print()
    print(format_table(["scenario", "time", "vs baseline", "cost"], rows,
                       title=f"{workload.name} (seed {args.seed})"))
    _export_json(args.json, records)
    return 0


def _run_multijob(args: argparse.Namespace) -> int:
    """``repro run --workload multijob``: a job-arrival replay against
    one shared FIFO/FAIR executor pool (see DESIGN.md, "Cluster
    runtime"). Pool knobs come from the ``--mj-*`` flags."""
    if args.timeline or args.trace_out or args.events_out:
        raise SystemExit("--timeline/--trace-out/--events-out are "
                         "single-job options; multijob reports pool "
                         "metrics instead")
    faults = _parse_faults(args.faults)
    policy = {}
    if args.mj_split_policy != "none":
        from repro.core.policies import SPLIT, known_policies
        if args.mj_split_policy not in known_policies(SPLIT):
            raise SystemExit(
                f"unknown split policy {args.mj_split_policy!r}; known: "
                f"{', '.join(known_policies(SPLIT))}")
        policy = {"name": args.mj_split_policy}
    spec = ExperimentSpec(
        workload="multijob", scenario="multijob", seed=args.seed,
        faults=faults, policy=policy,
        extra={"mix": args.mj_mix, "n_jobs": args.mj_jobs,
               "mean_interarrival_s": args.mj_interarrival,
               "pool_cores": args.mj_pool_cores,
               "lambda_cores": args.mj_lambda_cores,
               "pool_style": args.mj_pool_style, "mode": args.mj_mode,
               "max_concurrent": args.mj_max_concurrent})
    [record] = ExperimentRunner(workers=args.workers).run([spec])
    if record.failed:
        raise SystemExit(record.failure_reason or record.error
                         or "multijob run failed")
    m = record.metrics
    print(format_table(
        ["metric", "value"],
        [["pool", f"{args.mj_pool_style} ({args.mj_mode}, "
                  f"{args.mj_pool_cores} VM + "
                  f"{args.mj_lambda_cores} La cores)"],
         ["split policy", args.mj_split_policy],
         ["jobs", m["jobs"]],
         ["jobs failed", m["jobs_failed"]],
         ["p50 / p95 latency", f"{m['p50_latency_s']:.1f}s / "
                               f"{m['p95_latency_s']:.1f}s"],
         ["p50 / p95 queueing", f"{m['p50_queueing_delay_s']:.1f}s / "
                                f"{m['p95_queueing_delay_s']:.1f}s"],
         ["cost per job", f"${m['cost_per_job']:.4f}"],
         ["makespan", f"{record.duration_s:.1f}s"],
         ["total cost", f"${record.cost:.4f}"]],
        title=f"multijob: {args.mj_mix} x{args.mj_jobs} "
              f"(seed {args.seed})"))
    _export_json(args.json, [record])
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """``repro plan``: rank split candidates for one or more workloads
    against an SLO, then (unless ``--dry-run``) execute each chosen
    split and score the prediction (the planner's calibration loop)."""
    from repro.planner import SplitPlanner
    from repro.planner.planner import DEFAULT_SLO_MARGIN

    if args.margin is None:
        args.margin = DEFAULT_SLO_MARGIN
    if args.workload == "all":
        names = sorted(WORKLOADS)
    else:
        names = [n.strip() for n in args.workload.split(",") if n.strip()]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise SystemExit(f"unknown workload(s): {', '.join(unknown)}; "
                         f"see `repro list`")

    planner = SplitPlanner(seed=args.seed, slo_margin=args.margin)
    runner = ExperimentRunner(workers=args.workers)
    records, plans = [], []
    for name in names:
        plan = planner.plan(name, slo_s=args.slo)
        plans.append(plan)
        rows = []
        for rank, entry in enumerate(plan.candidates, start=1):
            c = entry.candidate
            rows.append([
                rank, c.name, c.vm_cores, c.lambda_cores,
                (f"{c.segue_cores}@{c.segue_at_s:g}s"
                 if c.segue_cores else "-"),
                f"{entry.predicted_runtime_s:.1f}s",
                f"${entry.predicted_cost:.4f}",
                "yes" if entry.meets_slo else "NO"])
        print()
        print(format_table(
            ["rank", "candidate", "vm", "lambda", "segue", "pred time",
             "pred cost", "SLO"],
            rows,
            title=f"{name}: ranked split plan "
                  f"(SLO {plan.slo_s:g}s, seed {args.seed})"))
        if not plan.feasible:
            best = plan.chosen
            print(f"INFEASIBLE: no candidate is predicted to meet the "
                  f"{plan.slo_s:g}s SLO; fastest is "
                  f"{best.candidate.name} at "
                  f"{best.predicted_runtime_s:.1f}s")
        if args.dry_run:
            continue
        [record] = runner.run([planner.spec_for(plan)])
        if record.failed:
            raise SystemExit(record.failure_reason or record.error
                             or f"planned run failed for {name}")
        records.append(record)
        m = record.metrics
        print(f"executed {m['planner.candidate']}: "
              f"{record.duration_s:.1f}s actual vs "
              f"{m['planner.predicted_runtime_s']:.1f}s predicted "
              f"({m['planner.error_runtime_frac']:.1%} error), "
              f"${record.cost:.4f} — "
              f"SLO {'met' if m['planner.slo_met'] else 'MISSED'}")
    if args.dry_run and args.json:
        from repro.api import schemas
        with open(args.json, "w", encoding="utf-8") as handle:
            for plan in plans:
                handle.write(schemas.envelope(
                    schemas.KIND_PLAN,
                    schemas.plan_payload(plan)).dumps() + "\n")
        print(f"\nwrote {len(plans)} plan(s) to {args.json}")
    else:
        _export_json(args.json, records)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    try:
        sweep = [int(x) for x in args.parallelism.split(",")]
        if any(p <= 0 for p in sweep):
            raise ValueError
    except ValueError:
        raise SystemExit(f"--parallelism must be a comma-separated list of "
                         f"positive integers, got {args.parallelism!r}")
    specs = [ExperimentSpec(workload=args.workload,
                            scenario=f"profile_{args.kind}",
                            parallelism=p, seed=args.seed) for p in sweep]
    records = ExperimentRunner(workers=args.workers).run(specs)
    print(format_series(
        "executors", sweep,
        {"time (s)": [r.duration_s for r in records],
         "cost ($)": [r.cost for r in records]},
        title=f"{workload.name}, all-{args.kind} profiling",
        value_format="{:.3f}"))
    _export_json(args.json, records)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    extra = {"hours": args.hours, "k": args.k, "bridge": args.bridge,
             "base_cores": args.base_cores, "peak_cores": args.peak_cores}
    if args.policy != "ksigma":
        # Only non-default policies enter the spec, so pre-registry
        # stream specs keep their hashes (and cached records).
        from repro.core.policies import PROVISIONING, known_policies
        if args.policy not in known_policies(PROVISIONING):
            raise SystemExit(
                f"unknown provisioning policy {args.policy!r}; known: "
                f"{', '.join(known_policies(PROVISIONING))}")
        extra["policy"] = args.policy
    spec = ExperimentSpec(
        workload="diurnal", scenario="stream", seed=args.seed, extra=extra)
    # One simulation: --workers is accepted for flag-set consistency but
    # a single spec always runs in-process.
    [record] = ExperimentRunner(workers=args.workers).run([spec])
    m = record.metrics
    print(format_table(
        ["metric", "value"],
        [["policy", m["policy"]],
         ["bridge", m["bridge"]],
         ["jobs", m["jobs"]],
         ["SLO attainment", f"{m['slo_attainment']:.1%}"],
         ["mean duration", f"{m['mean_duration']:.1f}s"],
         ["Lambda-bridged jobs", m["lambda_bridged_jobs"]],
         ["VM cost", f"${m['vm_cost']:.2f}"],
         ["Lambda cost", f"${m['lambda_cost']:.3f}"],
         ["total cost", f"${record.cost:.2f}"]],
        title=f"{args.hours:g}h job stream"))
    _export_json(args.json, [record])
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: start the control plane over a long-lived
    shared cluster (see DESIGN.md, "Control plane"). Uses uvicorn when
    the ``[serve]`` extra is installed, a stdlib HTTP server
    otherwise."""
    from repro.api.app import create_app
    from repro.api.server import run
    from repro.api.service import ServeConfig

    try:
        config = ServeConfig(
            max_concurrent=args.max_concurrent,
            max_queue=args.max_queue,
            seed=args.seed,
            pool_cores=args.pool_cores,
            lambda_cores=args.lambda_cores,
            pool_style=args.pool_style,
            mode=args.mode,
            sim_step_s=args.sim_step,
            state_dir=args.state_dir,
            journal_fsync=args.journal_fsync,
            default_deadline_s=args.deadline,
            max_attempts=args.max_attempts,
            breaker_failure_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            drain_deadline_s=args.drain_deadline,
            slo_window_s=args.slo_window,
            slo_availability_target=args.slo_availability,
            slo_latency_p99_s=args.slo_latency_p99,
            slo_max_burn_rate=args.slo_max_burn,
            profile=args.profile,
            profile_interval_s=args.profile_interval)
    except ValueError as exc:
        raise SystemExit(str(exc))
    app = create_app(config)

    # SIGTERM = graceful drain: stop admitting (503 "draining"), let
    # running jobs finish up to the drain deadline, checkpoint the rest
    # to the journal, then fall out of serve_forever.
    import signal

    def _graceful(signum, frame):  # pragma: no cover - signal path
        summary = app.runtime.request_drain()
        print(f"drained: {summary}")
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:
        pass  # not the main thread (embedded); drain via POST or close

    journal = (f"journal: {args.state_dir}" if args.state_dir
               else "journal: off (no --state-dir)")
    print(f"repro serve on http://{args.host}:{args.port} "
          f"(pool: {args.pool_cores} VM + {args.lambda_cores} La cores, "
          f"{args.mode}; admission: {args.max_concurrent} running / "
          f"{args.max_queue} queued; seed {args.seed}; {journal})")
    print(f"try: curl -s http://{args.host}:{args.port}/ | python -m "
          f"json.tool")
    run(app, host=args.host, port=args.port)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: drive one seeded chaos scenario against a
    throwaway live control plane and report recovery/availability.

    The run *asserts* its recovery invariants (every job terminal, the
    breaker opens and recovers, kill-9 + restart recovers journaled
    jobs with no duplicates) — a failed invariant is a non-zero exit,
    so this doubles as an operational smoke test against a build."""
    import tempfile

    from repro.api import schemas
    from repro.api.resilience import run_chaos

    def _run(state_dir: Optional[str]) -> dict:
        return run_chaos(plan=args.plan, seed=args.seed, n_jobs=args.jobs,
                         kill_workers=args.kill_workers,
                         stall_driver_s=args.stall,
                         lambda_probes=args.lambda_probes,
                         storm_duration_s=args.storm_duration,
                         state_dir=state_dir)

    try:
        if args.no_journal:
            report = _run(None)
        elif args.state_dir is not None:
            report = _run(args.state_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                report = _run(tmp)
    except AssertionError as exc:
        raise SystemExit(f"chaos invariant violated: {exc}")

    rows = [["plan", report["plan"]],
            ["seed", report["seed"]],
            ["submitted", report["submitted"]],
            ["completed", report["completed"]],
            ["failed", report["failed"]],
            ["rejected (503)", report["rejected_503"]],
            ["retried jobs", report["retried_jobs"]],
            ["availability", f"{report['availability']:.1%}"],
            ["total wall", f"{report['total_wall_s']:.2f}s"]]
    if "breaker_recovery_s" in report:
        rows.append(["breaker recovery",
                     f"{report['breaker_recovery_s']:.3f}s"])
    if report.get("crash_recovery_s"):
        rows.append(["crash recovery",
                     ", ".join(f"{t:.3f}s"
                               for t in report["crash_recovery_s"])])
    if "recovery" in report:
        rec = report["recovery"]
        rows.append(["journal recovery",
                     f"{rec['recovered_jobs']}/{rec['journaled_jobs']} "
                     f"jobs, {rec['duplicates']} dup, "
                     f"{rec['recovery_wall_s']:.2f}s"])
    print(format_table(["metric", "value"], rows,
                       title=f"chaos: {args.plan}"))
    for phase in report["phases"]:
        detail = {k: v for k, v in phase.items()
                  if k not in ("name", "duration_s")}
        print(f"  {phase['name']:<8} {phase['duration_s']:8.3f}s  {detail}")
    print("all recovery invariants held")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(schemas.envelope(schemas.KIND_CHAOS, report).dumps()
                     + "\n")
        print(f"report written to {args.json}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace JOB_ID``: render a served job's causal span tree.

    Fetches ``GET /trace/{job_id}`` from a live ``repro serve`` (or
    reads a saved copy of that document with ``--file``) and renders
    the parent-linked span tree; ``--chrome-out`` additionally merges
    the host wall-clock spans with the trace-stamped sim events into
    one Chrome-trace timeline."""
    from repro.observability.export import save_spans_chrome_trace
    from repro.observability.serve_obs import render_span_tree

    if args.file is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise SystemExit(f"cannot read {args.file}: {exc}")
    else:
        from urllib import error as urlerror
        from urllib import request as urlrequest
        url = args.url.rstrip("/") + f"/trace/{args.job_id}"
        try:
            with urlrequest.urlopen(url, timeout=args.timeout) as resp:
                text = resp.read().decode("utf-8")
        except urlerror.HTTPError as exc:
            if exc.code == 404:
                raise SystemExit(f"no such job {args.job_id!r} at "
                                 f"{args.url}")
            raise SystemExit(f"GET {url} failed: {exc}")
        except (urlerror.URLError, OSError) as exc:
            raise SystemExit(f"cannot reach {args.url}: {exc} "
                             f"(is `repro serve` running?)")

    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"trace document is not JSON: {exc}")
    if not isinstance(doc, dict):
        raise SystemExit("trace document must be a JSON object")
    data = doc.get("data", doc)  # envelope or bare payload
    spans = data.get("spans") or []
    if not spans:
        raise SystemExit(f"job {args.job_id!r} has no spans (was it "
                         f"submitted before this server started "
                         f"tracing?)")
    try:
        print(render_span_tree(spans, include_times=not args.no_times))
    except ValueError as exc:
        raise SystemExit(f"broken span tree: {exc}")
    sim_events = data.get("sim_events") or []
    if sim_events:
        print(f"{len(sim_events)} sim event(s) stamped with this trace")
    if args.chrome_out:
        n = save_spans_chrome_trace(spans, args.chrome_out,
                                    sim_events=sim_events)
        print(f"chrome trace ({n} records) written to {args.chrome_out} "
              f"(open in Perfetto / chrome://tracing)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"trace document written to {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.observability.report import render_report_file

    try:
        print(render_report_file(args.path, index=args.index))
    except OSError as exc:
        raise SystemExit(f"cannot read {args.path}: {exc}")
    except (ValueError, IndexError) as exc:
        raise SystemExit(f"cannot render {args.path}: {exc}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SplitServe reproduction (Middleware '20)")
    sub = parser.add_subparsers(dest="command", required=True)

    # Flags shared by every executing command (satellite of the
    # ExperimentSpec redesign: one flag set, not per-command one-offs).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the run(s)")
    common.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for independent runs "
                             "(default: all cores)")
    common.add_argument("--json", default=None, metavar="PATH",
                        help="export results as JSONL to PATH (one "
                             "versioned run_record envelope per line)")

    sub.add_parser("list", help="list workloads and scenarios")

    run_p = sub.add_parser("run", help="run one scenario",
                           parents=[common])
    run_p.add_argument("--workload", default="pagerank")
    run_p.add_argument("--scenario", default="all",
                       choices=["all", *SCENARIO_NAMES])
    run_p.add_argument("--timeline", action="store_true",
                       help="print the Figure 7-style executor timeline")
    run_p.add_argument("--faults", default=None, metavar="JSON|@FILE",
                       help="declarative fault plan: a JSON list of fault "
                            "objects (or @path to a file holding one); "
                            "see DESIGN.md \"Fault model\"")
    run_p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome-trace (Perfetto) JSON of the "
                            "run (single scenario only)")
    run_p.add_argument("--events-out", default=None, metavar="PATH",
                       help="write the raw event log as JSONL (single "
                            "scenario only; same seed => byte-identical)")
    run_p.add_argument("--profile", action="store_true",
                       help="attach the sampled driver profiler to the "
                            "run (forces in-process execution); prints "
                            "the hot-frame table and folds profile.* "
                            "keys into the exported metrics")
    mj = run_p.add_argument_group(
        "multijob options", "apply with --workload multijob: replay a "
        "seeded job-arrival process against one shared executor pool")
    mj.add_argument("--mj-mix", default="sparkpi,pagerank-small",
                    metavar="W1,W2,...",
                    help="registry workloads cycled over arrivals")
    mj.add_argument("--mj-jobs", type=int, default=6, metavar="N",
                    help="number of arrivals to replay")
    mj.add_argument("--mj-interarrival", type=float, default=45.0,
                    metavar="SECONDS",
                    help="mean Poisson interarrival gap")
    mj.add_argument("--mj-pool-cores", type=int, default=8, metavar="N",
                    help="VM executor slots in the shared pool")
    mj.add_argument("--mj-lambda-cores", type=int, default=0, metavar="N",
                    help="extra Lambda-backed slots (hybrid_segue pool)")
    mj.add_argument("--mj-pool-style", choices=["vm", "hybrid_segue"],
                    default="vm",
                    help="spark_R_vm-style vs ss_hybrid_segue-style pool")
    mj.add_argument("--mj-mode", choices=["fifo", "fair"], default="fair",
                    help="scheduler-pool ordering for concurrent apps")
    mj.add_argument("--mj-max-concurrent", type=int, default=0,
                    metavar="N",
                    help="admission bound on concurrent apps "
                         "(0 = unlimited)")
    mj.add_argument("--mj-split-policy", default="none",
                    metavar="NAME",
                    help="admission-time split policy (a registered "
                         "'split' policy, e.g. planner); 'none' keeps "
                         "the fixed --mj-* pool shape")

    plan_p = sub.add_parser(
        "plan", help="rank FaaS/IaaS split candidates against an SLO, "
                     "execute the chosen split, and report "
                     "predicted-vs-actual",
        parents=[common])
    plan_p.add_argument("--workload", default="all",
                        metavar="NAME[,NAME...]|all",
                        help="registry workload(s) to plan for "
                             "(default: every registry workload)")
    plan_p.add_argument("--slo", type=float, default=None,
                        metavar="SECONDS",
                        help="deadline to plan against (default: each "
                             "workload's own slo_seconds)")
    plan_p.add_argument("--margin", type=float, default=None,
                        metavar="FRAC",
                        help="prediction-risk headroom as a fraction of "
                             "the SLO (default 0.1)")
    plan_p.add_argument("--dry-run", action="store_true",
                        help="print (and with --json, export) the "
                             "ranked plans without executing them")

    prof_p = sub.add_parser("profile", help="Figure 4-style sweep",
                            parents=[common])
    prof_p.add_argument("--workload", default="pagerank-large")
    prof_p.add_argument("--kind", choices=["lambda", "vm"],
                        default="lambda")
    prof_p.add_argument("--parallelism", default="1,2,4,8,16,32,64,128",
                        help="comma-separated executor counts")

    stream_p = sub.add_parser("stream", help="day-of-jobs simulation",
                              parents=[common])
    stream_p.add_argument("--hours", type=float, default=1.0)
    stream_p.add_argument("--k", type=float, default=0.0,
                          help="provision at m(t)+k*sigma(t) "
                               "(with --policy ksigma)")
    stream_p.add_argument("--policy", default="ksigma", metavar="NAME",
                          help="registered provisioning policy "
                               "(ksigma, mean, 1sigma, 2sigma, 3sigma; "
                               "see `repro list`)")
    stream_p.add_argument("--bridge", choices=["lambda", "none"],
                          default="lambda")
    stream_p.add_argument("--base-cores", type=float, default=20.0)
    stream_p.add_argument("--peak-cores", type=float, default=80.0)

    serve_p = sub.add_parser(
        "serve", help="start the HTTP control plane over a long-lived "
                      "shared cluster")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8000)
    serve_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed of the shared cluster")
    serve_p.add_argument("--max-concurrent", type=int, default=8,
                         metavar="N",
                         help="jobs allowed to run at once (admission "
                              "bound)")
    serve_p.add_argument("--max-queue", type=int, default=256, metavar="N",
                         help="submissions allowed to queue beyond the "
                              "running set before 503 backpressure")
    serve_p.add_argument("--pool-cores", type=int, default=8, metavar="N",
                         help="VM executor slots in the shared pool")
    serve_p.add_argument("--lambda-cores", type=int, default=0,
                         metavar="N",
                         help="extra Lambda-backed slots (hybrid_segue "
                              "pool)")
    serve_p.add_argument("--pool-style", choices=["vm", "hybrid_segue"],
                         default="vm")
    serve_p.add_argument("--mode", choices=["fifo", "fair"],
                         default="fair",
                         help="scheduler-pool ordering for pooled jobs")
    serve_p.add_argument("--sim-step", type=float, default=1.0,
                         metavar="SECONDS",
                         help="simulated seconds advanced per driver "
                              "step (pooled-job arrival granularity)")
    resil = serve_p.add_argument_group(
        "resilience options", "fault tolerance of the control plane "
        'itself; see DESIGN.md "Service resilience"')
    resil.add_argument("--state-dir", default=None, metavar="DIR",
                       help="serve state directory: enables the "
                            "crash-safe job journal; a restarted "
                            "server recovers queued/running jobs "
                            "(default: in-memory only)")
    resil.add_argument("--journal-fsync", action="store_true",
                       help="fsync the journal after every append "
                            "(durable against power loss, slower)")
    resil.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job wall-clock deadline; "
                            "jobs fail terminally past it (default: "
                            "no deadline)")
    resil.add_argument("--max-attempts", type=int, default=3,
                       metavar="N",
                       help="bounded retries for transient worker "
                            "failures (1 = never retry)")
    resil.add_argument("--breaker-threshold", type=int, default=5,
                       metavar="N",
                       help="consecutive Lambda-bridge failures that "
                            "open the circuit breaker")
    resil.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SECONDS",
                       help="open-breaker cooldown before the "
                            "half-open probe")
    resil.add_argument("--drain-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="SIGTERM graceful-drain budget before "
                            "queued jobs are checkpointed")
    obs = serve_p.add_argument_group(
        "observability options", "live telemetry of the serve plane; "
        'see DESIGN.md "Serve observability"')
    obs.add_argument("--profile", action="store_true",
                     help="sample the sim driver thread and export "
                          "profile.* frames via GET /metrics "
                          "(statistical, off by default)")
    obs.add_argument("--profile-interval", type=float, default=0.005,
                     metavar="SECONDS",
                     help="profiler sampling interval")
    obs.add_argument("--slo-window", type=float, default=60.0,
                     metavar="SECONDS",
                     help="rolling window for latency quantiles and "
                          "SLO burn rates")
    obs.add_argument("--slo-availability", type=float, default=0.99,
                     metavar="FRAC",
                     help="availability objective (accepted + "
                          "completed fraction)")
    obs.add_argument("--slo-latency-p99", type=float, default=0.25,
                     metavar="SECONDS",
                     help="admission-latency p99 objective")
    obs.add_argument("--slo-max-burn", type=float, default=14.4,
                     metavar="X",
                     help="burn-rate threshold that flips readyz "
                          "slo_burn_ok (14.4 = page-now in SRE "
                          "convention)")

    chaos_p = sub.add_parser(
        "chaos", help="drive a seeded chaos scenario against a live "
                      "control plane and report recovery/availability "
                      "(asserts the recovery invariants)")
    chaos_p.add_argument("--plan", default="throttle_storm",
                         choices=sorted(CHAOS_PLANS),
                         help="named fault storm to arm against the "
                              "shared cluster")
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="seed of the throwaway cluster (same "
                              "seed => same sim-side results)")
    chaos_p.add_argument("--jobs", type=int, default=12, metavar="N",
                         help="spec/pooled jobs submitted as load")
    chaos_p.add_argument("--kill-workers", type=int, default=2,
                         metavar="N",
                         help="worker-thread crashes injected at the "
                              "execution boundary")
    chaos_p.add_argument("--stall", type=float, default=0.2,
                         metavar="SECONDS",
                         help="how long the sim driver is wedged "
                              "(reads must keep answering)")
    chaos_p.add_argument("--lambda-probes", type=int, default=8,
                         metavar="N",
                         help="Lambda-bridge probes hammered through "
                              "the circuit breaker")
    chaos_p.add_argument("--storm-duration", type=float, default=2.0,
                         metavar="SECONDS",
                         help="how long the armed fault storm holds "
                              "before lifting (host clock)")
    chaos_p.add_argument("--state-dir", default=None, metavar="DIR",
                         help="journal directory for the kill-9 + "
                              "restart recovery phase (default: a "
                              "temp dir)")
    chaos_p.add_argument("--no-journal", action="store_true",
                         help="skip the journal recovery phase")
    chaos_p.add_argument("--json", default=None, metavar="PATH",
                         help="export the chaos report as one "
                              "versioned envelope")

    trace_p = sub.add_parser(
        "trace", help="render the causal span tree of one served job "
                      "(GET /trace/{job_id} of a live `repro serve`)")
    trace_p.add_argument("job_id", metavar="JOB_ID",
                         help="the job to trace, e.g. job-000001")
    trace_p.add_argument("--url", default="http://127.0.0.1:8000",
                         metavar="URL",
                         help="base URL of the control plane")
    trace_p.add_argument("--file", default=None, metavar="PATH",
                         help="read a saved /trace/{job_id} document "
                              "instead of fetching")
    trace_p.add_argument("--timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="HTTP timeout for the fetch")
    trace_p.add_argument("--no-times", action="store_true",
                         help="hide wall-clock timings (prints the "
                              "deterministic tree the tests "
                              "fingerprint)")
    trace_p.add_argument("--chrome-out", default=None, metavar="PATH",
                         help="write the merged host-span + sim-event "
                              "Chrome trace JSON")
    trace_p.add_argument("--json", default=None, metavar="PATH",
                         help="save the raw trace document")

    report_p = sub.add_parser(
        "report", help="render a per-run breakdown from a RunRecord "
                       "JSONL (repro run --json), an event log "
                       "(repro run --events-out), or a JobStatus "
                       "document (curl of GET /jobs/{id})")
    report_p.add_argument("path", metavar="PATH",
                          help="RunRecord JSONL, event-log JSONL, or "
                               "JobStatus JSON file")
    report_p.add_argument("--index", type=int, default=None,
                          help="render only the Nth record of a "
                               "RunRecord file (0-based)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "plan": cmd_plan,
                "profile": cmd_profile, "stream": cmd_stream,
                "serve": cmd_serve, "chaos": cmd_chaos,
                "trace": cmd_trace, "report": cmd_report}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
