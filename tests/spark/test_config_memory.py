"""Unit tests for SparkConf and the JVM memory/GC model."""

import pytest

from repro.spark import SparkConf
from repro.spark.memory import (
    COMFORTABLE_HEAP_BYTES,
    MAX_SLOWDOWN,
    aging_slowdown,
    gc_slowdown,
    pressure_slowdown,
    usable_heap_bytes,
)

GB = 1024 ** 3


# ---------------------------------------------------------------------------
# SparkConf
# ---------------------------------------------------------------------------

def test_defaults_accessible():
    conf = SparkConf()
    assert conf.get("spark.task.maxFailures") == 4
    assert conf.get("spark.lambda.executor.timeout") is None


def test_override_at_construction():
    conf = SparkConf({"spark.locality.wait": 1.0})
    assert conf.get("spark.locality.wait") == 1.0


def test_unknown_key_rejected_everywhere():
    with pytest.raises(KeyError):
        SparkConf({"spark.made.up": 1})
    conf = SparkConf()
    with pytest.raises(KeyError):
        conf.get("spark.made.up")
    with pytest.raises(KeyError):
        conf.set("spark.made.up", 1)


def test_set_is_copy_on_write():
    base = SparkConf()
    derived = base.set("spark.task.maxFailures", 2)
    assert base.get("spark.task.maxFailures") == 4
    assert derived.get("spark.task.maxFailures") == 2


def test_contains_and_items():
    conf = SparkConf()
    assert "spark.locality.wait" in conf
    assert "nope" not in conf
    assert dict(conf.items())["spark.executor.cores"] == 1


# ---------------------------------------------------------------------------
# Memory / GC model
# ---------------------------------------------------------------------------

def test_usable_heap_is_a_fraction():
    assert usable_heap_bytes(10 * GB) == pytest.approx(6 * GB)
    with pytest.raises(ValueError):
        usable_heap_bytes(0)


def test_no_pressure_when_fits():
    assert pressure_slowdown(1 * GB, 4 * GB) == 1.0


def test_pressure_grows_superlinearly():
    mem = 2 * GB
    mild = pressure_slowdown(1.5 * GB, mem)
    severe = pressure_slowdown(3.0 * GB, mem)
    assert severe > mild > 1.0


def test_pressure_capped():
    assert pressure_slowdown(100 * GB, 1 * GB) == MAX_SLOWDOWN


def test_pressure_validation():
    with pytest.raises(ValueError):
        pressure_slowdown(-1, GB)


def test_aging_only_below_comfortable_heap():
    assert aging_slowdown(COMFORTABLE_HEAP_BYTES, 3600) == 1.0
    assert aging_slowdown(1536 * 1024 ** 2, 3600) > 1.0


def test_aging_grows_with_time_and_tightness():
    lam = 1536 * 1024 ** 2
    assert aging_slowdown(lam, 600) > aging_slowdown(lam, 60)
    smaller = 512 * 1024 ** 2
    assert aging_slowdown(smaller, 600) > aging_slowdown(lam, 600)


def test_aging_validation():
    with pytest.raises(ValueError):
        aging_slowdown(GB, -1)


def test_combined_slowdown_is_product_capped():
    mem = 1536 * 1024 ** 2
    combined = gc_slowdown(2 * GB, mem, 300)
    assert combined == pytest.approx(
        min(MAX_SLOWDOWN,
            pressure_slowdown(2 * GB, mem) * aging_slowdown(mem, 300)))


def test_lambda_vs_vm_gc_asymmetry():
    """The §4.2 motivation in one line: the same task on a Lambda-sized
    heap suffers GC a VM-sized heap does not."""
    working_set = 1.2 * GB
    on_lambda = gc_slowdown(working_set, 1536 * 1024 ** 2, 300)
    on_vm = gc_slowdown(working_set, 8 * GB, 300)
    assert on_vm == 1.0
    assert on_lambda > 1.2
