"""Dynamic executor allocation (Spark's ``ExecutorAllocationManager``).

Watches the task backlog and asks an :class:`ExecutorProvider` for more
executors with Spark's exponential ramp-up (1, 2, 4, ... targets), and
releases executors idle past ``spark.dynamicAllocation.executorIdleTimeout``.

The vanilla-Spark autoscaling baseline ("Spark r/R autoscale", §5.1) uses
this with a provider that procures *new VMs* — paying their ~2 minute
provisioning delay. SplitServe's launching facility replaces the provider
with one that bridges the gap using Lambdas instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.kernel import Environment
    from repro.spark.executor import Executor
    from repro.spark.task_scheduler import TaskScheduler


class ExecutorProvider:
    """What the allocation manager calls to change cluster size."""

    def request_executors(self, count: int) -> None:
        """Ask for ``count`` additional executors (asynchronous)."""
        raise NotImplementedError

    def release_executor(self, executor: "Executor") -> None:
        """Return one idle executor's resources."""
        raise NotImplementedError


class ExecutorAllocationManager:
    """Backlog-driven scale-up, idleness-driven scale-down."""

    def __init__(
        self,
        env: "Environment",
        scheduler: "TaskScheduler",
        provider: ExecutorProvider,
        min_executors: int = 0,
        max_executors: int = 10_000,
        poll_interval_s: float = 0.5,
    ) -> None:
        conf = scheduler.conf
        self.env = env
        self.scheduler = scheduler
        self.provider = provider
        self.min_executors = min_executors
        self.max_executors = max_executors
        self.poll_interval_s = poll_interval_s
        self.backlog_timeout_s = float(
            conf.get("spark.dynamicAllocation.schedulerBacklogTimeout"))
        self.idle_timeout_s = float(
            conf.get("spark.dynamicAllocation.executorIdleTimeout"))
        self._backlog_since: Optional[float] = None
        self._requested_outstanding = 0
        self._ramp = 1
        self._idle_since = {}
        self._stopped = False
        env.process(self._loop())

    def stop(self) -> None:
        self._stopped = True

    def executor_registered(self) -> None:
        """Provider hook: one previously requested executor has arrived."""
        if self._requested_outstanding > 0:
            self._requested_outstanding -= 1

    # ------------------------------------------------------------------

    @property
    def _current_count(self) -> int:
        return len(self.scheduler.executors)

    def _target_shortfall(self) -> int:
        """Executors needed to run every pending + running task at once,
        which is Spark's maxNumExecutorsNeeded with 1 task per executor."""
        needed = (self.scheduler.pending_task_count
                  + self.scheduler.running_task_count)
        needed = min(needed, self.max_executors)
        return max(0, needed - self._current_count - self._requested_outstanding)

    def _loop(self):
        while not self._stopped:
            yield self.env.timeout(self.poll_interval_s)
            if self._stopped:
                return
            self._maybe_scale_up()
            self._maybe_scale_down()

    def _maybe_scale_up(self) -> None:
        if self.scheduler.pending_task_count == 0:
            self._backlog_since = None
            self._ramp = 1
            return
        if self._backlog_since is None:
            self._backlog_since = self.env.now
            return
        if self.env.now - self._backlog_since < self.backlog_timeout_s:
            return
        shortfall = self._target_shortfall()
        if shortfall <= 0:
            return
        grant = min(shortfall, self._ramp)
        self._ramp *= 2  # Spark doubles the request each round
        self._requested_outstanding += grant
        self.provider.request_executors(grant)
        self._backlog_since = self.env.now  # re-arm for the next round

    def _maybe_scale_down(self) -> None:
        now = self.env.now
        live = list(self.scheduler.executors.values())
        for ex in live:
            if ex.is_free:
                since = self._idle_since.setdefault(ex.executor_id, now)
                if (now - since >= self.idle_timeout_s
                        and self._current_count > self.min_executors):
                    self._idle_since.pop(ex.executor_id, None)
                    self.scheduler.decommission_executor(ex, graceful=True)
                    self.provider.release_executor(ex)
            else:
                self._idle_since.pop(ex.executor_id, None)
