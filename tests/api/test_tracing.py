"""Causal job tracing end to end: ``/trace/{id}``, determinism, CLI.

The load-bearing scenario is fixed-seed and deliberately eventful — a
blocker pins the one running slot so the target job's trace stays open
through a forced circuit-breaker flip, then the target's first attempt
is crashed by chaos so the tree carries a retry. The tests assert the
tree is complete (parent-linked, no orphans), that its deterministic
fingerprint and the deterministic ``/metrics`` subset are byte-identical
across runs, and that a kill-9 + journal recovery reproduces the same
bytes too.
"""

import json
import tempfile
import threading

import pytest

from repro.api import schemas
from repro.api.app import create_app
from repro.api.service import ServeConfig, ServeRuntime
from repro.api.testclient import TestClient
from repro.observability.serve_obs import (
    deterministic_metric_lines,
    orphan_spans,
    render_span_tree,
    span_tree_fingerprint,
    trace_id_for_job,
)

_GATES = {}


def _gate(name: str) -> threading.Event:
    return _GATES.setdefault(name, threading.Event())


def blocking_job(spec):
    gate = _GATES[dict(spec.extra)["gate"]]
    assert gate.wait(timeout=30.0), "gate never released"
    return {"workload": "blocker", "duration_s": 1.0, "cost": 0.0}


def _eventful_config() -> ServeConfig:
    return ServeConfig(max_concurrent=1, max_queue=8, seed=0,
                       pool_cores=4, retry_base_backoff_s=0.01,
                       max_attempts=3, breaker_failure_threshold=2,
                       breaker_cooldown_s=60.0)


def _run_eventful(tag: str):
    """The fixed-seed retry + breaker scenario; returns
    ``(target_spans, deterministic_metric_lines, runtime_jobs)``."""
    gate = _gate(tag)
    service = ServeRuntime(_eventful_config()).start()
    try:
        service.submit({
            "workload": "blocker",
            "scenario": "custom:tests.api.test_tracing:blocking_job",
            "seed": 0, "extra": {"gate": tag}})
        service.inject_chaos({"crash_next_submissions": 1})
        target = service.submit({"workload": "sparkpi",
                                 "scenario": "spark_R_vm", "seed": 1})
        # Flip the breaker while both traces are open: the transition
        # must land as a span event on every live trace.
        for _ in range(service.breaker.failure_threshold):
            service.breaker.record_failure()
        gate.set()
        assert service.drain(timeout=60.0)
        assert service.job(target.job_id).state == schemas.JOB_COMPLETED
        return (service.tracer.spans(target.job_id),
                deterministic_metric_lines(service.metrics_text()))
    finally:
        gate.set()
        service.close()


def test_eventful_trace_is_complete_with_retry_and_breaker():
    spans, _ = _run_eventful("tracing-complete")
    assert [s["name"] for s in spans] == [
        "job", "admission", "breaker:closed->open", "attempt-1",
        "retry-wait-1", "attempt-2"]
    assert orphan_spans(spans) == []
    by_name = {s["name"]: s for s in spans}
    root = by_name["job"]
    assert root["parent_span_id"] is None
    assert root["status"] == "ok"
    for name in ("admission", "breaker:closed->open", "attempt-1",
                 "retry-wait-1", "attempt-2"):
        assert by_name[name]["parent_span_id"] == root["span_id"], name
    assert by_name["attempt-1"]["status"] == "retry"
    assert "WorkerCrashError" in by_name["attempt-1"]["attrs"]["error"]
    assert by_name["breaker:closed->open"]["attrs"]["state"] == "open"
    # Every span closed — no dangling "open" status after drain.
    assert all(s["status"] != "open" for s in spans)
    rendered = render_span_tree(spans)
    for name in ("job", "attempt-1", "retry-wait-1", "attempt-2",
                 "breaker:closed->open"):
        assert name in rendered


def test_eventful_trace_and_metrics_are_byte_identical_across_runs():
    spans1, metrics1 = _run_eventful("tracing-det-a")
    spans2, metrics2 = _run_eventful("tracing-det-b")
    assert span_tree_fingerprint(spans1) == span_tree_fingerprint(spans2)
    assert (render_span_tree(spans1, include_times=False)
            == render_span_tree(spans2, include_times=False))
    assert metrics1, "deterministic metric subset must not be empty"
    assert metrics1 == metrics2


def test_trace_fingerprint_survives_kill9_and_journal_recovery():
    def crash_and_recover():
        with tempfile.TemporaryDirectory(
                prefix="repro-trace-recover-") as tmp:
            config = ServeConfig(max_concurrent=1, max_queue=8, seed=0,
                                 pool_cores=4, state_dir=tmp,
                                 retry_base_backoff_s=0.01,
                                 max_attempts=3)
            first = ServeRuntime(config).start()
            ids = []
            try:
                for i in range(3):
                    ids.append(first.submit(
                        {"workload": "sparkpi",
                         "scenario": "spark_R_vm",
                         "seed": 100 + i}).job_id)
            finally:
                first.hard_stop()  # as close to kill -9 as in-process gets
            second = ServeRuntime(config).start()
            try:
                assert second.drain(timeout=60.0)
                fingerprints = []
                for job_id in ids:
                    spans = second.tracer.spans(job_id)
                    assert spans, f"no spans for recovered {job_id}"
                    assert orphan_spans(spans) == []
                    # Recovered traces keep the job's deterministic id
                    # and carry the recovery provenance on the root.
                    assert spans[0]["trace_id"] == trace_id_for_job(job_id)
                    assert spans[0]["attrs"]["recovered"] is True
                    fingerprints.append(span_tree_fingerprint(spans))
                return (fingerprints,
                        deterministic_metric_lines(second.metrics_text()))
            finally:
                second.close()

    fp1, metrics1 = crash_and_recover()
    fp2, metrics2 = crash_and_recover()
    assert fp1 == fp2
    assert metrics1 == metrics2
    assert any("recovered" in line for line in metrics1)


def _fetch_trace_document():
    """Run one job over HTTP and return its raw /trace body + id."""
    config = ServeConfig(max_concurrent=2, max_queue=8, pool_cores=4)
    with TestClient(create_app(config)) as client:
        r = client.post("/jobs", json={"workload": "sparkpi",
                                       "scenario": "spark_R_vm",
                                       "seed": 0})
        job_id = r.data["job_id"]
        done = client.get(f"/jobs/{job_id}", params={"wait": 60})
        assert done.data["state"] == schemas.JOB_COMPLETED
        assert client.get("/trace/nope").status == 404
        response = client.get(f"/trace/{job_id}")
        assert response.status == 200
        return response, job_id


@pytest.mark.smoke
def test_trace_endpoint_returns_parent_linked_spans():
    response, job_id = _fetch_trace_document()
    envelope = response.envelope()
    assert envelope.kind == schemas.KIND_TRACE
    payload = envelope.data
    assert payload["job_id"] == job_id
    assert payload["trace_id"] == trace_id_for_job(job_id)
    assert orphan_spans(payload["spans"]) == []


@pytest.mark.smoke
def test_cli_trace_renders_saved_document(tmp_path, capsys):
    response, job_id = _fetch_trace_document()
    body = response.text
    doc = tmp_path / "trace.json"
    doc.write_text(body, encoding="utf-8")
    chrome = tmp_path / "chrome.json"

    from repro.cli import main
    rc = main(["trace", job_id, "--file", str(doc),
               "--chrome-out", str(chrome)])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"trace {trace_id_for_job(job_id)}" in out
    assert "job" in out and "attempt-1" in out
    exported = json.loads(chrome.read_text(encoding="utf-8"))
    assert exported["traceEvents"]
    names = {e.get("name") for e in exported["traceEvents"]}
    assert "job" in names and "attempt-1" in names
