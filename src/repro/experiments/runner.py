"""Parallel, cached execution of experiment specs.

:class:`ExperimentRunner` fans a list of specs out over a
``ProcessPoolExecutor``. Each spec builds its own simulation
:class:`~repro.simulation.Environment` and seeded
:class:`~repro.simulation.RandomStreams`, so worker processes share no
state and the resulting records are bit-identical to a serial run —
only ``wall_time_s`` differs.

The pool prefers the ``fork`` start method where available (workers
inherit the already-imported interpreter instead of re-importing numpy)
and falls back to the platform default elsewhere.
"""

from __future__ import annotations

import gc
import importlib
import math
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments.cache import ResultCache, cache_enabled
from repro.experiments.records import RunRecord
from repro.experiments.spec import (
    CUSTOM_PREFIX,
    MULTIJOB_SCENARIO,
    PLANNED_SCENARIO,
    PROFILE_SCENARIOS,
    STREAM_SCENARIO,
    ExperimentSpec,
)


def run_spec(spec: ExperimentSpec) -> RunRecord:
    """Execute one spec in-process and return its record.

    Python-level errors are captured on the record (``error`` +
    ``failed``) rather than raised, so one bad spec never aborts a
    fan-out batch.
    """
    started = time.perf_counter()
    # Pause the cyclic collector for the (bounded) lifetime of one run:
    # a replay allocates hundreds of thousands of short-lived objects
    # that die by refcount, and gen-0 sweeps every ~700 net allocations
    # re-scan live sim state for 5-15% of the run's wall time. Collection
    # timing has no observable effect on results (nothing in the sim is
    # finalizer-driven); whatever cycles a run leaves behind are swept at
    # the caller's next threshold crossing after re-enable.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        record = _dispatch(spec)
    except Exception as exc:
        record = RunRecord(
            spec=spec, workload=spec.workload, failed=True,
            failure_reason=f"harness error: {exc}",
            error=traceback.format_exc())
    finally:
        if gc_was_enabled:
            gc.enable()
    record.wall_time_s = time.perf_counter() - started
    return record


def _dispatch(spec: ExperimentSpec) -> RunRecord:
    scenario = spec.scenario
    if scenario in PROFILE_SCENARIOS:
        from repro.analysis.profiling import profile_point
        point = profile_point(spec)
        return RunRecord(
            spec=spec, workload=spec.make_workload().name,
            duration_s=point.duration_s, cost=point.cost,
            metrics={"parallelism": point.parallelism,
                     "executor_kind": point.executor_kind})
    if scenario == STREAM_SCENARIO:
        return _run_stream(spec)
    if scenario == MULTIJOB_SCENARIO:
        from repro.cluster.multijob import run_multijob
        return run_multijob(spec)
    if scenario == PLANNED_SCENARIO:
        from repro.planner.planned import run_planned
        return run_planned(spec)
    if scenario.startswith(CUSTOM_PREFIX):
        module_name, func_name = scenario[len(CUSTOM_PREFIX):].split(":")
        fn = getattr(importlib.import_module(module_name), func_name)
        out = fn(spec)
        if isinstance(out, RunRecord):
            return out
        return RunRecord(spec=spec, **out)
    from repro.core.scenarios import run_scenario
    return run_scenario(spec).to_record(spec)


def _run_stream(spec: ExperimentSpec) -> RunRecord:
    """The §4.1 day-of-jobs simulation, parameterized via ``spec.extra``
    (hours, k, policy, bridge, base_cores, peak_cores). ``policy`` names
    a registered provisioning policy (default ``ksigma``, which consumes
    ``k``); named fixed policies like ``2sigma`` ignore ``k``."""
    from repro.core.policies import PROVISIONING, make_policy
    from repro.core.stream import JobStreamSimulator
    from repro.workloads.traces import DiurnalTrace

    params = dict(spec.extra)
    hours = float(params.get("hours", 1.0))
    demand = DiurnalTrace(base_cores=float(params.get("base_cores", 20.0)),
                          peak_cores=float(params.get("peak_cores", 80.0)),
                          sigma_fraction=float(params.get("sigma_fraction", 0.2)),
                          seed=spec.seed).generate(hours=hours + 1)
    policy_name = str(params.get("policy", "ksigma"))
    policy_params = ({"k": float(params.get("k", 0.0))}
                     if policy_name == "ksigma" else {})
    sim = JobStreamSimulator(demand,
                             make_policy(policy_name,
                                         expect_kind=PROVISIONING,
                                         **policy_params),
                             bridge=str(params.get("bridge", "lambda")),
                             seed=spec.seed)
    report = sim.run(hours * 3600.0)
    return RunRecord(
        spec=spec, workload="diurnal-stream",
        duration_s=hours * 3600.0, cost=report.total_cost,
        cost_breakdown={"vm": report.vm_cost, "lambda": report.lambda_cost},
        metrics={"policy": report.policy_label,
                 "bridge": report.bridge,
                 "jobs": len(report.jobs),
                 "slo_attainment": report.slo_attainment,
                 "mean_duration": report.mean_duration,
                 "lambda_bridged_jobs": report.lambda_bridged_jobs,
                 "vm_cost": report.vm_cost,
                 "lambda_cost": report.lambda_cost})


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point (dicts cross the pipe, not dataclasses)."""
    return run_spec(ExperimentSpec.from_dict(payload)).to_dict()


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class ExperimentRunner:
    """Execute specs in parallel, memoizing results on disk.

    :param workers: worker processes; default ``os.cpu_count()``.
        ``workers=1`` runs everything in-process (identical numbers).
    :param cache_dir: cache root; default ``$REPRO_CACHE_DIR`` or
        ``.repro_cache``.
    :param cache: set False to bypass the cache entirely. ``custom:``
        scenarios are never cached — their code lives outside the
        ``repro`` package, so the code-version key cannot see it change.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 cache: bool = True) -> None:
        self.workers = max(1, int(workers) if workers else
                           (os.cpu_count() or 1))
        self.cache: Optional[ResultCache] = None
        if cache and cache_enabled():
            self.cache = ResultCache(cache_dir)

    def run(self, specs: Iterable[ExperimentSpec],
            keep_errors: bool = True) -> List[RunRecord]:
        """Execute the specs, returning records in the input order.

        Duplicate specs are executed once and share a record. With
        ``keep_errors=False``, the first harness error is re-raised
        instead of being returned on its record.
        """
        ordered = list(specs)
        unique: Dict[ExperimentSpec, Optional[RunRecord]] = {}
        for spec in ordered:
            unique.setdefault(spec, None)

        misses: List[ExperimentSpec] = []
        for spec in unique:
            hit = self.cache.get(spec) if self._cacheable(spec) else None
            if hit is not None:
                unique[spec] = hit
            else:
                misses.append(spec)

        for spec, record in zip(misses, self._execute(misses)):
            if not keep_errors and record.error is not None:
                raise RuntimeError(
                    f"spec {spec.short_hash} ({spec.workload}, "
                    f"{spec.scenario}) failed:\n{record.error}")
            if self._cacheable(spec) and record.error is None:
                self.cache.put(spec, record)
            unique[spec] = record
        return [unique[spec] for spec in ordered]

    def _cacheable(self, spec: ExperimentSpec) -> bool:
        return (self.cache is not None
                and not spec.scenario.startswith(CUSTOM_PREFIX))

    def _execute(self, specs: Sequence[ExperimentSpec]) -> List[RunRecord]:
        if not specs:
            return []
        workers = min(self.workers, len(specs))
        if workers <= 1:
            return [run_spec(spec) for spec in specs]
        payloads = [spec.to_dict() for spec in specs]
        # Chunk to amortize IPC for many small specs while keeping the
        # workers evenly loaded.
        chunksize = max(1, math.ceil(len(payloads) / (workers * 4)))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            results = list(pool.map(_execute_payload, payloads,
                                    chunksize=chunksize))
        return [RunRecord.from_dict(data) for data in results]
