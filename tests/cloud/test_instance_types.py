"""Unit tests for the instance-type catalogue details."""

import pytest

from repro.cloud import INSTANCE_CATALOGUE, instance_type
from repro.cloud.instance_types import fewest_instances_for_cores


def test_catalogue_is_the_m4_family():
    assert set(INSTANCE_CATALOGUE) == {
        "m4.large", "m4.xlarge", "m4.2xlarge", "m4.4xlarge",
        "m4.10xlarge", "m4.16xlarge"}


def test_specs_scale_with_size():
    """vCPUs, memory, and price all grow monotonically up the family."""
    ladder = ["m4.large", "m4.xlarge", "m4.2xlarge", "m4.4xlarge",
              "m4.10xlarge", "m4.16xlarge"]
    types = [instance_type(name) for name in ladder]
    for small, big in zip(types, types[1:]):
        assert big.vcpus > small.vcpus
        assert big.memory_bytes > small.memory_bytes
        assert big.price_per_hour > small.price_per_hour
        assert big.ebs_bandwidth_bytes_per_s >= small.ebs_bandwidth_bytes_per_s


def test_memory_per_core_constant_across_family():
    """The m4 family keeps 4 GiB per vCPU — load-bearing for the K-means
    cache-thrash calibration (same per-executor heap at any r)."""
    for itype in INSTANCE_CATALOGUE.values():
        per_core = itype.memory_bytes / itype.vcpus
        assert per_core == pytest.approx(4 * 1024 ** 3)


def test_price_per_core_constant_across_family():
    """On-demand m4 pricing is linear in vCPUs ($0.05/vCPU-hour)."""
    for itype in INSTANCE_CATALOGUE.values():
        assert itype.price_per_vcpu_hour == pytest.approx(0.05)


def test_paper_ebs_bandwidths():
    """The two numbers §5.2 quotes: 750 Mbps (m4.xlarge, the PageRank
    HDFS node) and 2,000 Mbps (m4.4xlarge, the PageRank workers)."""
    assert instance_type("m4.xlarge").ebs_bandwidth_bytes_per_s == 750e6 / 8
    assert instance_type("m4.4xlarge").ebs_bandwidth_bytes_per_s == 2000e6 / 8


def test_fewest_instances_totals_cover_cores():
    for cores in (1, 2, 3, 7, 16, 33, 64, 65, 128, 200):
        picked = fewest_instances_for_cores(cores)
        assert sum(t.vcpus for t in picked) >= cores


def test_fewest_instances_profiling_ladder():
    """§5.1's ladder: one instance per profiled core count."""
    for cores in (1, 2, 4, 8, 16, 32, 64):
        assert len(fewest_instances_for_cores(cores)) == 1


def test_str_is_name():
    assert str(instance_type("m4.large")) == "m4.large"
