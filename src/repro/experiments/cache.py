"""On-disk result cache keyed by spec hash + code version.

Layout: ``<root>/<code-version>/<spec-hash>.json``, one RunRecord per
file. The code version is a digest over every ``*.py`` file of the
installed ``repro`` package, so *any* source change invalidates every
cached record — coarse, but impossible to get stale numbers from.
Entries from older code versions are left on disk (they are cheap) and
simply never match again.

The default root is ``.repro_cache`` under the current directory, or
``$REPRO_CACHE_DIR`` when set; ``REPRO_CACHE=0`` disables caching
process-wide.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.experiments.records import RunRecord
from repro.experiments.spec import ExperimentSpec

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (memoized per process)."""
    global _code_version
    if _code_version is None:
        import repro
        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(source.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to 0/false/no/off."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "false", "no", "off")


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """Get/put RunRecords by spec under one code version."""

    def __init__(self, root: Optional[str] = None,
                 version: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else default_cache_dir())
        self.version = version if version is not None else code_version()

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / self.version / f"{spec.spec_hash()}.json"

    def get(self, spec: ExperimentSpec) -> Optional[RunRecord]:
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        record = RunRecord.from_dict(data)
        record.cached = True
        return record

    def put(self, spec: ExperimentSpec, record: RunRecord) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader never sees a torn file.
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record.to_dict(), fh, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
