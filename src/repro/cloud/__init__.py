"""Cloud substrate: simulated IaaS VMs, FaaS functions, network, billing.

This package models exactly the AWS properties the SplitServe evaluation
depends on:

- EC2 m4-family instances with per-type vCPU/memory/dedicated-EBS
  bandwidth, a ~2 minute provisioning delay, and per-second billing with a
  60 s minimum charge (:mod:`repro.cloud.vm`,
  :mod:`repro.cloud.instance_types`, :mod:`repro.cloud.pricing`).
- Lambda-style cloud functions with 1 vCPU per 1.5 GB, warm/cold start
  paths, a 15 minute lifetime cap, 512 MB of /tmp, memory-proportional
  network bandwidth, and 100 ms-granularity GB-second billing
  (:mod:`repro.cloud.lambda_fn`).
- Fair-share bandwidth links used for both EBS and network contention
  (:mod:`repro.cloud.network`).
- A :class:`~repro.cloud.provisioner.CloudProvider` facade that owns the
  warm pool, the fleet, and the billing meter.
"""

from repro.cloud.burstable import BURSTABLE_CATALOGUE, BurstableSpec, BurstableVM
from repro.cloud.instance_types import (
    INSTANCE_CATALOGUE,
    InstanceType,
    fewest_instances_for_cores,
    instance_type,
)
from repro.cloud.lambda_fn import LambdaConfig, LambdaInstance, LambdaState
from repro.cloud.network import FairShareLink
from repro.cloud.pricing import BillingMeter, LambdaPricing, VMPricing
from repro.cloud.provisioner import CloudProvider
from repro.cloud.spot import SpotVM
from repro.cloud.vm import VirtualMachine, VMState

__all__ = [
    "BURSTABLE_CATALOGUE",
    "BillingMeter",
    "BurstableSpec",
    "BurstableVM",
    "CloudProvider",
    "FairShareLink",
    "INSTANCE_CATALOGUE",
    "InstanceType",
    "LambdaConfig",
    "LambdaInstance",
    "LambdaPricing",
    "LambdaState",
    "SpotVM",
    "VMPricing",
    "VMState",
    "VirtualMachine",
    "fewest_instances_for_cores",
    "instance_type",
]
