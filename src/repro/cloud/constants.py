"""Calibrated constants for the cloud substrate.

Single source of truth for every number the simulation borrows from AWS
circa 2020 (the paper's setting). DESIGN.md §4 documents the calibration;
values that the paper states explicitly are cited inline.
"""

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Megabits/s -> bytes/s (EBS bandwidth is quoted in Mbps by AWS).
MBPS = 1e6 / 8.0

SECONDS_PER_HOUR = 3600.0

# ---------------------------------------------------------------------------
# EC2 (IaaS) — §3 "an AWS VM may take up to 2 minutes or more"
# ---------------------------------------------------------------------------

#: Mean provisioning delay for a freshly requested VM, seconds.
VM_STARTUP_MEAN_S = 120.0
#: Coefficient of variation of the (lognormal) provisioning delay.
VM_STARTUP_CV = 0.15

#: Minimum billed duration per VM (AWS bills at least 1 minute).
VM_MIN_BILL_S = 60.0
#: Billing granularity after the minimum (1 second increments).
VM_BILL_INCREMENT_S = 1.0

# ---------------------------------------------------------------------------
# Lambda (FaaS) — §3 limits and §3 "Why Combine VMs and Lambdas?"
# ---------------------------------------------------------------------------

#: Maximum Lambda memory (paper: "at most 3GB main memory").
LAMBDA_MAX_MEMORY_MB = 3008
#: Memory that buys one full vCPU (paper: "one vCPU per 1.5GB").
LAMBDA_MB_PER_VCPU = 1536
#: Warm-start latency (paper: "about 100ms when warm").
LAMBDA_WARM_START_MEAN_S = 0.100
LAMBDA_WARM_START_CV = 0.25
#: Cold-start latency (fresh Firecracker microVM + runtime + code fetch).
LAMBDA_COLD_START_MEAN_S = 8.0
LAMBDA_COLD_START_CV = 0.30
#: Hard lifetime cap (paper: "terminated after 15 minutes").
LAMBDA_LIFETIME_S = 900.0
#: Local scratch space (paper: "/tmp directory of size 512MB").
LAMBDA_TMP_BYTES = 512 * MB
#: How long the provider keeps an idle container warm (paper footnote:
#: "AWS keeps dormant Lambda alive for ~90 minutes").
LAMBDA_WARM_KEEPALIVE_S = 90 * 60.0

#: Lambda network bandwidth scales roughly linearly with allocated memory
#: (measured by Wang et al., USENIX ATC'18, cited by the paper). At the
#: 1536 MB allocation SplitServe uses, ~40 MB/s.
LAMBDA_NET_BYTES_PER_S_PER_MB = 40.0 * MB / 1536.0

#: Price per GB-second of Lambda execution (us-east-1, 2020).
LAMBDA_PRICE_PER_GB_S = 0.0000166667
#: Price per million invocations.
LAMBDA_PRICE_PER_1M_INVOCATIONS = 0.20
#: Billing granularity: duration rounded UP to the nearest 100 ms.
LAMBDA_BILL_INCREMENT_S = 0.100

# ---------------------------------------------------------------------------
# S3 — the Qubole baseline's shuffle substrate (§2, §3)
# ---------------------------------------------------------------------------

#: Mean per-request latency (first byte), seconds.
S3_REQUEST_LATENCY_MEAN_S = 0.030
S3_REQUEST_LATENCY_CV = 0.40
#: Per-stream throughput to/from S3 (bytes/s) once the request is open.
S3_STREAM_BYTES_PER_S = 55.0 * MB
#: Per-bucket sustained request-rate ceilings before throttling kicks in
#: (AWS: 3,500 PUT/s, 5,500 GET/s per prefix; the paper: "throttle when
#: the aggregate throughput reaches a few thousands of requests/s").
S3_PUT_RATE_LIMIT = 3500.0
S3_GET_RATE_LIMIT = 5500.0
#: Request prices (us-east-1, 2020): $0.005 / 1000 PUT, $0.0004 / 1000 GET.
S3_PRICE_PER_PUT = 5.0e-6
S3_PRICE_PER_GET = 4.0e-7

# ---------------------------------------------------------------------------
# SQS — Flint's shuffle substrate (§2)
# ---------------------------------------------------------------------------

SQS_REQUEST_LATENCY_MEAN_S = 0.010
SQS_REQUEST_LATENCY_CV = 0.40
#: SQS messages carry at most 256 KB; larger payloads must be chunked.
SQS_MAX_MESSAGE_BYTES = 256 * KB
#: $0.40 per million requests (standard queue, 2020).
SQS_PRICE_PER_REQUEST = 4.0e-7

# ---------------------------------------------------------------------------
# Redis / ElastiCache — Locus's shuffle substrate (§2)
# ---------------------------------------------------------------------------

REDIS_REQUEST_LATENCY_MEAN_S = 0.0005
REDIS_REQUEST_LATENCY_CV = 0.30
#: Hourly price of the cache.r4.2xlarge-class node Locus uses.
REDIS_NODE_PRICE_PER_HOUR = 1.82
#: Aggregate throughput of one in-memory cache node.
REDIS_NODE_BYTES_PER_S = 400.0 * MB

# ---------------------------------------------------------------------------
# HDFS — SplitServe's shuffle substrate (§4.3)
# ---------------------------------------------------------------------------

#: Software overhead per HDFS RPC (open/create + pipeline setup).
HDFS_REQUEST_LATENCY_MEAN_S = 0.004
HDFS_REQUEST_LATENCY_CV = 0.30
#: Default replication factor. The paper runs a single HDFS node colocated
#: with the master, so experiments use replication=1.
HDFS_DEFAULT_REPLICATION = 1
HDFS_BLOCK_BYTES = 128 * MB

# ---------------------------------------------------------------------------
# JVM / executor model (§4.2 "smaller memory on Lambdas results in more
# frequent invocations of the JVM garbage collector")
# ---------------------------------------------------------------------------

#: Fraction of executor memory available for task working sets after the
#: Spark runtime's own footprint.
EXECUTOR_USABLE_MEMORY_FRACTION = 0.60
#: GC slowdown model: slowdown = 1 + GC_PRESSURE_COEFF * pressure^GC_EXP
#: where pressure = working_set / usable_heap, applied when pressure > 1.
GC_PRESSURE_COEFF = 0.9
GC_PRESSURE_EXPONENT = 2.0
#: Additional slowdown accrued per minute of continuous execution on a
#: memory-tight (Lambda-sized) heap: heap fragmentation + promotion churn.
GC_AGING_PER_MINUTE = 0.05
