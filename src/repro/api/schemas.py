"""One schema module for every JSON surface.

Before the control plane, each CLI command grew its own ad-hoc JSON
shape: ``run``/``profile``/``stream --json`` wrote raw RunRecord rows,
``plan --dry-run --json`` wrote a bare list of plan dicts, and any HTTP
layer would have invented a third vocabulary. This module is the single
source of truth both the CLI and the ``repro serve`` API serialize
through, so the two surfaces can never drift:

- :class:`JobRequest` — what a client submits (``POST /jobs``);
- :class:`JobStatus` — one job's lifecycle + results (``GET /jobs/{id}``
  and, for completed spec jobs, the embedded RunRecord dict);
- :class:`ExecutorInfo` / :class:`PoolStats` — live cluster surfaces;
- :class:`PlanCandidate` — one ranked SplitPlanner entry;
- :class:`ErrorBody` — structured errors (including 503 backpressure);
- :class:`ResponseEnvelope` — the versioned wrapper every payload rides
  in: ``{"schema_version": ..., "kind": ..., "data": ...}``.

Models are frozen-ish dataclasses with explicit validators (the repo
idiom — see ExperimentSpec, FaultSpec, PoolConfig) rather than pydantic,
so the schema layer adds no dependency beyond the standard library and
works identically under the CLI, the ASGI app, and tests.

Serialization is deterministic: :func:`dumps` sorts keys and uses
Python's shortest float repr, so equal payloads are byte-identical —
the property the experiment cache and the golden tests already rely on
for RunRecords now holds for every JSON surface.

Legacy shapes: the one-release pre-envelope RunRecord shim promised in
the consolidation release is gone — :func:`unwrap_record` now raises a
clear :class:`SchemaError` pointing at the envelope format; re-export
old rows with a current ``--json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Version stamp carried by every envelope. Bump on breaking payload
#: changes; readers reject versions they do not understand.
SCHEMA_VERSION = "1"

# Envelope kinds (closed set; extend here, not at call sites).
KIND_RUN_RECORD = "run_record"
KIND_JOB_STATUS = "job_status"
KIND_JOB_LIST = "job_list"
KIND_PLAN = "plan"
KIND_POOL_STATS = "pool_stats"
KIND_EXECUTORS = "executors"
KIND_EVENTS = "events"
KIND_ERROR = "error"
KIND_SERVICE_INFO = "service_info"
KIND_HEALTH = "health"
KIND_CHAOS = "chaos"
KIND_TRACE = "trace"
KINDS = frozenset({
    KIND_RUN_RECORD, KIND_JOB_STATUS, KIND_JOB_LIST, KIND_PLAN,
    KIND_POOL_STATS, KIND_EXECUTORS, KIND_EVENTS, KIND_ERROR,
    KIND_SERVICE_INFO, KIND_HEALTH, KIND_CHAOS, KIND_TRACE,
})

# Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_COMPLETED, JOB_FAILED)

# Job execution modes.
MODE_SPEC = "spec"       # one isolated, deterministic ExperimentSpec run
MODE_POOLED = "pooled"   # joins the server's long-lived shared cluster
JOB_MODES = (MODE_SPEC, MODE_POOLED)

# Structured error codes.
ERR_BACKPRESSURE = "backpressure"
ERR_NOT_FOUND = "not_found"
ERR_INVALID_REQUEST = "invalid_request"
ERR_INTERNAL = "internal"
ERR_NOT_READY = "not_ready"
ERR_DRAINING = "draining"

# Structured failure-cause codes (JobStatus.failure on terminal
# ``failed`` jobs; see repro.api.resilience).
FAIL_WORKER_EXCEPTION = "worker_exception"
FAIL_RETRIES_EXHAUSTED = "retries_exhausted"
FAIL_DEADLINE_EXCEEDED = "deadline_exceeded"
FAIL_JOB_FAILED = "job_failed"
FAIL_CHECKPOINTED = "checkpointed"
FAILURE_CODES = (FAIL_WORKER_EXCEPTION, FAIL_RETRIES_EXHAUSTED,
                 FAIL_DEADLINE_EXCEEDED, FAIL_JOB_FAILED,
                 FAIL_CHECKPOINTED)


class SchemaError(ValueError):
    """A payload failed schema validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_mapping(value: Any, name: str) -> Dict[str, Any]:
    if value is None:
        return {}
    _require(isinstance(value, Mapping), f"{name} must be a JSON object")
    return dict(value)


def _reject_unknown(data: Mapping[str, Any], allowed, what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    _require(not unknown,
             f"unknown {what} field(s): {', '.join(unknown)}; "
             f"allowed: {', '.join(sorted(allowed))}")


# ---------------------------------------------------------------------------
# Deterministic serialization
# ---------------------------------------------------------------------------

def to_jsonable(obj: Any) -> Any:
    """Recursively reduce schema models / dataclasses to JSON types."""
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def dumps(obj: Any) -> str:
    """Canonical JSON: sorted keys, shortest float repr, no trailing
    whitespace — equal payloads serialize byte-identically."""
    return json.dumps(to_jsonable(obj), sort_keys=True)


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResponseEnvelope:
    """The versioned wrapper every CLI/API JSON payload rides in."""

    kind: str
    data: Any
    schema_version: str = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.kind in KINDS,
                 f"unknown envelope kind {self.kind!r}; "
                 f"known: {sorted(KINDS)}")

    def to_dict(self) -> Dict[str, Any]:
        return {"schema_version": self.schema_version,
                "kind": self.kind,
                "data": to_jsonable(self.data)}

    def dumps(self) -> str:
        return dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResponseEnvelope":
        _require(is_envelope(data), "not a ResponseEnvelope payload")
        version = str(data["schema_version"])
        _require(version == SCHEMA_VERSION,
                 f"unsupported schema_version {version!r}; "
                 f"this build reads {SCHEMA_VERSION!r}")
        return cls(kind=str(data["kind"]), data=data.get("data"),
                   schema_version=version)


def envelope(kind: str, data: Any) -> ResponseEnvelope:
    """Shorthand constructor, the one writers should use."""
    return ResponseEnvelope(kind=kind, data=data)


def is_envelope(data: Any) -> bool:
    return (isinstance(data, Mapping) and "schema_version" in data
            and "kind" in data and "data" in data)


def unwrap_record(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Return the RunRecord dict inside an envelope row.

    The one-release :class:`DeprecationWarning` shim for pre-envelope
    rows (raw RunRecord dicts, the shape ``--json`` exports wrote
    before the ``repro.api.schemas`` consolidation) has been removed as
    promised: a bare row now raises :class:`SchemaError` naming the
    envelope format, so stale fixtures fail loudly instead of parsing
    silently. Re-export old data with a current ``--json``.
    """
    _require(
        is_envelope(data),
        "not a ResponseEnvelope row: expected "
        '{"schema_version": "' + SCHEMA_VERSION + '", "kind": "'
        + KIND_RUN_RECORD + '", "data": {...}}; pre-envelope RunRecord '
        "rows are no longer read (the one-release DeprecationWarning "
        "shim is gone) — re-export with a current --json")
    env = ResponseEnvelope.from_dict(data)
    _require(env.kind == KIND_RUN_RECORD,
             f"expected a {KIND_RUN_RECORD!r} envelope, "
             f"got {env.kind!r}")
    return dict(env.data)


# ---------------------------------------------------------------------------
# JobRequest
# ---------------------------------------------------------------------------

@dataclass
class JobRequest:
    """What a client submits to ``POST /jobs``.

    ``mode="spec"`` (default) runs one isolated, deterministic
    :class:`~repro.experiments.spec.ExperimentSpec` — byte-identical to
    the same spec run via ``repro run --json``. ``mode="pooled"`` joins
    the server's long-lived shared cluster as a
    :class:`~repro.cluster.apps.ClusterApp` competing for the shared
    executor pool.
    """

    workload: str
    scenario: str = "spark_R_vm"
    seed: int = 0
    mode: str = MODE_SPEC
    #: Deadline the job is scored against (``slo_met`` on the status).
    slo_s: Optional[float] = None
    #: Wall-clock deadline: the service fails the job (terminal
    #: ``failed``, cause ``deadline_exceeded``) this many seconds after
    #: submission if it has not finished. None = the server default.
    deadline_s: Optional[float] = None
    #: Bounded-retry cap for transient worker failures (>= 1).
    #: None = the server default.
    max_attempts: Optional[int] = None
    #: Split/provisioning policy (``{"name": ...}`` + parameters), as in
    #: ``ExperimentSpec.policy``.
    policy: Dict[str, Any] = field(default_factory=dict)
    workload_params: Dict[str, Any] = field(default_factory=dict)
    conf_overrides: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Declarative fault plan (FaultSpec dicts).
    faults: List[Dict[str, Any]] = field(default_factory=list)
    parallelism: Optional[int] = None
    segue_at_s: Optional[float] = None
    #: Scheduler pool to register in (pooled mode).
    pool: str = "default"

    def __post_init__(self) -> None:
        _require(bool(self.workload) and isinstance(self.workload, str),
                 "workload must be a non-empty string")
        _require(self.mode in JOB_MODES,
                 f"mode must be one of {JOB_MODES}, got {self.mode!r}")
        self.seed = int(self.seed)
        if self.slo_s is not None:
            self.slo_s = float(self.slo_s)
            _require(self.slo_s > 0, "slo_s must be positive")
        if self.deadline_s is not None:
            self.deadline_s = float(self.deadline_s)
            _require(self.deadline_s > 0, "deadline_s must be positive")
        if self.max_attempts is not None:
            self.max_attempts = int(self.max_attempts)
            _require(self.max_attempts >= 1, "max_attempts must be >= 1")
        self.policy = _check_mapping(self.policy, "policy")
        self.workload_params = _check_mapping(self.workload_params,
                                              "workload_params")
        self.conf_overrides = _check_mapping(self.conf_overrides,
                                             "conf_overrides")
        self.extra = _check_mapping(self.extra, "extra")
        _require(isinstance(self.faults, (list, tuple)),
                 "faults must be a list of fault objects")
        self.faults = [dict(f) for f in self.faults]

    def to_spec(self):
        """The :class:`ExperimentSpec` this request describes (spec
        mode). Raises :class:`SchemaError` on an invalid combination."""
        from repro.experiments.spec import ExperimentSpec
        try:
            return ExperimentSpec(
                workload=self.workload, scenario=self.scenario,
                seed=self.seed, parallelism=self.parallelism,
                workload_params=self.workload_params,
                conf_overrides=self.conf_overrides,
                segue_at_s=self.segue_at_s, extra=self.extra,
                faults=self.faults, policy=self.policy)
        except (TypeError, ValueError) as exc:
            raise SchemaError(str(exc)) from exc

    def to_dict(self) -> Dict[str, Any]:
        return to_jsonable(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRequest":
        _require(isinstance(data, Mapping),
                 "job request must be a JSON object")
        allowed = {f for f in cls.__dataclass_fields__}  # noqa: C416
        _reject_unknown(data, allowed, "JobRequest")
        _require("workload" in data, "workload is required")
        return cls(**{k: data[k] for k in data})


# ---------------------------------------------------------------------------
# FailureCause
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FailureCause:
    """Structured cause on a terminal ``failed`` job.

    ``code`` is one of :data:`FAILURE_CODES`; ``retryable`` records
    whether the service classified the underlying error as transient
    (it may still be terminal because retries were exhausted or the
    deadline passed); ``attempts`` is how many executions were tried.
    """

    code: str
    message: str
    retryable: bool = False
    attempts: int = 1
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.code in FAILURE_CODES,
                 f"unknown failure code {self.code!r}; "
                 f"known: {list(FAILURE_CODES)}")

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "message": self.message,
                "retryable": self.retryable, "attempts": self.attempts,
                "detail": to_jsonable(self.detail)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureCause":
        _require(isinstance(data, Mapping) and "code" in data,
                 "failure cause must be a JSON object with a code")
        return cls(code=str(data["code"]),
                   message=str(data.get("message", "")),
                   retryable=bool(data.get("retryable", False)),
                   attempts=int(data.get("attempts", 1)),
                   detail=dict(data.get("detail") or {}))


# ---------------------------------------------------------------------------
# JobStatus
# ---------------------------------------------------------------------------

@dataclass
class JobStatus:
    """One job's lifecycle and (once finished) its results.

    ``metrics`` for a completed spec-mode job is exactly
    ``RunRecord.metrics`` — byte-identical to the same spec run through
    ``repro run --json`` — and ``record`` carries the full RunRecord
    dict so ``repro report`` can render a served run. Wall-clock
    fields (``*_at``) are machine-dependent, like
    ``RunRecord.wall_time_s``.
    """

    job_id: str
    state: str
    request: JobRequest
    spec_hash: Optional[str] = None
    queue_position: Optional[int] = None
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    duration_s: Optional[float] = None
    cost: Optional[float] = None
    slo_met: Optional[bool] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The planner's split decision for this job, when one was made.
    plan: Optional[Dict[str, Any]] = None
    #: Full RunRecord dict (completed spec-mode jobs).
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Executions tried so far (retries bump this past 1).
    attempts: int = 0
    #: Structured cause, set exactly when ``state == "failed"``.
    failure: Optional[FailureCause] = None

    def __post_init__(self) -> None:
        _require(self.state in JOB_STATES,
                 f"state must be one of {JOB_STATES}, got {self.state!r}")
        if isinstance(self.request, Mapping):
            self.request = JobRequest.from_dict(self.request)
        if isinstance(self.failure, Mapping):
            self.failure = FailureCause.from_dict(self.failure)

    @property
    def done(self) -> bool:
        return self.state in (JOB_COMPLETED, JOB_FAILED)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "job_id": self.job_id,
            "state": self.state,
            "request": self.request.to_dict(),
            "spec_hash": self.spec_hash,
            "queue_position": self.queue_position,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "cost": self.cost,
            "slo_met": self.slo_met,
            "metrics": to_jsonable(self.metrics),
            "plan": to_jsonable(self.plan),
            "error": self.error,
            "attempts": self.attempts,
        }
        if self.failure is not None:
            out["failure"] = self.failure.to_dict()
        if self.record is not None:
            out["record"] = to_jsonable(self.record)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        _require(isinstance(data, Mapping),
                 "job status must be a JSON object")
        _require("job_id" in data and "state" in data,
                 "job status needs job_id and state")
        return cls(
            job_id=str(data["job_id"]), state=str(data["state"]),
            request=JobRequest.from_dict(data.get("request")
                                         or {"workload": "unknown"}),
            spec_hash=data.get("spec_hash"),
            queue_position=data.get("queue_position"),
            submitted_at=data.get("submitted_at"),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            duration_s=data.get("duration_s"),
            cost=data.get("cost"),
            slo_met=data.get("slo_met"),
            metrics=dict(data.get("metrics") or {}),
            plan=data.get("plan"),
            record=data.get("record"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 0)),
            failure=data.get("failure"))


def looks_like_job_status(data: Any) -> bool:
    """Shape-sniff for report inputs: a JobStatus dict (raw or
    enveloped)."""
    if is_envelope(data):
        return data.get("kind") == KIND_JOB_STATUS
    return (isinstance(data, Mapping) and "job_id" in data
            and "state" in data)


# ---------------------------------------------------------------------------
# Cluster surfaces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutorInfo:
    """One live executor of the shared pool (``GET /executors``)."""

    executor_id: str
    kind: str          # "vm" | "lambda"
    state: str         # ExecutorState name, lowercase
    host: Optional[str] = None
    running_tasks: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class PoolStats:
    """One scheduler pool's live stats (``GET /pools``)."""

    name: str
    mode: str
    weight: int
    min_share: int
    apps: int
    running_tasks: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanCandidate:
    """One ranked SplitPlanner entry (``GET /plan`` and
    ``repro plan --json``)."""

    rank: int
    name: str
    vm_cores: int
    lambda_cores: int
    segue_cores: int
    segue_at_s: Optional[float]
    predicted_runtime_s: float
    predicted_cost: float
    meets_slo: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def plan_payload(plan) -> Dict[str, Any]:
    """Reduce a :class:`~repro.planner.planner.SplitPlan` to the shared
    plan payload (the CLI's ``plan --json`` and ``GET /plan`` both emit
    this, wrapped in a :data:`KIND_PLAN` envelope)."""
    candidates = []
    for rank, entry in enumerate(plan.candidates, start=1):
        c = entry.candidate
        candidates.append(PlanCandidate(
            rank=rank, name=c.name, vm_cores=c.vm_cores,
            lambda_cores=c.lambda_cores, segue_cores=c.segue_cores,
            segue_at_s=c.segue_at_s,
            predicted_runtime_s=entry.predicted_runtime_s,
            predicted_cost=entry.predicted_cost,
            meets_slo=entry.meets_slo))
    return {
        "workload": plan.workload,
        "seed": plan.seed,
        "slo_s": plan.slo_s,
        "feasible": plan.feasible,
        "chosen": candidates[0].name if candidates else None,
        "candidates": [c.to_dict() for c in candidates],
    }


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ErrorBody:
    """Structured error payload (rides in a :data:`KIND_ERROR`
    envelope; the 503 backpressure path returns one)."""

    code: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)
    retry_after_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"code": self.code, "message": self.message,
                               "detail": to_jsonable(self.detail)}
        if self.retry_after_s is not None:
            out["retry_after_s"] = self.retry_after_s
        return out


# ---------------------------------------------------------------------------
# Report-input sniffing (shared by `repro report` and tests)
# ---------------------------------------------------------------------------

def parse_any_document(text: str) -> List[Dict[str, Any]]:
    """Parse a report input into a list of row dicts.

    Accepts a single JSON document (object or list — e.g. a curl'd
    ``GET /jobs/{id}`` envelope) or JSONL (one object per line — the
    ``--json`` / ``--events-out`` exports). Raises ``ValueError`` on
    unparseable input.
    """
    stripped = text.strip()
    if not stripped:
        return []
    try:
        doc = json.loads(stripped)
    except ValueError:
        doc = None
    if isinstance(doc, Mapping):
        return [dict(doc)]
    if isinstance(doc, list):
        return [dict(row) for row in doc]
    rows = []
    for line in stripped.splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


__all__: Tuple[str, ...] = (
    "SCHEMA_VERSION", "KINDS", "KIND_RUN_RECORD", "KIND_JOB_STATUS",
    "KIND_JOB_LIST", "KIND_PLAN", "KIND_POOL_STATS", "KIND_EXECUTORS",
    "KIND_EVENTS", "KIND_ERROR", "KIND_SERVICE_INFO", "KIND_HEALTH",
    "KIND_CHAOS", "KIND_TRACE",
    "JOB_QUEUED", "JOB_RUNNING", "JOB_COMPLETED", "JOB_FAILED",
    "JOB_STATES", "JOB_MODES", "MODE_SPEC", "MODE_POOLED",
    "ERR_BACKPRESSURE", "ERR_NOT_FOUND", "ERR_INVALID_REQUEST",
    "ERR_INTERNAL", "ERR_NOT_READY", "ERR_DRAINING",
    "FAIL_WORKER_EXCEPTION", "FAIL_RETRIES_EXHAUSTED",
    "FAIL_DEADLINE_EXCEEDED", "FAIL_JOB_FAILED", "FAIL_CHECKPOINTED",
    "FAILURE_CODES", "FailureCause",
    "SchemaError", "ResponseEnvelope", "envelope", "is_envelope",
    "unwrap_record", "JobRequest", "JobStatus", "looks_like_job_status",
    "ExecutorInfo", "PoolStats", "PlanCandidate", "plan_payload",
    "ErrorBody", "dumps", "to_jsonable", "parse_any_document",
)
