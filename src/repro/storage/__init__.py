"""Storage substrates: the shuffle-layer alternatives the paper contrasts.

All services implement the :class:`~repro.storage.base.StorageService`
protocol (keyed byte blobs, event-returning reads/writes that model
latency, bandwidth contention, throttling, and dollar cost):

- :class:`~repro.storage.local_disk.LocalDisk` — vanilla Spark's shuffle
  target: the worker VM's own disk behind its dedicated EBS channel.
- :class:`~repro.storage.hdfs.HDFS` — SplitServe's choice (§4.3): a
  namenode/datanode cluster reachable by both VM and Lambda executors,
  throughput-bounded by the hosting VMs' EBS bandwidth.
- :class:`~repro.storage.s3.S3` — Qubole/PyWren's choice: high latency,
  per-bucket request-rate throttling, per-request cost.
- :class:`~repro.storage.redis.RedisStore` — Locus's choice: fast but
  backed by an expensive always-on cache node.
- :class:`~repro.storage.sqs.SQSQueue` — Flint's choice: queue semantics,
  256 KB message chunking, per-request cost.
"""

from repro.storage.base import StorageService, StorageStats
from repro.storage.hdfs import HDFS
from repro.storage.local_disk import LocalDisk
from repro.storage.redis import RedisStore
from repro.storage.s3 import S3
from repro.storage.sqs import SQSQueue

__all__ = [
    "HDFS",
    "LocalDisk",
    "RedisStore",
    "S3",
    "SQSQueue",
    "StorageService",
    "StorageStats",
]
