"""Tests for the reference NumPy K-means implementation."""

import numpy as np
import pytest

from repro.workloads.kmeans_algo import (
    assign_points,
    generate_points,
    kmeans,
    measure_assign_cost,
    update_centroids,
)


def test_generate_points_shape_and_determinism():
    a = generate_points(1000, 20, 10, seed=1)
    b = generate_points(1000, 20, 10, seed=1)
    assert a.shape == (1000, 20)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, generate_points(1000, 20, 10, seed=2))


def test_generate_points_validation():
    with pytest.raises(ValueError):
        generate_points(0, 20, 10)


def test_assign_points_matches_bruteforce():
    points = generate_points(500, 8, 4, seed=3)
    centroids = points[:4]
    fast = assign_points(points, centroids)
    dists = np.linalg.norm(points[:, None, :] - centroids[None, :, :],
                           axis=2)
    brute = np.argmin(dists, axis=1)
    assert np.array_equal(fast, brute)


def test_update_centroids_are_cluster_means():
    points = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]])
    assignments = np.array([0, 0, 1])
    centroids = update_centroids(points, assignments, k=2)
    assert centroids[0] == pytest.approx([1.0, 0.0])
    assert centroids[1] == pytest.approx([10.0, 10.0])


def test_update_centroids_reseeds_empty_clusters():
    points = np.array([[1.0, 1.0], [2.0, 2.0]])
    assignments = np.array([0, 0])
    centroids = update_centroids(points, assignments, k=3)
    assert centroids.shape == (3, 2)
    assert np.isfinite(centroids).all()


def test_kmeans_recovers_separated_blobs():
    points = generate_points(3000, 5, 3, seed=7, spread=1.0)
    result = kmeans(points, k=3, max_iterations=20,
                    convergence_distance=0.01, seed=7)
    # Well-separated blobs: three clusters of roughly a thousand each.
    counts = np.bincount(result.assignments, minlength=3)
    assert counts.min() > 500
    assert result.inertia > 0


def test_kmeans_paper_parameters_run():
    """The paper's settings: k=10, <=5 iterations, convergence 0.5."""
    points = generate_points(5000, 20, 10, seed=0)
    result = kmeans(points, k=10, max_iterations=5,
                    convergence_distance=0.5, seed=0)
    assert result.iterations <= 5
    assert result.centroids.shape == (10, 20)


def test_kmeans_validation():
    points = generate_points(100, 2, 2)
    with pytest.raises(ValueError):
        kmeans(points, k=1)
    with pytest.raises(ValueError):
        kmeans(points, k=3, max_iterations=0)


def test_kmeans_deterministic_for_seed():
    points = generate_points(2000, 10, 5, seed=4)
    a = kmeans(points, k=5, seed=4)
    b = kmeans(points, k=5, seed=4)
    assert np.array_equal(a.assignments, b.assignments)


def test_measured_cost_grounds_simulated_constant():
    """The simulation charges ASSIGN_SECONDS_PER_POINT per point per
    iteration; the pure NumPy kernel must be (much) faster than that —
    the gap is the JVM/MLlib overhead the constant bakes in."""
    from repro.workloads.kmeans import ASSIGN_SECONDS_PER_POINT

    measured = measure_assign_cost(n_points=100_000, repeats=2)
    assert measured > 0
    assert measured < ASSIGN_SECONDS_PER_POINT
