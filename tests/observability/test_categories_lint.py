"""Taxonomy tests + the lint pass over emitter call sites.

The runtime half of the taxonomy guarantee is the EventBus calling
``validate_event`` on every publish; the static half is this lint: no
``record(...)``-style call site under ``src/repro`` may pass the
category or event name as a string literal — they must come from the
``CAT_*`` / ``EV_*`` constants, so a typo is an ImportError, not a
silently new category.
"""

import ast
import pathlib
import re

import pytest

from repro.observability.bus import TYPED_DISPATCH
from repro.observability.categories import (
    EVENTS,
    known_categories,
    validate_event,
)

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def _literal_str(node):
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _violations(path):
    """String-literal category/name args at record-like call sites."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    bad = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr == "record":
            # record(time, category, name, **fields)
            suspects = node.args[1:3]
        elif attr in ("_record", "_log"):
            # helpers bind the category; first arg is the event name
            suspects = node.args[:1]
        elif attr == "_publish":
            # ServeTracer._publish(event, span): the span-event name
            # must be an EV_SPAN_* constant, same rule as record()
            suspects = node.args[:1]
        else:
            continue
        for arg in suspects:
            if _literal_str(arg):
                bad.append(f"{path.relative_to(SRC)}:{node.lineno} "
                           f"{attr}(... {arg.value!r} ...)")
    return bad


def test_no_string_literal_categories_in_src():
    bad = []
    for path in sorted(SRC.rglob("*.py")):
        bad.extend(_violations(path))
    assert bad == [], (
        "emitters must use repro.observability.categories constants, "
        "not string literals:\n" + "\n".join(bad))


def test_validate_event_accepts_every_registered_pair():
    for category, names in EVENTS.items():
        for name in names:
            validate_event(category, name)  # must not raise


def test_validate_event_rejects_unknown_category():
    with pytest.raises(ValueError) as exc:
        validate_event("warp-drive", "engaged")
    assert "unknown event category" in str(exc.value)


def test_validate_event_rejects_unknown_name():
    with pytest.raises(ValueError) as exc:
        validate_event("executor", "teleported")
    assert "unknown event" in str(exc.value)


def test_typed_dispatch_pairs_are_all_registered():
    for (category, name), method in TYPED_DISPATCH.items():
        assert name in EVENTS[category], (category, name)
        assert method.startswith("on_")


def test_taxonomy_names_are_stable_identifiers():
    ident = re.compile(r"^[a-z][a-z0-9_]*$")
    for category in known_categories():
        assert ident.match(category), category
        for name in EVENTS[category]:
            assert ident.match(name), (category, name)
