"""Resilience benches: fault injection against the §4.3 shuffle design.

Three experiments, all driven by declarative
:class:`~repro.simulation.faults.FaultSpec` plans on ExperimentSpecs:

1. **Rollback contrast** — kill one executor mid-reduce-stage under
   vanilla Spark (executor-local shuffle) and under SplitServe (HDFS
   shuffle). The local variant loses the dead host's map outputs and
   pays lineage rollback; the HDFS variant only re-runs the in-flight
   task (§4.3: "the map outputs survive executor loss").
2. **Spot-revocation sweep** — TR-Spark's problem framing: revoke a
   whole worker VM at points across the job and compare the recovery
   bill for the two shuffle designs.
3. **Throttle fallback** — cap Lambda concurrency at zero and show a
   hybrid job completes by degrading onto free VM cores instead of
   stalling (graceful degradation in the launching facility).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.scenarios import run_scenario
from repro.experiments import ExperimentRunner, ExperimentSpec
from benchmarks.conftest import run_once

#: Two-stage synthetic job: maps finish ~20s, job ~42s on 8 cores.
SYN = dict(stages=2, core_seconds_per_stage=160.0,
           shuffle_bytes_per_boundary=64 * 1024 * 1024,
           required_cores=8, available_cores=6, worker_itype="m4.xlarge")

#: Mid-reduce-stage kill moment (after the map boundary at ~20s).
KILL_AT_S = 25.0
#: Revocation moments across the job for the sweep.
REVOKE_AT_SWEEP = (10.0, 25.0, 35.0)


def _spec(scenario, faults=(), seed=2):
    return ExperimentSpec(workload="synthetic", scenario=scenario,
                          seed=seed, workload_params=SYN, faults=faults)


# ---------------------------------------------------------------------------
# 1. Rollback contrast (§4.3)
# ---------------------------------------------------------------------------

def run_rollback_contrast():
    kill = (dict(kind="executor_kill", at_s=KILL_AT_S, target="any",
                 count=1),)
    out = {}
    for scenario in ("spark_R_vm", "ss_R_vm"):
        clean = run_scenario(_spec(scenario))
        faulted = run_scenario(_spec(scenario, faults=kill))
        out[scenario] = (clean, faulted)
    return out


def test_rollback_contrast(benchmark, emit):
    results = run_once(benchmark, run_rollback_contrast)
    rows = []
    for scenario, (clean, faulted) in results.items():
        rec = faulted.recovery
        rows.append([scenario, f"{clean.duration_s:.1f}s",
                     f"{faulted.duration_s:.1f}s",
                     f"{faulted.duration_s - clean.duration_s:+.1f}s",
                     f"{rec['rollback_recompute_s']:.1f}s",
                     f"{rec['time_to_recovery_max_s']:.1f}s"])
    emit("Resilience — executor kill mid-reduce: local vs HDFS shuffle",
         format_table(["scenario", "clean", "faulted", "added",
                       "rollback recompute", "time to recovery"], rows))

    spark_clean, spark_faulted = results["spark_R_vm"]
    ss_clean, ss_faulted = results["ss_R_vm"]
    added_spark = spark_faulted.duration_s - spark_clean.duration_s
    added_ss = ss_faulted.duration_s - ss_clean.duration_s
    # HDFS shuffle keeps the dead executor's map outputs: no lineage
    # rollback, strictly cheaper recovery than local shuffle.
    assert not spark_faulted.failed and not ss_faulted.failed
    assert added_ss < added_spark
    assert ss_faulted.recovery["rollback_recompute_s"] == 0.0
    assert spark_faulted.recovery["rollback_recompute_s"] > 0.0


# ---------------------------------------------------------------------------
# 2. Spot-revocation sweep (TR-Spark framing)
# ---------------------------------------------------------------------------

def run_revocation_sweep():
    out = {}
    for revoke_at in REVOKE_AT_SWEEP:
        revoke = (dict(kind="spot_revocation", at_s=revoke_at,
                       target="vm:vm-*", count=1),)
        out[revoke_at] = {scenario: run_scenario(_spec(scenario,
                                                       faults=revoke))
                          for scenario in ("spark_R_vm", "ss_R_vm")}
    return out


def test_spot_revocation_sweep(benchmark, emit):
    results = run_once(benchmark, run_revocation_sweep)
    rows = []
    for revoke_at, by_scenario in results.items():
        spark, ss = by_scenario["spark_R_vm"], by_scenario["ss_R_vm"]
        rows.append([f"t={revoke_at:.0f}s",
                     f"{spark.duration_s:.1f}s "
                     f"({spark.recovery['rollback_recompute_s']:.1f}s rb)",
                     f"{ss.duration_s:.1f}s "
                     f"({ss.recovery['rollback_recompute_s']:.1f}s rb)"])
    emit("Resilience — whole-VM revocation sweep",
         format_table(["revoked at", "local shuffle (vanilla)",
                       "HDFS shuffle (SplitServe)"], rows))

    for revoke_at, by_scenario in results.items():
        spark, ss = by_scenario["spark_R_vm"], by_scenario["ss_R_vm"]
        assert not spark.failed and not ss.failed
        assert spark.recovery["executors_lost"] >= 1
        assert ss.recovery["rollback_recompute_s"] == 0.0
    # Post-map revocations trigger rollback only under local shuffle,
    # so the HDFS design recovers faster.
    for revoke_at in (25.0, 35.0):
        spark = results[revoke_at]["spark_R_vm"]
        ss = results[revoke_at]["ss_R_vm"]
        assert spark.recovery["rollback_recompute_s"] > 0.0
        assert ss.duration_s < spark.duration_s


# ---------------------------------------------------------------------------
# 3. Throttle fallback (graceful degradation)
# ---------------------------------------------------------------------------

def run_throttled_hybrid():
    throttle = (dict(kind="lambda_throttle", at_s=0.0, duration_s=1e4,
                     limit=0),)
    return (run_scenario(_spec("ss_hybrid")),
            run_scenario(_spec("ss_hybrid", faults=throttle)))


def test_throttle_fallback(benchmark, emit):
    clean, throttled = run_once(benchmark, run_throttled_hybrid)
    rec = throttled.recovery
    emit("Resilience — hybrid job under a zero-concurrency Lambda cap",
         format_table(
             ["run", "time", "lambda tasks", "fallback cores", "unfilled"],
             [["clean", f"{clean.duration_s:.1f}s",
               clean.job_result.tasks_by_kind.get("lambda", 0), "-", "-"],
              ["throttled", f"{throttled.duration_s:.1f}s",
               throttled.job_result.tasks_by_kind.get("lambda", 0),
               rec["lambda_fallback_cores"], rec["unfilled_cores"]]]))

    # The throttled run must complete on VM cores, not fail or stall.
    assert not throttled.failed
    assert throttled.job_result.tasks_by_kind.get("lambda", 0) == 0
    assert rec["lambda_fallback_cores"] == 2  # the 2 free cluster cores
    assert rec["failed_lambda_invocations"] > 0
    # Clean hybrid actually uses Lambdas, so the contrast is real.
    assert clean.job_result.tasks_by_kind.get("lambda", 0) > 0


# ---------------------------------------------------------------------------
# Smoke
# ---------------------------------------------------------------------------

@pytest.mark.smoke
def test_smoke_one_faulted_run(tmp_path):
    spec = ExperimentSpec(
        workload="synthetic", scenario="ss_R_vm", seed=0,
        workload_params=dict(stages=2, core_seconds_per_stage=16.0,
                             shuffle_bytes_per_boundary=8 * 1024 * 1024,
                             required_cores=4, available_cores=2,
                             worker_itype="m4.xlarge"),
        faults=(dict(kind="executor_kill", at_s=3.0, target="any",
                     count=1),))
    runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
    [record] = runner.run([spec])
    assert record.error is None and not record.failed
    assert record.metrics["faults_injected"] == 1
    assert record.metrics["executors_lost"] == 1
