"""The multijob workload: arrival replay, metrics, and the determinism
gate — a multi-driver FAIR-pool run must be bit-identical whether specs
execute serially in-process or fanned out over worker processes."""

import pytest

from repro.cluster.multijob import percentile
from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.experiments.runner import run_spec

BURST = {"mix": "sparkpi,pagerank-small", "n_jobs": 4,
         "mean_interarrival_s": 20.0, "pool_cores": 8, "mode": "fair",
         "max_concurrent": 2}


def _spec(seed=0, **overrides):
    return ExperimentSpec(workload="multijob", scenario="multijob",
                          seed=seed, extra={**BURST, **overrides})


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.50) == 20.0
    assert percentile(values, 0.95) == 40.0
    assert percentile([], 0.5) != percentile([], 0.5)  # NaN


def test_multijob_reports_cluster_metrics():
    record = run_spec(_spec())
    assert not record.failed and record.error is None
    m = record.metrics
    assert m["jobs"] == 4 and m["jobs_failed"] == 0
    assert 0 < m["p50_latency_s"] <= m["p95_latency_s"]
    assert m["p95_queueing_delay_s"] >= 0
    assert m["cost_per_job"] > 0
    assert record.cost == pytest.approx(4 * m["cost_per_job"])
    # Per-app cost attribution covers the whole bill.
    app_costs = [v for k, v in m.items()
                 if k.startswith("app.") and k.endswith(".cost")]
    assert len(app_costs) == 4
    assert sum(app_costs) == pytest.approx(record.cost)


def test_multijob_serial_and_parallel_runs_are_bit_identical():
    """The determinism gate for the shared pool: two multi-driver FAIR
    runs produce byte-identical records whether executed serially
    in-process or through ``--workers 2`` subprocess fan-out."""
    specs = [_spec(seed=0),
             _spec(seed=1, pool_style="hybrid_segue", lambda_cores=4)]
    serial = [run_spec(spec).canonical() for spec in specs]
    parallel = ExperimentRunner(workers=2, cache=False).run(specs)
    assert [r.canonical() for r in parallel] == serial


def test_multijob_repeated_run_is_deterministic():
    a = run_spec(_spec(seed=7)).canonical()
    b = run_spec(_spec(seed=7)).canonical()
    assert a == b


def test_hybrid_pool_absorbs_the_burst():
    vm = run_spec(_spec()).metrics
    hybrid = run_spec(_spec(pool_style="hybrid_segue",
                            lambda_cores=8)).metrics
    assert hybrid["p95_latency_s"] < vm["p95_latency_s"]


def test_multijob_parameter_validation():
    # run_spec captures harness errors on the record, one per bad knob.
    bad_mix = run_spec(_spec(mix=" , "))
    assert bad_mix.failed and "mix" in bad_mix.failure_reason
    bad_mode = run_spec(_spec(mode="lifo"))
    assert bad_mode.failed and "mode" in bad_mode.failure_reason
    bad_style = run_spec(_spec(pool_style="spot"))
    assert bad_style.failed and "pool_style" in bad_style.failure_reason
