"""Tests for the typed EventBus and its subscriber contract."""

import pytest

from repro.observability.bus import EventBus, ListenerInterface
from repro.observability.categories import (
    CAT_DAG,
    CAT_EXECUTOR,
    CAT_FAULT,
    CAT_SCHEDULER,
    CAT_SEGUE,
    EV_DEAD,
    EV_EXECUTOR_DRAINED,
    EV_EXECUTOR_KILLED,
    EV_RECOVERED,
    EV_REGISTERED,
    EV_SEGUE_TRIGGERED,
    EV_STAGE_COMPLETE,
    EV_STAGE_SUBMITTED,
    EV_TASK_END,
    EV_TASK_START,
)
from repro.simulation import TraceRecorder


class SpyListener(ListenerInterface):
    def __init__(self):
        self.calls = []

    def on_task_start(self, time, fields):
        self.calls.append(("on_task_start", time, fields))

    def on_task_end(self, time, fields):
        self.calls.append(("on_task_end", time, fields))

    def on_stage_submitted(self, time, fields):
        self.calls.append(("on_stage_submitted", time, fields))

    def on_stage_completed(self, time, fields):
        self.calls.append(("on_stage_completed", time, fields))

    def on_executor_added(self, time, fields):
        self.calls.append(("on_executor_added", time, fields))

    def on_executor_removed(self, time, fields):
        self.calls.append(("on_executor_removed", time, fields))

    def on_segue_triggered(self, time, fields):
        self.calls.append(("on_segue_triggered", time, fields))

    def on_fault_injected(self, time, fields):
        self.calls.append(("on_fault_injected", time, fields))

    def on_event(self, time, category, name, fields):
        self.calls.append(("on_event", time, category, name))

    def typed(self):
        return [c for c in self.calls if c[0] != "on_event"]


def test_typed_dispatch_routes_known_events():
    bus = EventBus()
    spy = bus.subscribe(SpyListener())
    bus.record(1.0, CAT_EXECUTOR, EV_TASK_START, executor="e0", task="t")
    bus.record(2.0, CAT_EXECUTOR, EV_TASK_END, executor="e0", task="t",
               duration=1.0)
    bus.record(3.0, CAT_DAG, EV_STAGE_SUBMITTED, stage_id=0)
    bus.record(4.0, CAT_DAG, EV_STAGE_COMPLETE, stage_id=0)
    bus.record(5.0, CAT_EXECUTOR, EV_REGISTERED, executor="e1", kind="vm")
    bus.record(6.0, CAT_EXECUTOR, EV_DEAD, executor="e1")
    bus.record(7.0, CAT_SCHEDULER, EV_EXECUTOR_DRAINED, executor="e0")
    bus.record(8.0, CAT_SEGUE, EV_SEGUE_TRIGGERED, vm="vm1")
    assert [c[0] for c in spy.typed()] == [
        "on_task_start", "on_task_end", "on_stage_submitted",
        "on_stage_completed", "on_executor_added", "on_executor_removed",
        "on_executor_removed", "on_segue_triggered"]
    # The generic hook sees everything, typed or not.
    assert len([c for c in spy.calls if c[0] == "on_event"]) == 8


def test_fault_category_dispatches_on_fault_injected():
    bus = EventBus()
    spy = bus.subscribe(SpyListener())
    bus.record(1.0, CAT_FAULT, EV_EXECUTOR_KILLED, executor="e0")
    assert spy.typed() == [
        ("on_fault_injected", 1.0, {"executor": "e0"})]


def test_recovered_milestone_is_not_an_injection():
    bus = EventBus()
    spy = bus.subscribe(SpyListener())
    bus.record(1.0, CAT_FAULT, EV_RECOVERED, kind="executor_kill")
    assert spy.typed() == []
    assert ("on_event", 1.0, CAT_FAULT, EV_RECOVERED) in spy.calls


def test_trace_recorder_subscribes_as_raw_sink():
    bus = EventBus()
    trace = bus.subscribe(TraceRecorder())
    bus.record(1.5, CAT_EXECUTOR, EV_REGISTERED, executor="e0", kind="vm")
    assert len(trace) == 1
    rec = trace.records[0]
    assert (rec.time, rec.category, rec.name) == (
        1.5, CAT_EXECUTOR, EV_REGISTERED)
    assert rec.get("executor") == "e0"


def test_subscribe_rejects_non_subscriber():
    with pytest.raises(TypeError):
        EventBus().subscribe(object())


def test_unsubscribe_listener_and_wrapped_recorder():
    bus = EventBus()
    spy = bus.subscribe(SpyListener())
    trace = bus.subscribe(TraceRecorder())
    assert bus.subscriber_count == 2
    bus.unsubscribe(trace)
    bus.unsubscribe(spy)
    assert bus.subscriber_count == 0
    bus.record(1.0, CAT_EXECUTOR, EV_TASK_START, executor="e0")
    assert spy.calls == []
    assert len(trace) == 0
    bus.unsubscribe(spy)  # removing again is a no-op


def test_validation_rejects_unknown_events():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.record(0.0, "not-a-category", "boom")
    with pytest.raises(ValueError):
        bus.record(0.0, CAT_EXECUTOR, "not-an-event")


def test_validate_false_routes_ad_hoc_events():
    bus = EventBus(validate=False)
    trace = bus.subscribe(TraceRecorder())
    bus.record(0.0, "custom", "anything", k=1)
    assert trace.records[0].category == "custom"


def test_delivery_is_in_subscription_order():
    order = []

    class Tagged(ListenerInterface):
        def __init__(self, tag):
            self.tag = tag

        def on_event(self, time, category, name, fields):
            order.append(self.tag)

    bus = EventBus()
    bus.subscribe(Tagged("first"))
    bus.subscribe(Tagged("second"))
    bus.record(0.0, CAT_EXECUTOR, EV_TASK_START)
    assert order == ["first", "second"]
