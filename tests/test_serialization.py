"""Tests for the export utilities (trace JSONL, scenario dicts)."""

import json

from repro.core.scenarios import run_scenario
from repro.experiments.spec import ExperimentSpec
from repro.simulation import TraceRecorder


def test_trace_to_dicts():
    trace = TraceRecorder()
    trace.record(1.5, "vm", "launch", vm="a", itype="m4.large")
    rows = trace.to_dicts()
    assert rows == [{"time": 1.5, "category": "vm", "name": "launch",
                     "fields": {"vm": "a", "itype": "m4.large"}}]


def test_trace_to_dicts_payload_cannot_clobber_envelope():
    # A payload field named like an envelope key must survive intact.
    from repro.simulation import TraceRecord

    trace = TraceRecorder()
    trace._records.append(TraceRecord(
        2.0, "fault", "recovered", {"time": 99.0, "name": "victim"}))
    (row,) = trace.to_dicts()
    assert row["time"] == 2.0
    assert row["name"] == "recovered"
    assert row["fields"] == {"time": 99.0, "name": "victim"}


def test_trace_save_jsonl_roundtrip(tmp_path):
    result = run_scenario(ExperimentSpec("sparkpi", "ss_R_la"),
                          keep_trace=True)
    path = tmp_path / "trace.jsonl"
    count = result.trace.save_jsonl(str(path))
    assert count == len(result.trace)
    lines = path.read_text().splitlines()
    assert len(lines) == count
    parsed = [json.loads(line) for line in lines]
    assert all("time" in row and "category" in row for row in parsed)
    # Times are in emission (and therefore chronological) order.
    times = [row["time"] for row in parsed]
    assert times == sorted(times)


def test_scenario_result_to_dict_is_json_serializable():
    result = run_scenario(ExperimentSpec("sparkpi", "ss_hybrid"))
    payload = result.to_dict()
    text = json.dumps(payload)  # must not raise
    loaded = json.loads(text)
    assert loaded["scenario"] == "ss_hybrid"
    assert loaded["duration_s"] > 0
    assert "lambda" in loaded["tasks_by_kind"]


def test_failed_scenario_to_dict():
    result = run_scenario(ExperimentSpec("tpcds-q5", "qubole_R_la"))
    payload = result.to_dict()
    assert payload["failed"]
    assert "tasks" not in payload
    json.dumps(payload)
