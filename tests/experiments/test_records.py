"""Tests for the unified RunRecord schema and its (de)serialization."""

import json
import math

from repro.core.scenarios import run_scenario
from repro.experiments import ExperimentSpec, RunRecord, read_jsonl, run_spec, write_jsonl

TINY = dict(stages=2, core_seconds_per_stage=8.0,
            shuffle_bytes_per_boundary=1024.0 * 1024,
            required_cores=4, available_cores=2)


def tiny_spec(scenario="ss_hybrid", **kwargs):
    return ExperimentSpec("synthetic", scenario, workload_params=TINY,
                          **kwargs)


def test_run_record_round_trip():
    record = run_spec(tiny_spec())
    assert record.error is None
    clone = RunRecord.from_dict(record.to_dict())
    assert clone.to_dict() == record.to_dict()
    assert clone.spec == record.spec
    assert clone.duration_s == record.duration_s
    assert clone.tasks_by_kind == record.tasks_by_kind


def test_scenario_result_and_record_agree():
    spec = tiny_spec()
    result = run_scenario(spec)
    record = result.to_record(spec)
    assert record.duration_s == result.duration_s
    assert record.cost == result.cost
    assert record.tasks == result.job_result.num_tasks
    assert record.metrics["compute_seconds_total"] == (
        result.job_result.compute_seconds_total)
    # ScenarioResult.to_dict now IS the RunRecord schema.
    assert result.to_dict() == record.to_dict()


def test_failed_run_omits_job_fields():
    record = run_spec(ExperimentSpec("tpcds-q5", "qubole_R_la"))
    assert record.failed
    payload = record.to_dict()
    assert "tasks" not in payload
    assert math.isnan(payload["duration_s"])
    clone = RunRecord.from_dict(payload)
    assert clone.failed and clone.tasks is None


def test_harness_error_is_captured_not_raised():
    record = run_spec(ExperimentSpec("no-such-workload", "ss_R_la"))
    assert record.failed
    assert "unknown workload" in record.error
    assert record.failure_reason.startswith("harness error")


def test_jsonl_round_trip(tmp_path):
    records = [run_spec(tiny_spec(seed=s)) for s in range(2)]
    path = str(tmp_path / "records.jsonl")
    assert write_jsonl(records, path) == 2
    loaded = read_jsonl(path)
    assert len(loaded) == 2
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]


def test_canonical_drops_wall_time_only():
    record = run_spec(tiny_spec())
    canonical = record.canonical()
    assert "wall_time_s" not in canonical
    full = record.to_dict()
    full.pop("wall_time_s")
    assert canonical == full


def test_record_label_uses_scenario_tables():
    record = run_spec(tiny_spec())
    wspec = record.spec.make_workload().spec
    assert record.label(wspec) == "SS 2 VM / 2 La"
    profile = RunRecord(spec=ExperimentSpec("pagerank-small",
                                            "profile_lambda", parallelism=2))
    assert "profile_lambda" in profile.label()


def test_json_serializable_end_to_end():
    record = run_spec(tiny_spec())
    json.dumps(record.to_dict())  # must not raise
