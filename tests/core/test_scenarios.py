"""Integration tests: the §5.1 scenarios reproduce the paper's shapes.

These are the claims a reviewer would check. Absolute numbers are our
simulator's, but the orderings and rough factors are asserted against the
paper's reported results.
"""

import math

import pytest

from repro.core.scenarios import (
    SCENARIO_NAMES,
    ScenarioResult,
    run_all_scenarios,
    run_scenario,
)
from repro.experiments.spec import ExperimentSpec
from repro.workloads import PageRankWorkload, SyntheticWorkload


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        ExperimentSpec("sparkpi", "nope")


def test_run_scenario_requires_a_spec():
    with pytest.raises(TypeError, match="ExperimentSpec"):
        run_scenario("sparkpi")


def test_run_all_scenarios_returns_every_name():
    w = SyntheticWorkload(stages=2, core_seconds_per_stage=16.0,
                          shuffle_bytes_per_boundary=1024,
                          required_cores=4, available_cores=2)
    results = run_all_scenarios(w)
    assert set(results) == set(SCENARIO_NAMES)
    assert all(isinstance(r, ScenarioResult) for r in results.values())


def test_result_label_formats_paper_style():
    w = PageRankWorkload()
    r = run_scenario(ExperimentSpec("pagerank", "ss_hybrid"))
    assert r.label(w.spec) == "SS 3 VM / 13 La"


# ---------------------------------------------------------------------------
# SparkPi (Figure 9)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sparkpi_results():
    return {name: run_scenario(ExperimentSpec("sparkpi", name))
            for name in SCENARIO_NAMES}


def test_sparkpi_under_provisioned_takes_more_than_twice(sparkpi_results):
    """Paper: 'the job has taken more than twice as long to complete'."""
    base = sparkpi_results["spark_R_vm"].duration_s
    assert sparkpi_results["spark_r_vm"].duration_s > 2 * base


def test_sparkpi_all_substrates_near_baseline(sparkpi_results):
    """Paper: Qubole and SS (all variants) perform similar to vanilla
    because there is no shuffle."""
    base = sparkpi_results["spark_R_vm"].duration_s
    for name in ("ss_R_vm", "ss_R_la", "ss_hybrid"):
        assert sparkpi_results[name].duration_s < 1.1 * base
    assert sparkpi_results["qubole_R_la"].duration_s < 1.4 * base


# ---------------------------------------------------------------------------
# K-means (Figure 8)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def kmeans_results():
    return {name: run_scenario(ExperimentSpec("kmeans", name))
            for name in SCENARIO_NAMES}


def test_kmeans_baseline_meets_two_minute_slo(kmeans_results):
    assert kmeans_results["spark_R_vm"].duration_s < 120.0


def test_kmeans_under_provisioned_degrades_hard(kmeans_results):
    """Paper: ~10x degradation on r=4; we assert the thrash regime
    (well beyond the 4x core deficit)."""
    base = kmeans_results["spark_R_vm"].duration_s
    ratio = kmeans_results["spark_r_vm"].duration_s / base
    assert ratio > 5.0


def test_kmeans_autoscale_still_slow(kmeans_results):
    """Paper: 3.3x even with VM scaling (cache-cold executors)."""
    base = kmeans_results["spark_R_vm"].duration_s
    ratio = kmeans_results["spark_autoscale"].duration_s / base
    assert 2.2 < ratio < 4.5


def test_kmeans_ss_lambda_close_to_baseline(kmeans_results):
    """Paper: SS 16 La only ~11% worse than Spark 16 VM."""
    base = kmeans_results["spark_R_vm"].duration_s
    ratio = kmeans_results["ss_R_la"].duration_s / base
    assert ratio < 1.25


def test_kmeans_all_lambda_beats_hybrid_cost_story(kmeans_results):
    """Paper: for K-means an all-Lambda solution is the right choice —
    it massively beats autoscaling."""
    assert (kmeans_results["ss_R_la"].duration_s
            < 0.5 * kmeans_results["spark_autoscale"].duration_s)


def test_kmeans_qubole_worse_than_ss_lambda(kmeans_results):
    assert (kmeans_results["qubole_R_la"].duration_s
            > 1.3 * kmeans_results["ss_R_la"].duration_s)


# ---------------------------------------------------------------------------
# PageRank (Figure 6)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def pagerank_results():
    return run_all_scenarios(PageRankWorkload())


def test_pagerank_under_provisioned_about_2x(pagerank_results):
    """Paper: r=3 degrades performance by around 2.1x."""
    base = pagerank_results["spark_R_vm"].duration_s
    ratio = pagerank_results["spark_r_vm"].duration_s / base
    assert 1.8 < ratio < 2.7


def test_pagerank_autoscale_about_2x(pagerank_results):
    """Paper: 'even with VM based scaling, total execution time is worse
    by as much as 2x'."""
    base = pagerank_results["spark_R_vm"].duration_s
    ratio = pagerank_results["spark_autoscale"].duration_s / base
    assert 1.6 < ratio < 2.4


def test_pagerank_qubole_more_than_half_over_baseline(pagerank_results):
    """Paper: Qubole's S3 shuffle adds more than 60%; ours lands close."""
    base = pagerank_results["spark_R_vm"].duration_s
    ratio = pagerank_results["qubole_R_la"].duration_s / base
    assert ratio > 1.45


def test_pagerank_ss_shuffle_overhead_about_27pct(pagerank_results):
    """Paper: SplitServe's HDFS shuffling increases time by only ~27%."""
    base = pagerank_results["spark_R_vm"].duration_s
    ratio = pagerank_results["ss_R_la"].duration_s / base
    assert 1.05 < ratio < 1.45


def test_pagerank_hybrid_beats_autoscale_by_about_a_third(pagerank_results):
    """Paper: joint VM+Lambda execution improves on VM scaling by ~32%."""
    autoscale = pagerank_results["spark_autoscale"].duration_s
    hybrid = pagerank_results["ss_hybrid"].duration_s
    improvement = 1 - hybrid / autoscale
    assert 0.2 < improvement < 0.55


def test_pagerank_segue_still_beats_autoscale(pagerank_results):
    """Paper: with segue, still a 24% improvement over VM scaling."""
    autoscale = pagerank_results["spark_autoscale"].duration_s
    segue = pagerank_results["ss_hybrid_segue"].duration_s
    improvement = 1 - segue / autoscale
    assert 0.1 < improvement < 0.5
    # Segue trades a little time for moving off Lambdas (cleanup).
    assert segue >= pagerank_results["ss_hybrid"].duration_s


def test_pagerank_segue_cuts_lambda_spend(pagerank_results):
    """Segueing decommissions Lambdas early: the Lambda line item must
    shrink vs the no-segue hybrid."""
    hybrid = pagerank_results["ss_hybrid"].cost_breakdown.get("lambda", 0)
    segue = pagerank_results["ss_hybrid_segue"].cost_breakdown.get("lambda", 0)
    assert segue < hybrid


# ---------------------------------------------------------------------------
# TPC-DS (Figure 5)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def q16_results():
    return {name: run_scenario(ExperimentSpec("tpcds-q16", name))
            for name in SCENARIO_NAMES}


def test_tpcds_baseline_in_paper_band(q16_results):
    """Paper: 'most of these queries finish under, or at about, 60s'."""
    assert q16_results["spark_R_vm"].duration_s < 75.0


def test_tpcds_under_provisioned_multiples(q16_results):
    base = q16_results["spark_R_vm"].duration_s
    assert q16_results["spark_r_vm"].duration_s > 2.3 * base


def test_tpcds_ss_vm_close_to_vanilla(q16_results):
    """Paper: 'SS 32 VM compares closely with Spark 32 VM ... only 1.6x
    poorer in the worst case'."""
    base = q16_results["spark_R_vm"].duration_s
    assert q16_results["ss_R_vm"].duration_s < 1.6 * base


def test_tpcds_ss_lambda_within_paper_worst_case(q16_results):
    """Paper: SS 32 La at worst ~2.3x poorer than Spark 32 VM."""
    base = q16_results["spark_R_vm"].duration_s
    assert q16_results["ss_R_la"].duration_s < 2.3 * base


def test_tpcds_hybrid_beats_autoscale_by_half(q16_results):
    """Paper: 'SS 8 VM / 24 La takes 55.2% less execution time compared
    to VM based autoscaling' (average)."""
    autoscale = q16_results["spark_autoscale"].duration_s
    hybrid = q16_results["ss_hybrid"].duration_s
    improvement = 1 - hybrid / autoscale
    assert 0.4 < improvement < 0.7


def test_tpcds_qubole_order_of_magnitude_slower(q16_results):
    """Paper: Qubole takes 21.7x more execution time on average."""
    base = q16_results["spark_R_vm"].duration_s
    assert q16_results["qubole_R_la"].duration_s > 10 * base


def test_tpcds_q5_fails_on_qubole():
    """Paper footnote 11: Qubole's prototype hits fatal errors on Q5."""
    result = run_scenario(ExperimentSpec("tpcds-q5", "qubole_R_la"))
    assert result.failed
    assert math.isnan(result.duration_s)
    assert "fatal error" in result.failure_reason


# ---------------------------------------------------------------------------
# Cross-cutting properties
# ---------------------------------------------------------------------------

def test_costs_are_positive_and_broken_down(pagerank_results):
    for name, result in pagerank_results.items():
        if result.failed:
            continue
        assert result.cost > 0
        assert result.cost == pytest.approx(
            sum(result.cost_breakdown.values()))


def test_lambda_scenarios_bill_lambdas(pagerank_results):
    for name in ("qubole_R_la", "ss_R_la", "ss_hybrid"):
        assert pagerank_results[name].cost_breakdown.get("lambda", 0) > 0


def test_vm_only_scenarios_have_no_lambda_cost(pagerank_results):
    for name in ("spark_r_vm", "spark_R_vm", "spark_autoscale", "ss_R_vm"):
        assert pagerank_results[name].cost_breakdown.get("lambda", 0) == 0


def test_qubole_pays_s3_request_costs(q16_results):
    assert q16_results["qubole_R_la"].cost_breakdown.get("storage:s3", 0) > 0


def test_deterministic_given_seed():
    a = run_scenario(ExperimentSpec("sparkpi", "ss_hybrid", seed=11))
    b = run_scenario(ExperimentSpec("sparkpi", "ss_hybrid", seed=11))
    assert a.duration_s == b.duration_s
    assert a.cost == b.cost


def test_seed_changes_durations():
    a = run_scenario(ExperimentSpec("sparkpi", "ss_hybrid", seed=1))
    b = run_scenario(ExperimentSpec("sparkpi", "ss_hybrid", seed=2))
    assert a.duration_s != b.duration_s


def test_trace_kept_only_on_request():
    spec = ExperimentSpec("sparkpi", "ss_hybrid")
    with_trace = run_scenario(spec, keep_trace=True)
    without = run_scenario(spec, keep_trace=False)
    assert with_trace.trace is not None and len(with_trace.trace) > 0
    assert without.trace is None
