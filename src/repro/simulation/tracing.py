"""Structured event tracing.

Components emit :class:`TraceRecord` rows (timestamp, category, event
name, free-form fields). The analysis layer consumes the trace to build
Figure 7-style executor timelines and per-scenario breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace row.

    ``category`` groups related events ("vm", "lambda", "task", "shuffle",
    "segue", ...); ``name`` is the specific event ("launch", "register",
    "finish", ...); ``fields`` carries event-specific payload.
    """

    time: float
    category: str
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Collects trace records and answers simple queries over them."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def record(self, time: float, category: str, name: str, **fields: Any) -> None:
        """Append one record (no-op when disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, name, fields))

    def record_packed(self, time: float, category: str, name: str,
                      fields: Dict[str, Any]) -> None:
        """:meth:`record` taking the payload as an already-built dict
        (same contract as ``EventBus.record_packed``: the dict is handed
        over and must not be mutated by the caller afterwards)."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, name, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in emission order (which is also time order)."""
        return list(self._records)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Filter records by category, name, and/or an arbitrary predicate."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if name is not None and rec.name != name:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first_time(self, category: str, name: str) -> Optional[float]:
        """Time of the first matching record, or None."""
        for rec in self._records:
            if rec.category == category and rec.name == name:
                return rec.time
        return None

    def last_time(self, category: str, name: str) -> Optional[float]:
        """Time of the last matching record, or None."""
        result = None
        for rec in self._records:
            if rec.category == category and rec.name == name:
                result = rec.time
        return result

    def clear(self) -> None:
        self._records.clear()

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Records as plain dicts (for JSON export or DataFrames).

        The payload lives under a ``fields`` key so that a field named
        ``time``/``category``/``name`` can never clobber the envelope.
        """
        return [{"time": r.time, "category": r.category, "name": r.name,
                 "fields": dict(r.fields)} for r in self._records]

    def save_jsonl(self, path: str) -> int:
        """Write one JSON object per record to ``path``; returns the
        record count. Keys are sorted so two same-seed runs produce
        byte-identical files. The format loads cleanly into pandas/jq."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for row in self.to_dicts():
                handle.write(json.dumps(row, sort_keys=True, default=str)
                             + "\n")
        return len(self._records)
