"""Smoke tests: every shipped example runs end to end and says what it
promises. These are the repo's user-facing entry points, so they get
executed, not just linted."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Spark 16 VM" in out
    assert "SS 3 VM / 13 La" in out
    assert "beats VM-based autoscaling" in out


def test_tpcds_burst():
    out = run_example("tpcds_burst.py")
    for query in ("q5", "q16", "q94", "q95"):
        assert query in out
    assert "55.2%" in out  # cites the paper's number


def test_pagerank_segue():
    out = run_example("pagerank_segue.py")
    assert out.count("finished in") == 3
    assert "segue commenced" in out
    assert "#" in out  # timelines rendered


def test_autoscaling_day():
    out = run_example("autoscaling_day.py")
    assert "m(t)" in out
    assert "Cost manager plan" in out


def test_kmeans_reference():
    out = run_example("kmeans_reference.py")
    assert "clustered" in out
    assert "JVM overhead factor" in out
    assert "SS 16 La" in out


def test_flink_style_stream():
    out = run_example("flink_style_stream.py")
    assert "SplitServe bridge" in out
    assert "100%" in out  # the bridged pipeline stays on time
