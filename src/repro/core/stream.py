"""The two-time-scale system of §4.1, end to end.

The paper frames SplitServe as the *intra-job* half of a larger
autoscaling system: an inter-job manager sizes the VM fleet from demand
predictions (Figure 2's m(t)+kσ(t) policies) while SplitServe makes each
arriving job fit whatever is free, bridging shortfalls with Lambdas.

:class:`JobStreamSimulator` runs that whole loop: a diurnal demand trace
drives Poisson job arrivals; a fleet-manager process tracks the policy's
core target (paying real VM boot delays on the way up); every arriving
job claims free cores and — depending on ``bridge`` — covers the rest
with Lambdas (SplitServe), or queues for cores (vanilla). The report
answers the question §4.1 poses: how lean can the policy go before SLOs
break, and what does the day cost?
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cloud.instance_types import instance_type
from repro.cloud.lambda_fn import LambdaConfig
from repro.cloud.pricing import BillingMeter
from repro.cloud.provisioner import CloudProvider
from repro.core.autoscaler import DemandPoint, ProvisioningPolicy
from repro.simulation import Environment, RandomStreams
from repro.spark.application import SparkDriver
from repro.spark.config import SparkConf
from repro.spark.shuffle import ExternalShuffleBackend
from repro.storage import HDFS
from repro.workloads.generators import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.vm import VirtualMachine


@dataclass
class JobRecord:
    """One job's fate in the stream."""

    job_id: int
    arrival_s: float
    required_cores: int
    vm_cores: int
    lambda_cores: int
    start_s: float
    finish_s: Optional[float] = None
    slo_s: float = 0.0

    @property
    def duration(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def met_slo(self) -> Optional[bool]:
        if self.duration is None:
            return None
        return self.duration <= self.slo_s


@dataclass
class StreamReport:
    """Aggregate outcome of one simulated stream."""

    policy_label: str
    bridge: str
    jobs: List[JobRecord] = field(default_factory=list)
    vm_cost: float = 0.0
    lambda_cost: float = 0.0

    @property
    def completed(self) -> List[JobRecord]:
        return [j for j in self.jobs if j.finish_s is not None]

    @property
    def slo_attainment(self) -> float:
        done = self.completed
        if not done:
            return float("nan")
        return sum(1 for j in done if j.met_slo) / len(done)

    @property
    def mean_duration(self) -> float:
        done = self.completed
        if not done:
            return float("nan")
        return sum(j.duration for j in done) / len(done)

    @property
    def lambda_bridged_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.lambda_cores > 0)

    @property
    def total_cost(self) -> float:
        return self.vm_cost + self.lambda_cost


class JobStreamSimulator:
    """Replays a day's job stream under one policy + bridging mode."""

    def __init__(
        self,
        demand: List[DemandPoint],
        policy: ProvisioningPolicy,
        bridge: str = "lambda",
        seed: int = 0,
        job_cores: int = 8,
        job_mean_duration_s: float = 60.0,
        job_slo_s: float = 120.0,
        fleet_itype: str = "m4.xlarge",
        control_interval_s: float = 60.0,
    ) -> None:
        if bridge not in ("lambda", "none"):
            raise ValueError(f"bridge must be 'lambda' or 'none', got {bridge!r}")
        if len(demand) < 2:
            raise ValueError("demand trace needs at least two samples")
        self.demand = demand
        self.policy = policy
        self.bridge = bridge
        self.seed = seed
        self.job_cores = job_cores
        self.job_mean_duration_s = job_mean_duration_s
        self.job_slo_s = job_slo_s
        self.fleet_itype = instance_type(fleet_itype)
        self.control_interval_s = control_interval_s

        self.env = Environment()
        self.rng = RandomStreams(seed)
        self.meter = BillingMeter()
        self.provider = CloudProvider(self.env, self.rng, meter=self.meter)
        self._master = self.provider.request_vm("m4.xlarge", name="master",
                                                already_running=True)
        self._master.allocate_cores(self._master.itype.vcpus)
        self._hdfs = HDFS(self.env, [self._master], self.rng, self.meter)
        self._fleet: List["VirtualMachine"] = []
        self._job_ids = itertools.count()
        self._records: List[JobRecord] = []
        self._job_compute_core_s = job_mean_duration_s * job_cores * 0.85

    # ------------------------------------------------------------------
    # Demand interpolation
    # ------------------------------------------------------------------

    def _demand_at(self, t: float) -> DemandPoint:
        for point in reversed(self.demand):
            if point.time_s <= t:
                return point
        return self.demand[0]

    # ------------------------------------------------------------------
    # Fleet management (inter-job)
    # ------------------------------------------------------------------

    @property
    def fleet_cores(self) -> int:
        return sum(vm.total_cores for vm in self._fleet if vm.is_running)

    def _fleet_manager(self):
        """Track the policy's core target: boot VMs up (with the real
        delay), retire fully idle VMs down."""
        per_vm = self.fleet_itype.vcpus
        while True:
            target = self.policy.cores_at(self._demand_at(self.env.now))
            pending = sum(self.fleet_itype.vcpus for vm in self._fleet
                          if not vm.is_running
                          and vm.terminate_time is None)
            have = self.fleet_cores + pending
            while have < target:
                vm = self.provider.request_vm(self.fleet_itype)
                self._fleet.append(vm)
                have += per_vm
            excess = have - target
            for vm in list(self._fleet):
                if excess < per_vm:
                    break
                if vm.is_running and vm.allocated_cores == 0:
                    vm.terminate()
                    self._fleet.remove(vm)
                    excess -= per_vm
            yield self.env.timeout(self.control_interval_s)

    # ------------------------------------------------------------------
    # Job arrivals and execution (intra-job)
    # ------------------------------------------------------------------

    def _arrival_process(self, horizon_s: float):
        while self.env.now < horizon_s:
            point = self._demand_at(self.env.now)
            # Little's law: busy cores ~ rate * duration * cores_per_job.
            rate = max(1e-6, point.actual
                       / (self.job_cores * self.job_mean_duration_s))
            gap = self.rng.exponential("stream.arrivals", 1.0 / rate)
            yield self.env.timeout(gap)
            if self.env.now >= horizon_s:
                return
            self.env.process(self._run_job())

    def _claim_free_cores(self, wanted: int):
        claims = []
        for vm in self._fleet:
            if not vm.is_running:
                continue
            take = min(wanted, vm.free_cores)
            if take > 0:
                vm.allocate_cores(take)
                claims.append((vm, take))
                wanted -= take
            if wanted == 0:
                break
        return claims, wanted

    def _run_job(self):
        record = JobRecord(
            job_id=next(self._job_ids), arrival_s=self.env.now,
            required_cores=self.job_cores, vm_cores=0, lambda_cores=0,
            start_s=self.env.now, slo_s=self.job_slo_s)
        self._records.append(record)

        claims, shortfall = self._claim_free_cores(self.job_cores)
        if self.bridge == "none":
            # Vanilla: wait until enough cores free up.
            while shortfall > 0:
                yield self.env.timeout(1.0)
                more, shortfall = self._claim_free_cores(shortfall)
                claims.extend(more)
        record.vm_cores = sum(take for _vm, take in claims)
        record.lambda_cores = self.job_cores - record.vm_cores
        record.start_s = self.env.now

        backend = ExternalShuffleBackend(self._hdfs)
        driver = SparkDriver(self.env, SparkConf(), self.rng, backend)
        for vm, take in claims:
            vm.release_cores(take)  # the driver re-claims them per core
            for _ in range(take):
                driver.add_vm_executor(vm)
        lambdas = []
        for _ in range(record.lambda_cores):
            fn = self.provider.invoke_lambda(LambdaConfig())
            lambdas.append(fn)

            def attach(env, fn=fn, driver=driver):
                yield fn.ready
                driver.add_lambda_executor(fn)

            self.env.process(attach(self.env, fn))

        workload = SyntheticWorkload(
            stages=2,
            core_seconds_per_stage=self._job_compute_core_s / 2,
            shuffle_bytes_per_boundary=32 * 1024 * 1024,
            required_cores=self.job_cores,
            available_cores=max(1, record.vm_cores or 1),
            label=f"stream-job-{record.job_id}")
        job = driver.submit(workload.build(self.job_cores))
        yield job.done
        record.finish_s = self.env.now
        for vm, take in claims:
            vm.release_cores(take)
        for fn in lambdas:
            self.provider.release_lambda(fn)
            self.provider.bill_lambda_usage(fn)

    # ------------------------------------------------------------------

    def run(self, horizon_s: float) -> StreamReport:
        """Simulate ``horizon_s`` seconds of the stream."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self.env.process(self._fleet_manager())
        self.env.process(self._arrival_process(horizon_s))
        # Run past the horizon so in-flight jobs finish.
        self.env.run(until=horizon_s + 20 * self.job_mean_duration_s)

        report = StreamReport(policy_label=self.policy.label,
                              bridge=self.bridge, jobs=self._records)
        end = self.env.now
        for vm in self.provider.vms:
            if vm is self._master:
                continue
            start = vm.running_time
            if start is None:
                continue
            stop = vm.terminate_time if vm.terminate_time is not None else end
            report.vm_cost += self.meter.bill_vm(vm.name, vm.itype,
                                                 start, stop)
        report.lambda_cost = self.meter.breakdown().get("lambda", 0.0)
        return report
