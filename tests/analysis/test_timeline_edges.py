"""Edge-case tests for timeline reconstruction and rendering."""

from repro.analysis.timeline import Timeline, build_timeline
from repro.simulation import TraceRecorder


def test_empty_trace_builds_empty_timeline():
    timeline = build_timeline(TraceRecorder())
    assert timeline.executors == []
    assert timeline.segue_time is None
    assert timeline.end_time == 0.0


def test_render_handles_no_activity():
    timeline = Timeline(executors=[], segue_time=None, stage_boundaries=[])
    text = timeline.render(width=20)
    assert "stages" in text


def test_executor_without_tasks():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="idle-0",
                 kind="vm")
    timeline = build_timeline(trace)
    span = timeline.executors[0]
    assert span.first_task_start is None
    assert span.busy_seconds == 0.0


def test_task_spans_reconstructed_from_durations():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0", kind="vm")
    trace.record(12.0, "executor", "task_end", executor="e0",
                 task="stage0/p0", state="finished", duration=12.0)
    trace.record(30.0, "executor", "task_end", executor="e0",
                 task="stage0/p1", state="finished", duration=10.0)
    timeline = build_timeline(trace)
    span = timeline.executors[0]
    assert span.tasks[0].start == 0.0
    assert span.tasks[0].end == 12.0
    assert span.tasks[1].start == 20.0
    assert span.busy_seconds == 22.0
    assert timeline.end_time == 30.0


def test_decommission_recorded_once():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0",
                 kind="lambda")
    trace.record(5.0, "executor", "draining", executor="e0")
    trace.record(9.0, "executor", "dead", executor="e0")
    timeline = build_timeline(trace)
    assert timeline.executors[0].decommissioned_at == 5.0
    assert timeline.segue_time == 5.0


def test_kind_filter():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="v", kind="vm")
    trace.record(0.0, "executor", "registered", executor="l",
                 kind="lambda")
    timeline = build_timeline(trace)
    assert len(timeline.executors_of_kind("vm")) == 1
    assert len(timeline.executors_of_kind("lambda")) == 1
    assert timeline.executors_of_kind("container") == []


def test_render_marks_registration_of_idle_executor():
    trace = TraceRecorder()
    trace.record(0.0, "executor", "registered", executor="e0", kind="vm")
    trace.record(50.0, "executor", "registered", executor="late",
                 kind="vm")
    trace.record(100.0, "executor", "task_end", executor="e0",
                 task="t", state="finished", duration=100.0)
    text = build_timeline(trace).render(width=40)
    assert "+" in text  # the late executor's registration tick
