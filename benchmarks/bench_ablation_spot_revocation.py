"""Ablation: executor-local vs external shuffle under spot revocations.

§2 frames TR-Spark's problem — transient resources vanishing mid-job —
as the extreme form of what killing Lambda executors does: every lost
host takes its local shuffle files, triggering lineage rollback. The
same SplitServe design decision that makes segueing cheap (shuffle on
shared HDFS, §4.3) also immunizes jobs against revocation.

We run a two-stage job on a half-spot cluster, sweep the revocation
moment across the job's lifetime, and compare total time and re-run map
tasks for local vs HDFS shuffle.
"""

from repro.analysis.reporting import format_table
from repro.cloud.spot import SpotVM
from repro.workloads.generators import SyntheticWorkload
from benchmarks.conftest import run_once

from tests.spark.helpers import MiniCluster

#: Revocation moments across the job (maps finish ~20s, job ~41s).
REVOKE_AT_SWEEP = (10.0, 25.0, 35.0)


def run_one(backend: str, revoke_at: float, seed: int = 2):
    cluster = MiniCluster(seed=seed, backend=backend)
    stable = cluster.provider.request_vm("m4.xlarge", already_running=True)
    for _ in range(2):
        cluster.driver.add_vm_executor(stable)
    spot = SpotVM(cluster.env, "spot-0", "m4.xlarge", cluster.rng,
                  revocation_at_s=revoke_at, already_running=True)
    cluster.provider.vms.append(spot)
    for _ in range(2):
        cluster.driver.add_vm_executor(spot)
    workload = SyntheticWorkload(
        stages=2, core_seconds_per_stage=80.0,
        shuffle_bytes_per_boundary=64 * 1024 * 1024,
        required_cores=4, available_cores=4)
    job = cluster.driver.submit(workload.build(4))
    cluster.env.run(until=job.done)
    map_runs = sum(1 for a in job.task_attempts if a.spec.is_shuffle_map)
    return job.duration, map_runs


def run_sweep():
    out = {}
    for revoke_at in REVOKE_AT_SWEEP:
        out[revoke_at] = {backend: run_one(backend, revoke_at)
                          for backend in ("local", "hdfs")}
    return out


def test_ablation_spot_revocation(benchmark, emit):
    results = run_once(benchmark, run_sweep)
    rows = []
    for revoke_at, by_backend in results.items():
        local_t, local_maps = by_backend["local"]
        hdfs_t, hdfs_maps = by_backend["hdfs"]
        rows.append([f"t={revoke_at:.0f}s",
                     f"{local_t:.1f}s ({local_maps} map runs)",
                     f"{hdfs_t:.1f}s ({hdfs_maps} map runs)"])
    emit("Ablation — spot revocation: executor-local vs HDFS shuffle",
         format_table(["revoked at", "local shuffle (vanilla)",
                       "HDFS shuffle (SplitServe)"], rows))

    # Post-map-stage revocations force recomputation only under local
    # shuffle; the HDFS variant never re-runs a map.
    for revoke_at in (25.0, 35.0):
        local_t, local_maps = results[revoke_at]["local"]
        hdfs_t, hdfs_maps = results[revoke_at]["hdfs"]
        assert local_maps > 4
        assert hdfs_maps == 4
        assert hdfs_t <= local_t
