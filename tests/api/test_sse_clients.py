"""``GET /events`` under misbehaving clients.

The SSE layer's contract when consumers fail: a mid-stream disconnect
releases the subscription (no leaks, no stalled publishers), a slow
consumer loses events to its *own* bounded buffer with deterministic
drop accounting (never stalling the hub), and a reconnecting client
resumes past the last sequence it saw via ``Last-Event-ID`` (or the
``?after=`` query form) with no duplicates and no gaps.
"""

import asyncio
from types import SimpleNamespace

import pytest

from repro.api import schemas
from repro.api.app import _event_stream, create_app
from repro.api.asgi import SSEResponse
from repro.api.service import EventHub, ServeConfig
from repro.api.testclient import TestClient
from repro.observability.categories import CAT_SERVE, EV_JOB_QUEUED


def _publish(hub: EventHub, n: int, t0: float = 0.0) -> None:
    for i in range(n):
        hub.record(t0 + i, CAT_SERVE, EV_JOB_QUEUED, job=f"job-{i:06d}")


# ---------------------------------------------------------------------------
# Mid-stream disconnect
# ---------------------------------------------------------------------------

def test_mid_stream_disconnect_releases_the_subscription():
    hub = EventHub()
    serve = SimpleNamespace(hub=hub)
    response = SSEResponse(_event_stream(
        serve, replay=0, after_seq=None, category=None, max_events=0,
        idle_timeout_s=5.0))

    frames = []
    disconnected = asyncio.Event()

    async def receive():
        # The transport's disconnect arrives once the client has seen
        # two frames mid-stream.
        await disconnected.wait()
        return {"type": "http.disconnect"}

    async def send(message):
        frames.append(message)
        bodies = [m for m in frames
                  if m["type"] == "http.response.body" and m.get("body")]
        if len(bodies) >= 2:
            disconnected.set()

    async def main():
        task = asyncio.ensure_future(response.send(receive, send))
        await asyncio.sleep(0.05)       # let the stream subscribe
        assert hub.stats()["subscribers"] == 1
        _publish(hub, 2)                # the frames the client does see
        await asyncio.sleep(0.05)
        _publish(hub, 1, t0=10.0)       # wakes the stream post-disconnect
        await asyncio.wait_for(task, timeout=5.0)

    asyncio.run(main())
    # The handler noticed the disconnect, stopped streaming, and
    # released the subscription — nothing leaks past the consumer.
    assert hub.stats()["subscribers"] == 0
    bodies = [m for m in frames
              if m["type"] == "http.response.body" and m.get("body")]
    assert len(bodies) == 2
    # No end-of-response frame: the stream was severed, not completed.
    assert not any(m["type"] == "http.response.body"
                   and not m.get("more_body", False) for m in frames)


# ---------------------------------------------------------------------------
# Slow consumers (bounded buffers, deterministic drops)
# ---------------------------------------------------------------------------

def test_slow_consumer_drops_newest_beyond_its_buffer():
    hub = EventHub(maxlen=64)
    slow, backlog = hub.subscribe(depth=4)
    fast, _ = hub.subscribe()
    assert backlog == []

    _publish(hub, 10)

    # The slow consumer kept the oldest 4 and lost exactly the 6
    # published while its buffer sat full; the fast consumer and the
    # hub itself never stalled.
    assert slow.qsize() == 4
    assert slow.dropped == 6
    assert fast.qsize() == 10
    assert hub.stats()["dropped_total"] == 6
    kept = [slow.get(timeout=1.0)["seq"] for _ in range(4)]
    assert kept == [1, 2, 3, 4]

    # Recovery path: reconnecting past the last seen sequence replays
    # the dropped events from the ring — end to end, nothing is lost.
    _, replayed = hub.subscribe(after_seq=kept[-1])
    assert [item["seq"] for item in replayed] == [5, 6, 7, 8, 9, 10]


def test_subscriber_buffer_never_blocks_the_publisher():
    hub = EventHub()
    sub, _ = hub.subscribe(depth=1)
    _publish(hub, 3)  # put_nowait semantics: returns immediately
    assert sub.qsize() == 1
    assert sub.dropped == 2
    hub.unsubscribe(sub)
    assert hub.stats()["subscribers"] == 0


# ---------------------------------------------------------------------------
# Replay after reconnect (Last-Event-ID) over HTTP
# ---------------------------------------------------------------------------

@pytest.fixture()
def client():
    config = ServeConfig(max_concurrent=2, max_queue=8, seed=0,
                         pool_cores=4)
    with TestClient(create_app(config)) as c:
        yield c


def _seed_events(client) -> None:
    r = client.post("/jobs", json={"workload": "sparkpi",
                                   "scenario": "spark_R_vm", "seed": 1})
    assert r.status == 202
    done = client.get(f"/jobs/{r.data['job_id']}", params={"wait": 60})
    assert done.data["state"] == schemas.JOB_COMPLETED


def test_last_event_id_resumes_without_duplicates_or_gaps(client):
    _seed_events(client)  # queued, started, finished

    first = client.get("/events", params={"replay": 50, "max_events": 2,
                                          "category": CAT_SERVE})
    events = first.sse_events()
    assert [e["data"]["name"] for e in events] == ["job_queued",
                                                   "job_started"]
    last_id = events[-1]["id"]

    # The standard header form: the stream resumes past the last
    # sequence the client acknowledged — no duplicates, no gaps.
    resumed = client.get("/events", params={"max_events": 1,
                                            "category": CAT_SERVE},
                         headers={"Last-Event-ID": last_id})
    [event] = resumed.sse_events()
    assert event["data"]["name"] == "job_finished"
    assert int(event["id"]) > int(last_id)

    # The ?after= query form (curl-friendly) behaves identically.
    via_query = client.get("/events", params={"max_events": 1,
                                              "category": CAT_SERVE,
                                              "after": last_id})
    [same] = via_query.sse_events()
    assert same["id"] == event["id"]

    # Every bounded stream released its subscription on completion.
    assert client.app.runtime.hub.stats()["subscribers"] == 0


def test_non_integer_last_event_id_is_rejected(client):
    bad = client.get("/events", headers={"Last-Event-ID": "bogus"})
    assert bad.status == 400
    env = bad.envelope()
    assert env.kind == schemas.KIND_ERROR
    assert env.data["code"] == schemas.ERR_INVALID_REQUEST
    assert "Last-Event-ID" in env.data["message"]
