"""The eight evaluation scenarios of §5.1, as thin cluster configurations.

Every scenario runs a workload's job (always *sized* for R cores) under a
different resource condition and records execution time plus the marginal
dollar cost of the resources involved:

========================  =====================================================
``spark_r_vm``            vanilla Spark, r < R cores, no autoscaling
``spark_R_vm``            vanilla Spark, R cores (the baseline)
``spark_autoscale``       vanilla Spark, r cores; R − r VM cores procured after
                          a detection threshold, usable after the VM delay
``qubole_R_la``           Qubole Spark-on-Lambda: R Lambdas, S3 shuffle
``ss_R_vm``               SplitServe, R VM cores, HDFS shuffle
``ss_R_la``               SplitServe, R Lambdas, HDFS shuffle
``ss_hybrid``             SplitServe, r VM cores + Δ Lambdas, no segue
``ss_hybrid_segue``       same, plus segue to VM cores once they are ready
========================  =====================================================

The shared plumbing — environment, seeded streams, provider, meter,
event bus, fault arming — lives in
:class:`~repro.cluster.runtime.ClusterRuntime`, and the executor
attachment shapes (VM attach loops, background scale-out, Lambda
respawn) in :mod:`repro.cluster.pool`. Each ``_scenario`` function below
is only the configuration that distinguishes it: which shuffle backend,
which capacity, and which billing lines.

Marginal-cost accounting follows §5.1 ("we only report the cost incurred
towards the job in question"): pre-provisioned cluster cores are billed
at their per-core share for the job's duration; VMs procured *for* the
job are billed whole from readiness; Lambdas per GB-second used; storage
requests per the service's price sheet. The master (and the HDFS node
colocated with it) is long-running shared infrastructure, identical
across scenarios, and is not billed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.cluster.pool import (
    add_executors_on_vms,
    attach_lambda_with_respawn,
    scale_out_after,
)
from repro.cluster.runtime import ClusterRuntime
from repro.core.splitserve import SplitServe
from repro.observability.instrumentation import attribute_costs
from repro.observability.stage_metrics import dotted_stage_metrics
from repro.simulation import TraceRecorder
from repro.simulation.faults import FaultsInput
from repro.spark.application import JobResult, SparkDriver
from repro.spark.config import SparkConf
from repro.spark.dag_scheduler import JobFailedError
from repro.spark.shuffle import LocalShuffleBackend, QuboleS3ShuffleBackend
from repro.storage import S3
from repro.workloads.base import Workload

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.experiments.records import RunRecord
    from repro.experiments.spec import ExperimentSpec

SCENARIO_NAMES = [
    "spark_r_vm",
    "spark_R_vm",
    "spark_autoscale",
    "qubole_R_la",
    "ss_R_vm",
    "ss_R_la",
    "ss_hybrid",
    "ss_hybrid_segue",
]

#: Human-readable labels matching the paper's figures (R and r filled in
#: per workload when rendering; d is the Lambda delta the run *used*,
#: which can fall short of R − r under invoke throttling).
SCENARIO_LABELS = {
    "spark_r_vm": "Spark {r} VM",
    "spark_R_vm": "Spark {R} VM",
    "spark_autoscale": "Spark {r}/{R} autoscale",
    "qubole_R_la": "Qubole {R} La",
    "ss_R_vm": "SS {R} VM",
    "ss_R_la": "SS {R} La",
    "ss_hybrid": "SS {r} VM / {d} La",
    "ss_hybrid_segue": "SS {r} VM / {d} La Segue",
    # Not part of SCENARIO_NAMES (never run by ``--scenario all``): the
    # planner-enforced split, dispatched via ExperimentSpec.policy.
    "ss_planned": "SS planned split",
}

#: Effective single-prefix S3 request rate under Qubole's shuffle flood.
#: The nominal per-bucket ceilings (3.5k PUT/s / 5.5k GET/s) collapse
#: under sustained 503-and-retry storms on one key prefix, which is how
#: Qubole's shuffle drove S3 in 2019; see EXPERIMENTS.md.
QUBOLE_S3_EFFECTIVE_RATE = 160.0
#: S3 read-after-overwrite consistency lag Qubole's reducers poll out.
QUBOLE_CONSISTENCY_MEAN_S = 6.0
#: Per-connection S3 throughput for Qubole's small pair objects (no
#: multipart parallelism on ~MB-sized shuffle blocks).
QUBOLE_S3_STREAM_BYTES_PER_S = 10.0 * 1024 * 1024
#: Delay before the autoscaler decides to procure VMs.
AUTOSCALE_DETECT_S = 1.0


@dataclass
class ScenarioResult:
    """One (workload, scenario) execution."""

    scenario: str
    workload: str
    duration_s: float
    cost: float
    failed: bool = False
    failure_reason: Optional[str] = None
    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    job_result: Optional[JobResult] = None
    trace: Optional[TraceRecorder] = None
    #: Seed the run used (recorded so results stay replayable).
    seed: int = 0
    #: The spec this result came from, when run through the new API.
    experiment: Optional["ExperimentSpec"] = None
    #: Lambda executors the launch actually assembled (``ss_*`` runs
    #: only); feeds the ``{d}`` label slot, which can differ from
    #: R − r when invocations were throttled or degraded to VM cores.
    lambda_cores_used: Optional[int] = None
    #: Recovery accounting (wasted work, rollback recompute, time to
    #: recovery, degradation counters) — populated only for runs armed
    #: with a fault plan, so clean records stay bit-identical.
    recovery: Dict[str, float] = field(default_factory=dict)
    #: Telemetry snapshot: the run's MetricsRegistry flattened to dotted
    #: names, plus per-stage/per-kind aggregates. Merged into
    #: ``RunRecord.metrics``.
    telemetry: Dict[str, float] = field(default_factory=dict)

    def label(self, spec) -> str:
        delta = (self.lambda_cores_used if self.lambda_cores_used is not None
                 else spec.shortfall_cores)
        return SCENARIO_LABELS[self.scenario].format(
            R=spec.required_cores, r=spec.available_cores, d=delta)

    def to_record(self, spec: Optional["ExperimentSpec"] = None,
                  wall_time_s: float = 0.0) -> "RunRecord":
        """Project this result onto the unified RunRecord schema."""
        from repro.experiments.records import RunRecord
        from repro.experiments.spec import ExperimentSpec
        if spec is None:
            spec = self.experiment
        if spec is None:
            # Standalone path: synthesize a spec from what we know. The
            # workload label may not be a registry name, so the spec is
            # descriptive rather than guaranteed re-runnable.
            spec = ExperimentSpec(workload=self.workload,
                                  scenario=self.scenario, seed=self.seed)
        tasks = tasks_by_kind = failed_attempts = None
        metrics: Dict[str, object] = {}
        if self.job_result is not None:
            jr = self.job_result
            tasks = jr.num_tasks
            tasks_by_kind = dict(jr.tasks_by_kind)
            failed_attempts = jr.failed_attempts
            metrics = {
                "num_stages": jr.num_stages,
                "submit_time": jr.submit_time,
                "finish_time": jr.finish_time,
                "fetch_seconds_total": jr.fetch_seconds_total,
                "input_seconds_total": jr.input_seconds_total,
                "compute_seconds_total": jr.compute_seconds_total,
                "gc_overhead_seconds_total": jr.gc_overhead_seconds_total,
                "write_seconds_total": jr.write_seconds_total,
                "cache_hits": jr.cache_hits,
            }
        if self.telemetry:
            metrics.update(self.telemetry)
        if self.recovery:
            metrics.update(self.recovery)
        return RunRecord(
            spec=spec, workload=self.workload,
            duration_s=self.duration_s, cost=self.cost,
            wall_time_s=wall_time_s, failed=self.failed,
            failure_reason=self.failure_reason,
            cost_breakdown=dict(self.cost_breakdown),
            tasks=tasks, tasks_by_kind=tasks_by_kind or {},
            failed_attempts=failed_attempts, metrics=metrics)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary in the RunRecord schema (trace and
        job internals omitted; export the trace separately via
        TraceRecorder.save_jsonl)."""
        return self.to_record().to_dict()


def _finish(runtime: ClusterRuntime, job, scenario: str, workload: Workload,
            keep_trace: bool) -> ScenarioResult:
    failed = job.failed
    runtime.listener.finalize(runtime.env.now)
    attribute_costs(runtime.metrics, runtime.meter.total(),
                    runtime.meter.breakdown())
    result = ScenarioResult(
        scenario=scenario,
        workload=workload.name,
        duration_s=job.duration if job.duration is not None else float("nan"),
        cost=runtime.meter.total(),
        failed=failed,
        failure_reason=job.failure_reason,
        cost_breakdown=runtime.meter.breakdown(),
        job_result=None if failed else JobResult.from_job(job),
        trace=runtime.recorder if keep_trace else None,
    )
    result.telemetry = runtime.metrics.snapshot()
    if not failed:
        result.telemetry.update(dotted_stage_metrics(job))
    if runtime.recovery is not None:
        result.recovery = dict(runtime.recovery.metrics())
        result.recovery["faults_injected"] = len(runtime.injector.injected)
    return result


def _run_until_done(runtime: ClusterRuntime, job) -> None:
    try:
        runtime.env.run(until=job.done)
    except JobFailedError:
        pass  # recorded on the job itself


# ---------------------------------------------------------------------------
# Vanilla Spark scenarios
# ---------------------------------------------------------------------------

def _vanilla(workload: Workload, runtime: ClusterRuntime, cores: int,
             autoscale: bool, scenario: str, keep_trace: bool,
             conf: SparkConf) -> ScenarioResult:
    spec = workload.spec
    driver = SparkDriver(runtime.env, conf, runtime.rng,
                         LocalShuffleBackend(), trace=runtime.trace)
    vms = runtime.provision_worker_cores(cores, spec.worker_itype)
    add_executors_on_vms(driver, vms, cores)
    runtime.arm_faults(driver)

    new_vms: List = []
    if autoscale:
        scale_out_after(
            runtime, AUTOSCALE_DETECT_S, spec.shortfall_cores,
            boot_delay=lambda itype: runtime.rng.lognormal_around(
                "autoscale.boot", spec.vm_ready_delay_s, 0.1),
            on_ready=lambda vm, take: add_executors_on_vms(
                driver, [vm], take),
            vms_out=new_vms)

    job = driver.submit(workload.build(spec.required_cores))
    _run_until_done(runtime, job)
    end = runtime.env.now
    for vm in vms:
        runtime.bill_shared_cores(vm, min(cores, vm.itype.vcpus), 0.0, end)
    for vm in new_vms:
        runtime.bill_dedicated_vm(vm, end)
    return _finish(runtime, job, scenario, workload, keep_trace)


# ---------------------------------------------------------------------------
# Qubole Spark-on-Lambda
# ---------------------------------------------------------------------------

def _qubole(workload: Workload, runtime: ClusterRuntime, scenario: str,
            keep_trace: bool, conf: SparkConf) -> ScenarioResult:
    spec = workload.spec
    if not spec.qubole_supported:
        # §5.2, footnote 11: "their prototype encounters fatal errors
        # while running this query".
        return ScenarioResult(
            scenario=scenario, workload=workload.name,
            duration_s=float("nan"), cost=0.0, failed=True,
            failure_reason="Qubole prototype fatal error (paper, fn. 11)")
    s3 = S3(runtime.env, runtime.rng, runtime.meter,
            put_rate_limit=QUBOLE_S3_EFFECTIVE_RATE,
            get_rate_limit=QUBOLE_S3_EFFECTIVE_RATE,
            stream_bytes_per_s=QUBOLE_S3_STREAM_BYTES_PER_S)
    backend = QuboleS3ShuffleBackend(
        s3, consistency_mean_s=QUBOLE_CONSISTENCY_MEAN_S)
    driver = SparkDriver(runtime.env, conf, runtime.rng, backend,
                         trace=runtime.trace)

    def read_from_s3(executor, nbytes):
        yield s3.batch_read(1, nbytes, via_links=executor.net_links())

    driver.task_scheduler.input_reader = read_from_s3
    runtime.arm_faults(driver, storages=[s3])

    lambdas: List = []
    job_holder: List = []
    for fn in [runtime.provider.invoke_lambda()
               for _ in range(spec.required_cores)]:
        lambdas.append(fn)
        runtime.env.process(attach_lambda_with_respawn(
            runtime, driver, fn, lambdas, job_holder))

    job = driver.submit(workload.build(spec.required_cores))
    job_holder.append(job)
    _run_until_done(runtime, job)
    for fn in lambdas:
        runtime.provider.release_lambda(fn)
        runtime.provider.bill_lambda_usage(fn)
    return _finish(runtime, job, scenario, workload, keep_trace)


# ---------------------------------------------------------------------------
# SplitServe scenarios
# ---------------------------------------------------------------------------

def _splitserve(workload: Workload, runtime: ClusterRuntime, vm_cores: int,
                segue: bool, scenario: str, keep_trace: bool,
                conf: SparkConf,
                segue_at_s: Optional[float],
                total_cores: Optional[int] = None,
                segue_cores: Optional[int] = None) -> ScenarioResult:
    spec = workload.spec
    # The §5.1 scenarios always assemble R slots and (on segue) procure
    # the Δ = R − r shortfall; planned runs pass both explicitly.
    total = total_cores if total_cores is not None else spec.required_cores
    procure = (segue_cores if segue_cores is not None
               else spec.shortfall_cores)
    master = runtime.provider.request_vm(spec.master_itype, name="master",
                                         already_running=True)
    # The master VM hosts the driver + HDFS; its cores are not executor
    # capacity. Claim them so the launching facility never places
    # executors there.
    master.allocate_cores(master.itype.vcpus)
    ss = SplitServe(runtime.env, runtime.provider, runtime.rng, conf=conf,
                    trace=runtime.trace, master_vm=master)

    def read_from_hdfs(executor, nbytes):
        yield ss.shuffle_storage.batch_read(1, nbytes,
                                            via_links=executor.net_links())

    ss.driver.task_scheduler.input_reader = read_from_hdfs
    runtime.arm_faults(ss.driver, storages=[ss.shuffle_storage])
    worker_vms = []
    if vm_cores > 0:
        worker_vms = runtime.provision_worker_cores(vm_cores,
                                                    spec.worker_itype)

    run = ss.submit_job(workload.build(spec.required_cores),
                        required_cores=total,
                        max_vm_cores=vm_cores,
                        expected_duration_s=spec.slo_seconds,
                        segue=False)

    segue_vms: List = []
    if segue and procure > 0:
        delay = segue_at_s
        if delay is None:
            delay = spec.segue_available_s
        if delay is None:
            delay = spec.vm_ready_delay_s
        scale_out_after(
            runtime, None, procure,
            boot_delay=lambda itype, delay=delay: delay,
            on_ready=lambda vm, take: ss.segueing.segue_to_vm(vm, take),
            vms_out=segue_vms)

    _run_until_done(runtime, run.job)
    ss.finish_run(run)
    end = runtime.env.now
    cores_left = vm_cores
    for vm in worker_vms:
        used = min(cores_left, vm.itype.vcpus)
        runtime.bill_shared_cores(vm, used, 0.0, end)
        cores_left -= used
    for vm in segue_vms:
        runtime.bill_dedicated_vm(vm, end)
    # Fallback VM executors (Lambda slots degraded onto free cluster
    # cores) ride pre-provisioned instances: bill their per-core share.
    for executor in run.launch.fallback_vm_executors:
        runtime.bill_shared_cores(executor.vm, 1, 0.0, end)
    result = _finish(runtime, run.job, scenario, workload, keep_trace)
    result.lambda_cores_used = run.launch.lambda_cores
    if runtime.recovery is not None:
        result.recovery["lambda_fallback_cores"] = run.launch.fallback_cores
        result.recovery["failed_lambda_invocations"] = (
            run.launch.failed_invocations)
        result.recovery["unfilled_cores"] = run.launch.unfilled_cores
    return result


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _run_scenario_impl(workload: Workload, scenario: str, seed: int,
                       keep_trace: bool, conf: Optional[SparkConf],
                       segue_at_s: Optional[float],
                       faults: FaultsInput = ()) -> ScenarioResult:
    if scenario not in SCENARIO_NAMES:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"known: {SCENARIO_NAMES}")
    runtime = ClusterRuntime(seed, trace_enabled=keep_trace, faults=faults)
    conf = conf if conf is not None else SparkConf()
    spec = workload.spec
    if scenario == "spark_r_vm":
        result = _vanilla(workload, runtime, spec.available_cores, False,
                          scenario, keep_trace, conf)
    elif scenario == "spark_R_vm":
        result = _vanilla(workload, runtime, spec.required_cores, False,
                          scenario, keep_trace, conf)
    elif scenario == "spark_autoscale":
        result = _vanilla(workload, runtime, spec.available_cores, True,
                          scenario, keep_trace, conf)
    elif scenario == "qubole_R_la":
        result = _qubole(workload, runtime, scenario, keep_trace, conf)
    elif scenario == "ss_R_vm":
        result = _splitserve(workload, runtime, spec.required_cores, False,
                             scenario, keep_trace, conf, segue_at_s)
    elif scenario == "ss_R_la":
        result = _splitserve(workload, runtime, 0, False, scenario,
                             keep_trace, conf, segue_at_s)
    elif scenario == "ss_hybrid":
        result = _splitserve(workload, runtime, spec.available_cores, False,
                             scenario, keep_trace, conf, segue_at_s)
    elif scenario == "ss_hybrid_segue":
        result = _splitserve(workload, runtime, spec.available_cores, True,
                             scenario, keep_trace, conf, segue_at_s)
    else:
        raise AssertionError("unreachable")
    result.seed = seed
    return result


def run_scenario(spec: "ExperimentSpec",
                 keep_trace: bool = False) -> ScenarioResult:
    """Execute one scenario run and return its result.

    Takes a single :class:`~repro.experiments.spec.ExperimentSpec`::

        run_scenario(ExperimentSpec("kmeans", "ss_R_la", seed=3))

    ``keep_trace`` retains the run's :class:`TraceRecorder` on the
    result (a runtime concern, so not part of the spec).

    The old ``run_scenario(workload_obj, scenario_name, ...)`` keyword
    form has been removed; build a spec (workloads by registry name,
    parameters via ``workload_params``) or call
    :func:`run_all_scenarios` for ad-hoc workload instances.
    """
    from repro.experiments.spec import ExperimentSpec
    if not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "run_scenario takes an ExperimentSpec, e.g. "
            "run_scenario(ExperimentSpec('kmeans', 'ss_R_la', seed=3)); "
            f"got {type(spec).__name__}")
    result = _run_scenario_impl(spec.make_workload(), spec.scenario,
                                spec.seed, keep_trace=keep_trace,
                                conf=spec.conf(),
                                segue_at_s=spec.segue_at_s,
                                faults=spec.faults)
    result.experiment = spec
    return result


def run_split(workload: Workload, runtime: ClusterRuntime, *,
              vm_cores: int, lambda_cores: int,
              segue_cores: int = 0, segue_at_s: Optional[float] = None,
              conf: Optional[SparkConf] = None, keep_trace: bool = False,
              scenario: str = "ss_planned") -> ScenarioResult:
    """Execute one SplitServe run under an explicit split decision.

    ``vm_cores`` pre-provisioned VM slots plus ``lambda_cores`` Lambda
    slots are assembled at submission; ``segue_cores`` VM cores are
    procured in the background and, once ready at ``segue_at_s``, take
    over from (up to as many) Lambda executors via segueing — with no
    Lambdas to drain this degrades to plain scale-out. Billing matches
    the §5.1 scenarios (shared per-core VM share, whole procured VMs,
    Lambda GB-seconds). Used by :mod:`repro.planner` to enforce a
    :class:`~repro.planner.model.SplitCandidate`; the eight fixed
    scenarios keep their byte-identical paths through ``run_scenario``.
    """
    if vm_cores + lambda_cores <= 0:
        raise ValueError("a split needs at least one VM or Lambda slot")
    conf = conf if conf is not None else SparkConf()
    return _splitserve(workload, runtime, vm_cores, segue_cores > 0,
                       scenario, keep_trace, conf, segue_at_s,
                       total_cores=vm_cores + lambda_cores,
                       segue_cores=segue_cores)


def run_all_scenarios(workload: Workload, seed: int = 0,
                      scenarios: Optional[List[str]] = None,
                      **kwargs) -> Dict[str, ScenarioResult]:
    """Run every (or the given) scenario for one workload instance."""
    names = scenarios if scenarios is not None else SCENARIO_NAMES
    return {name: _run_scenario_impl(workload, name, seed,
                                     kwargs.get("keep_trace", False),
                                     kwargs.get("conf"),
                                     kwargs.get("segue_at_s"),
                                     faults=kwargs.get("faults", ()))
            for name in names}
