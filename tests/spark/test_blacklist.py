"""Tests for executor blacklisting."""

import pytest

from repro.spark import SparkConf

from tests.spark.helpers import MiniCluster, single_stage_rdd


def blacklist_conf(threshold=2):
    return SparkConf({"spark.blacklist.enabled": True,
                      "spark.blacklist.maxFailedTasksPerExecutor": threshold,
                      "spark.task.maxFailures": 10})


def test_flaky_executor_gets_blacklisted():
    cluster = MiniCluster(conf=blacklist_conf())
    flaky = cluster.vm_executors(1)[0]
    healthy = cluster.vm_executors(1)[0]
    rdd = single_stage_rdd(cluster.builder, tasks=6, seconds=10.0)
    job = cluster.driver.submit(rdd)

    def sabotage(env):
        # Kill whatever the flaky executor runs, twice.
        for _ in range(2):
            yield env.timeout(3.0)
            if flaky.current is not None:
                flaky.kill_task(flaky.current, "flaky hardware")

    cluster.env.process(sabotage(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    scheduler = cluster.driver.task_scheduler
    assert flaky.executor_id in scheduler.blacklisted
    assert healthy.executor_id not in scheduler.blacklisted
    # After blacklisting, the flaky executor got no further launches:
    # every finished task ran on the healthy one except any the flaky
    # one completed before its second strike.
    assert healthy.tasks_finished >= 5


def test_blacklisting_disabled_by_default():
    cluster = MiniCluster()
    flaky = cluster.vm_executors(1)[0]
    cluster.vm_executors(1)
    rdd = single_stage_rdd(cluster.builder, tasks=4, seconds=5.0)
    job = cluster.driver.submit(rdd)

    def sabotage(env):
        for _ in range(3):
            yield env.timeout(2.0)
            if flaky.current is not None:
                flaky.kill_task(flaky.current, "flaky hardware")

    cluster.env.process(sabotage(cluster.env))
    cluster.env.run(until=job.done)
    assert cluster.driver.task_scheduler.blacklisted == set()


def test_speculation_losses_do_not_blacklist():
    conf = SparkConf({"spark.blacklist.enabled": True,
                      "spark.blacklist.maxFailedTasksPerExecutor": 1,
                      "spark.speculation": True,
                      "spark.speculation.quantile": 0.5,
                      "spark.speculation.multiplier": 1.3,
                      "spark.speculation.interval": 0.5,
                      "spark.sim.task.jitter": 0.0})
    cluster = MiniCluster(conf=conf, no_jitter=False)
    cluster.vm_executors(4)
    rdd = cluster.builder.source(
        "skewed", partitions=8,
        compute_seconds=lambda p: 40.0 if p == 0 else 5.0)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=job.done)
    assert not job.failed
    # Losing a speculation race is not a fault: nothing is blacklisted.
    assert cluster.driver.task_scheduler.blacklisted == set()
