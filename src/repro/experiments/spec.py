"""The declarative experiment specification.

An :class:`ExperimentSpec` is a frozen, hashable value object that fully
determines one simulation run: which workload (by registry name, plus
constructor parameters), which scenario, which seed, and any Spark
configuration overrides. Two equal specs always produce bit-identical
:class:`~repro.experiments.records.RunRecord` numbers, which is what
makes parallel fan-out and on-disk caching safe.

Scenario names accepted:

- the eight §5.1 scenarios (:data:`repro.core.scenarios.SCENARIO_NAMES`);
- ``profile_lambda`` / ``profile_vm`` — one Figure 4 profiling point at
  ``parallelism`` executors;
- ``stream`` — the §4.1 day-of-jobs simulation (parameters in ``extra``);
- ``ss_planned`` — one SplitServe run whose FaaS/IaaS split is dictated
  by the ``policy`` field (written by :mod:`repro.planner`);
- ``custom:<module>:<function>`` — a dotted reference to a module-level
  function taking the spec and returning a record (or a dict of record
  fields); used by ablation benches whose setup is not a §5.1 scenario.

All parameter values must be JSON-representable scalars (str, int,
float, bool, None) so that the spec's canonical hash is stable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.simulation.faults import FaultSpec

#: Scenario names handled by :mod:`repro.analysis.profiling`.
PROFILE_SCENARIOS = ("profile_lambda", "profile_vm")
#: Scenario name handled by :class:`repro.core.stream.JobStreamSimulator`.
STREAM_SCENARIO = "stream"
#: Scenario name handled by :mod:`repro.cluster.multijob` (job-arrival
#: replay against a shared executor pool; parameters in ``extra``).
MULTIJOB_SCENARIO = "multijob"
#: Scenario name handled by :mod:`repro.planner.planned` (one SplitServe
#: run under an explicit split decision carried in ``policy``).
PLANNED_SCENARIO = "ss_planned"
#: Prefix for ``custom:<module>:<function>`` scenario references.
CUSTOM_PREFIX = "custom:"

Params = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...], None]


def _freeze(params: Params) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a mapping (or pair tuple) into a sorted, hashable tuple."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else tuple(params)
    return tuple(sorted((str(key), value) for key, value in items))


def _freeze_faults(faults: Optional[Iterable]) -> Tuple[FaultSpec, ...]:
    """Normalize fault inputs (FaultSpec or plain dicts) into a tuple of
    frozen FaultSpec values, keeping the spec hashable."""
    if not faults:
        return ()
    frozen = []
    for fault in faults:
        if isinstance(fault, FaultSpec):
            frozen.append(fault)
        elif isinstance(fault, Mapping):
            frozen.append(FaultSpec.from_dict(fault))
        else:
            raise TypeError(
                f"faults entries must be FaultSpec or mapping, "
                f"got {type(fault).__name__}")
    return tuple(frozen)


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to (re)execute one simulation run.

    ``workload_params``, ``conf_overrides`` and ``extra`` accept plain
    dicts at construction time and are canonicalized into sorted tuples,
    so specs stay hashable and order-insensitive.
    """

    workload: str
    scenario: str
    seed: int = 0
    #: Executor count for ``profile_*`` specs; None elsewhere.
    parallelism: Optional[int] = None
    #: Constructor kwargs for registry workloads (e.g. ``synthetic``).
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    #: :class:`~repro.spark.config.SparkConf` overrides for the run.
    conf_overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Override for the segue-availability delay (scenario runs only).
    segue_at_s: Optional[float] = None
    #: Scenario-specific parameters (``stream`` and ``custom:`` runs).
    extra: Tuple[Tuple[str, Any], ...] = ()
    #: Declarative fault plan injected during the run (scenario runs
    #: only); accepts FaultSpec values or plain dicts at construction.
    faults: Tuple[FaultSpec, ...] = ()
    #: Split-policy configuration. For ``ss_planned`` runs this is the
    #: enforced :class:`~repro.planner.model.SplitCandidate` (written by
    #: the planner); for ``multijob``/``stream`` runs it names a
    #: registered policy (``{"name": ...}`` plus its parameters). Part
    #: of the canonical hash whenever non-empty, so the result cache can
    #: never serve a record produced under a different split policy.
    policy: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload_params",
                           _freeze(self.workload_params))
        object.__setattr__(self, "conf_overrides",
                           _freeze(self.conf_overrides))
        object.__setattr__(self, "extra", _freeze(self.extra))
        object.__setattr__(self, "faults", _freeze_faults(self.faults))
        object.__setattr__(self, "policy", _freeze(self.policy))
        self._validate_scenario()
        if self.parallelism is not None:
            if self.scenario not in PROFILE_SCENARIOS:
                raise ValueError(
                    f"parallelism only applies to {PROFILE_SCENARIOS}, "
                    f"not {self.scenario!r}")
            if self.parallelism <= 0:
                raise ValueError("parallelism must be positive")

    def _validate_scenario(self) -> None:
        name = self.scenario
        if (name in PROFILE_SCENARIOS or name == STREAM_SCENARIO
                or name == MULTIJOB_SCENARIO or name == PLANNED_SCENARIO):
            return
        if name.startswith(CUSTOM_PREFIX):
            parts = name[len(CUSTOM_PREFIX):].split(":")
            if len(parts) != 2 or not all(parts):
                raise ValueError(
                    f"custom scenario must look like "
                    f"'custom:<module>:<function>', got {name!r}")
            return
        # Imported lazily: repro.core.scenarios consumes this module.
        from repro.core.scenarios import SCENARIO_NAMES
        if name not in SCENARIO_NAMES:
            known = [*SCENARIO_NAMES, *PROFILE_SCENARIOS, STREAM_SCENARIO,
                     MULTIJOB_SCENARIO, PLANNED_SCENARIO,
                     CUSTOM_PREFIX + "<module>:<function>"]
            raise ValueError(f"unknown scenario {name!r}; known: {known}")

    # -- derived objects ---------------------------------------------------

    def make_workload(self):
        """Build the workload instance this spec names."""
        from repro.workloads.registry import make_workload
        return make_workload(self.workload, **dict(self.workload_params))

    def conf(self):
        """Build the :class:`~repro.spark.config.SparkConf` for the run."""
        from repro.spark.config import SparkConf
        return SparkConf(dict(self.conf_overrides))

    def with_(self, **changes: Any) -> "ExperimentSpec":
        """A copy of the spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "workload": self.workload,
            "scenario": self.scenario,
            "seed": self.seed,
            "parallelism": self.parallelism,
            "workload_params": dict(self.workload_params),
            "conf_overrides": dict(self.conf_overrides),
            "segue_at_s": self.segue_at_s,
            "extra": dict(self.extra),
            "faults": [fault.to_dict() for fault in self.faults],
        }
        # Only serialized when set: policy-less specs keep their
        # pre-planner canonical form (and hence their cache keys), while
        # any policy at all lands in the hash.
        if self.policy:
            data["policy"] = dict(self.policy)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(
            workload=data["workload"],
            scenario=data["scenario"],
            seed=int(data.get("seed", 0)),
            parallelism=data.get("parallelism"),
            workload_params=data.get("workload_params") or (),
            conf_overrides=data.get("conf_overrides") or (),
            segue_at_s=data.get("segue_at_s"),
            extra=data.get("extra") or (),
            faults=data.get("faults") or (),
            policy=data.get("policy") or (),
        )

    def spec_hash(self) -> str:
        """A stable content hash of the canonical spec serialization."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def short_hash(self) -> str:
        return self.spec_hash()[:12]
