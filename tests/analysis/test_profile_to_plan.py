"""Integration: §5.1's profiling-to-decision loop, end to end.

The paper: "With these profiles, decisions of the following type can be
made: in case of a 'large' PageRank job, if the execution time needs to
be less than 70s, then two executors would be the lowest-cost choice;
however, if the execution time needs to be less than 60s, then the only
choice is 4 executors." We measure a real profile with the harness, feed
it to the cost manager, and check the same *kind* of decision falls out.
"""

import pytest

from repro.analysis.profiling import optimal_parallelism, profile_workload
from repro.cloud import instance_type
from repro.core.cost_manager import CostManager
from repro.experiments.spec import ExperimentSpec

SWEEP = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def lambda_profile():
    points = profile_workload(
        ExperimentSpec("pagerank-large", "profile_lambda"),
        parallelism_sweep=SWEEP)
    return {p.parallelism: p.duration_s for p in points}


def test_profile_feeds_cost_manager(lambda_profile):
    manager = CostManager(lambda_profile)
    best = min(lambda_profile.values())
    # A tight SLO forces high parallelism; a loose one allows fewer,
    # cheaper executors — the monotone staircase the paper describes.
    tight = manager.parallelism_for_slo(best * 1.05)
    loose = manager.parallelism_for_slo(best * 3.0)
    assert tight is not None and loose is not None
    assert loose <= tight
    # An SLO below the best profiled point is infeasible.
    assert manager.parallelism_for_slo(best * 0.5) is None


def test_plan_from_measured_profile_is_actionable(lambda_profile):
    manager = CostManager(lambda_profile)
    best = min(lambda_profile.values())
    plan = manager.plan(slo_s=best * 1.5, free_vm_cores=2,
                        vm_itype=instance_type("m4.4xlarge"))
    assert plan is not None
    assert plan.vm_cores == 2
    assert plan.lambda_cores == plan.required_cores - 2
    assert plan.est_cost > 0


def test_each_slo_band_has_a_unique_cheapest_choice(lambda_profile):
    """Reproduce the paper's '<70s -> 2, <60s -> 4' structure: as the
    SLO tightens past each profiled duration, the prescribed parallelism
    ratchets up and never down."""
    manager = CostManager(lambda_profile)
    durations = sorted(lambda_profile.values(), reverse=True)
    prescriptions = [manager.parallelism_for_slo(d * 1.001)
                     for d in durations]
    filtered = [p for p in prescriptions if p is not None]
    assert filtered == sorted(filtered)
