"""Figure 6: PageRank (850k pages) across the §5.1 scenarios.

Paper's findings at R=16, r=3 with the single HDFS node colocated with
the master on an m4.xlarge (750 Mbps EBS):
- r=3 degrades performance ~2.1x; VM autoscaling is still ~2x;
- Qubole's S3 shuffle adds >60%; SplitServe's HDFS shuffle only ~27%;
- hybrid VM+Lambda improves on VM scaling by ~32%;
- with segue, still ~24% faster than VM scaling, with Lambda spend cut.
"""

from repro.analysis.reporting import format_bar_chart, format_table, relative_to
from repro.core.scenarios import SCENARIO_NAMES, run_all_scenarios
from repro.workloads import PageRankWorkload
from benchmarks.conftest import run_once


def run_fig6():
    return run_all_scenarios(PageRankWorkload())


def test_fig6_pagerank(benchmark, emit):
    results = run_once(benchmark, run_fig6)
    spec = PageRankWorkload().spec
    base = results["spark_R_vm"].duration_s
    entries = [(results[name].label(spec), results[name].duration_s,
                relative_to(base, results[name].duration_s))
               for name in SCENARIO_NAMES]
    chart = format_bar_chart(entries)
    cost_rows = [[results[name].label(spec), f"${results[name].cost:.4f}",
                  f"${results[name].cost_breakdown.get('lambda', 0):.4f}"]
                 for name in SCENARIO_NAMES if not results[name].failed]
    costs = format_table(["scenario", "total cost", "lambda share"],
                         cost_rows, title="marginal cost per scenario")
    emit("Figure 6 — PageRank across scenarios", chart + "\n\n" + costs)

    assert 1.8 < results["spark_r_vm"].duration_s / base < 2.7
    assert 1.6 < results["spark_autoscale"].duration_s / base < 2.4
    assert results["qubole_R_la"].duration_s / base > 1.45
    assert 1.05 < results["ss_R_la"].duration_s / base < 1.45
    hybrid_gain = 1 - (results["ss_hybrid"].duration_s
                       / results["spark_autoscale"].duration_s)
    segue_gain = 1 - (results["ss_hybrid_segue"].duration_s
                      / results["spark_autoscale"].duration_s)
    assert hybrid_gain > 0.2
    assert segue_gain > 0.1
    # Segueing trims the Lambda bill relative to the no-segue hybrid.
    assert (results["ss_hybrid_segue"].cost_breakdown.get("lambda", 1)
            < results["ss_hybrid"].cost_breakdown.get("lambda", 0))
    print(f"\nhybrid improvement vs autoscale: {hybrid_gain:.1%} (paper: 32%)")
    print(f"segue improvement vs autoscale: {segue_gain:.1%} (paper: 24%)")
