"""Golden regression gate for the ClusterRuntime scenario rebuild.

``golden_scenarios.json`` pins the canonical :class:`RunRecord` of every
§5.1 scenario for two workloads at fixed seeds, captured from the
pre-refactor scenario driver. The rebuilt thin-configuration scenarios
must reproduce each record **byte-identically** — same durations, costs,
task counts, everything except wall time. Any drift here means the
refactor changed simulation behaviour, not just structure.

To regenerate after an *intentional* model change::

    PYTHONPATH=src python -m tests.cluster.regen_goldens

(see this test's module docstring history / DESIGN.md before doing so).
"""

import json
import pathlib

import pytest

from repro.experiments.records import RunRecord
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_scenarios.json"


def _golden_records():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


GOLDENS = _golden_records()


def _ids():
    return [f"{g['spec']['workload']}-{g['spec']['scenario']}"
            f"-s{g['spec']['seed']}" for g in GOLDENS]


def test_golden_file_covers_all_scenarios():
    from repro.core.scenarios import SCENARIO_NAMES
    covered = {g["spec"]["scenario"] for g in GOLDENS}
    assert set(SCENARIO_NAMES) <= covered


@pytest.mark.parametrize("golden", GOLDENS, ids=_ids())
def test_scenario_matches_golden(golden):
    spec = ExperimentSpec(**golden["spec"])
    record = run_spec(spec)
    assert isinstance(record, RunRecord)
    # Compare via the JSON round-trip so float representation rules are
    # identical on both sides of the comparison.
    fresh = json.loads(json.dumps(record.canonical(), sort_keys=True))
    assert fresh == golden
