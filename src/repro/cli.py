"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — available workloads and scenarios;
- ``run`` — one (workload, scenario) execution, optionally with the
  Figure 7-style executor timeline;
- ``profile`` — a §5.1 offline-profiling sweep (the Figure 4 curves);
- ``stream`` — the §4.1 day-of-jobs simulation under a chosen policy.

The full table/figure reproduction lives in the benchmark harness
(``pytest benchmarks/ --benchmark-only``); the CLI is for interactive
exploration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.profiling import profile_workload
from repro.analysis.reporting import format_series, format_table, relative_to
from repro.analysis.timeline import build_timeline
from repro.core.autoscaler import ProvisioningPolicy
from repro.core.scenarios import SCENARIO_NAMES, run_scenario
from repro.core.stream import JobStreamSimulator
from repro.workloads import (
    KMeansWorkload,
    PageRankWorkload,
    SortWorkload,
    SparkPiWorkload,
    TPCDSWorkload,
)
from repro.workloads.base import Workload
from repro.workloads.tpcds import TPCDS_QUERIES
from repro.workloads.traces import DiurnalTrace

#: name -> zero-argument workload factory.
WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "pagerank": PageRankWorkload,
    "pagerank-small": PageRankWorkload.small,
    "pagerank-medium": PageRankWorkload.medium,
    "pagerank-large": PageRankWorkload.large,
    "kmeans": KMeansWorkload,
    "sparkpi": SparkPiWorkload,
    "sort": SortWorkload,
    **{f"tpcds-{q}": (lambda q=q: TPCDSWorkload(q)) for q in TPCDS_QUERIES},
}


def make_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]()
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {name!r}; known: {known}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    print("\nscenarios (paper §5.1):")
    for name in SCENARIO_NAMES:
        print(f"  {name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    scenarios = ([args.scenario] if args.scenario != "all"
                 else SCENARIO_NAMES)
    base: Optional[float] = None
    rows = []
    for name in scenarios:
        result = run_scenario(workload, name, seed=args.seed,
                              keep_trace=args.timeline)
        if name == "spark_R_vm":
            base = result.duration_s
        if result.failed:
            rows.append([result.label(workload.spec), "FAILED", "-", "-"])
            continue
        rows.append([result.label(workload.spec),
                     f"{result.duration_s:.1f}s",
                     relative_to(base, result.duration_s) if base else "",
                     f"${result.cost:.4f}"])
        if args.timeline and result.trace is not None:
            print(f"\n--- timeline: {result.label(workload.spec)} ---")
            print(build_timeline(result.trace).render())
    print()
    print(format_table(["scenario", "time", "vs baseline", "cost"], rows,
                       title=f"{workload.name} (seed {args.seed})"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    workload = make_workload(args.workload)
    sweep = [int(x) for x in args.parallelism.split(",")]
    points = profile_workload(workload, args.kind, parallelism_sweep=sweep,
                              seed=args.seed)
    print(format_series(
        "executors", [p.parallelism for p in points],
        {"time (s)": [p.duration_s for p in points],
         "cost ($)": [p.cost for p in points]},
        title=f"{workload.name}, all-{args.kind} profiling",
        value_format="{:.3f}"))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    demand = DiurnalTrace(base_cores=args.base_cores,
                          peak_cores=args.peak_cores,
                          sigma_fraction=0.2,
                          seed=args.seed).generate(hours=args.hours + 1)
    sim = JobStreamSimulator(demand, ProvisioningPolicy(k=args.k),
                             bridge=args.bridge, seed=args.seed)
    report = sim.run(args.hours * 3600.0)
    print(format_table(
        ["metric", "value"],
        [["policy", report.policy_label],
         ["bridge", report.bridge],
         ["jobs", len(report.jobs)],
         ["SLO attainment", f"{report.slo_attainment:.1%}"],
         ["mean duration", f"{report.mean_duration:.1f}s"],
         ["Lambda-bridged jobs", report.lambda_bridged_jobs],
         ["VM cost", f"${report.vm_cost:.2f}"],
         ["Lambda cost", f"${report.lambda_cost:.3f}"],
         ["total cost", f"${report.total_cost:.2f}"]],
        title=f"{args.hours:g}h job stream"))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SplitServe reproduction (Middleware '20)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and scenarios")

    run_p = sub.add_parser("run", help="run one scenario")
    run_p.add_argument("--workload", default="pagerank")
    run_p.add_argument("--scenario", default="all",
                       choices=["all", *SCENARIO_NAMES])
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--timeline", action="store_true",
                       help="print the Figure 7-style executor timeline")

    prof_p = sub.add_parser("profile", help="Figure 4-style sweep")
    prof_p.add_argument("--workload", default="pagerank-large")
    prof_p.add_argument("--kind", choices=["lambda", "vm"],
                        default="lambda")
    prof_p.add_argument("--parallelism", default="1,2,4,8,16,32,64,128",
                        help="comma-separated executor counts")
    prof_p.add_argument("--seed", type=int, default=0)

    stream_p = sub.add_parser("stream", help="day-of-jobs simulation")
    stream_p.add_argument("--hours", type=float, default=1.0)
    stream_p.add_argument("--k", type=float, default=0.0,
                          help="provision at m(t)+k*sigma(t)")
    stream_p.add_argument("--bridge", choices=["lambda", "none"],
                          default="lambda")
    stream_p.add_argument("--base-cores", type=float, default=20.0)
    stream_p.add_argument("--peak-cores", type=float, default=80.0)
    stream_p.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "profile": cmd_profile,
                "stream": cmd_stream}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
