"""Tests for burstable instances (the BurScale substrate)."""

import pytest

from repro.cloud.burstable import (
    BURSTABLE_CATALOGUE,
    BurstableSpec,
    BurstableVM,
)
from repro.simulation import Environment, RandomStreams

from tests.spark.helpers import MiniCluster, single_stage_rdd


def launch(env=None, type_name="t2.large", credits=None):
    env = env if env is not None else Environment()
    vm = BurstableVM.launch(env, "burst-0", type_name, RandomStreams(0),
                            already_running=True,
                            initial_credits=credits)
    return env, vm


def test_catalogue_and_unknown_type():
    assert set(BURSTABLE_CATALOGUE) == {"t2.medium", "t2.large", "t2.xlarge"}
    env = Environment()
    with pytest.raises(KeyError, match="unknown burstable type"):
        BurstableVM.launch(env, "x", "t2.mega", RandomStreams(0))


def test_spec_validation():
    with pytest.raises(ValueError):
        BurstableSpec(baseline_fraction=0.0, launch_credits=1,
                      earn_credits_per_hour=1, max_credits=1)


def test_full_speed_while_credits_last():
    env, vm = launch(credits=10)  # 600 full-speed CPU-seconds
    assert vm.consume_cpu(100.0) == pytest.approx(100.0)
    assert vm.credit_seconds == pytest.approx(500.0)


def test_throttles_to_baseline_when_exhausted():
    env, vm = launch(credits=1)  # 60 CPU-seconds of burst
    wall = vm.consume_cpu(120.0)
    # 60s at full speed + 60s of demand at 30% baseline = 60 + 200.
    assert wall == pytest.approx(60.0 + 60.0 / 0.30)
    assert vm.is_throttled


def test_credits_accrue_over_time():
    env, vm = launch(credits=0)
    env.timeout(3600)  # schedule something so run() has work
    env.run(until=3600)
    # t2.large earns 36 credits/hour.
    assert vm.credits == pytest.approx(36.0, rel=0.01)


def test_accrual_capped():
    env, vm = launch(credits=0)
    env.timeout(3600 * 1000)
    env.run(until=3600 * 1000)
    assert vm.credits == pytest.approx(864.0)  # t2.large cap


def test_negative_demand_rejected():
    env, vm = launch()
    with pytest.raises(ValueError):
        vm.consume_cpu(-1.0)


def test_executor_on_burstable_host_slows_after_credits():
    """A SplitServe-sized job on standby burstables: fast while credits
    last, collapsing to baseline after — BurScale's fundamental limit."""
    def run(credits):
        cluster = MiniCluster()
        vm = BurstableVM.launch(cluster.env, "burst", "t2.large",
                                cluster.rng, already_running=True,
                                initial_credits=credits)
        cluster.provider.vms.append(vm)
        cluster.driver.add_vm_executor(vm)
        cluster.driver.add_vm_executor(vm)
        rdd = single_stage_rdd(cluster.builder, tasks=8, seconds=30.0)
        return cluster.run_job(rdd).duration

    flush = run(credits=60)  # plenty: 3600 CPU-seconds
    broke = run(credits=1)  # nearly none
    assert flush == pytest.approx(120.0, rel=0.05)  # 4 waves x 30s
    # Out of credits the 30% baseline stretches the job heavily (the
    # deliberately favourable accrual model keeps it under the raw
    # 1/0.3 factor).
    assert broke > 1.5 * flush
