"""Tests for the inter-job autoscaler and diurnal traces (Figure 2)."""

import pytest

from repro.cloud import instance_type
from repro.core.autoscaler import (
    AutoscaleReport,
    DemandPoint,
    InterJobAutoscaler,
    ProvisioningPolicy,
)
from repro.workloads.traces import DiurnalTrace


def flat_trace(n=10, mean=10.0, sigma=1.0, actual=None):
    actual = actual if actual is not None else mean
    return [DemandPoint(time_s=i * 60.0, mean=mean, sigma=sigma,
                        actual=actual) for i in range(n)]


def test_policy_cores_at():
    policy = ProvisioningPolicy(k=2.0)
    point = DemandPoint(0.0, mean=10.0, sigma=2.0, actual=10.0)
    assert policy.cores_at(point) == 14


def test_policy_label():
    assert ProvisioningPolicy(k=0).label == "m(t)"
    assert "2" in ProvisioningPolicy(k=2.0).label
    assert ProvisioningPolicy(k=1, name="custom").label == "custom"


def test_replay_requires_two_samples():
    scaler = InterJobAutoscaler()
    with pytest.raises(ValueError):
        scaler.replay(flat_trace(1), ProvisioningPolicy(k=2))


def test_replay_no_shortfall_when_overprovisioned():
    scaler = InterJobAutoscaler()
    report = scaler.replay(flat_trace(actual=5.0), ProvisioningPolicy(k=2))
    assert report.shortfall_events == 0
    assert report.idle_core_hours > 0


def test_replay_shortfall_when_demand_spikes():
    trace = flat_trace(actual=20.0)  # demand double the prediction
    scaler = InterJobAutoscaler()
    report = scaler.replay(trace, ProvisioningPolicy(k=2))
    assert report.shortfall_events == len(trace)
    assert report.shortfall_core_hours > 0


def test_conservative_policy_provisions_more():
    trace = flat_trace()
    scaler = InterJobAutoscaler()
    lean = scaler.replay(trace, ProvisioningPolicy(k=0))
    conservative = scaler.replay(trace, ProvisioningPolicy(k=2))
    assert conservative.vm_core_hours > lean.vm_core_hours


def test_lean_policy_plus_lambdas_can_be_cheaper():
    """The paper's §4.1 argument: SplitServe lets the tenant provision at
    m(t) and bridge excursions with Lambdas, beating m(t)+2sigma."""
    trace = DiurnalTrace(seed=7).generate()
    scaler = InterJobAutoscaler()
    itype = instance_type("m4.4xlarge")
    lean = scaler.replay(trace, ProvisioningPolicy(k=0))
    conservative = scaler.replay(trace, ProvisioningPolicy(k=2))
    assert lean.total_cost(itype) < conservative.total_cost(itype)
    # But the lean policy relies on Lambda bridging actually happening.
    assert lean.shortfall_events > conservative.shortfall_events


def test_compare_policies_sorted_by_cost():
    trace = DiurnalTrace(seed=3).generate()
    scaler = InterJobAutoscaler()
    itype = instance_type("m4.4xlarge")
    reports = scaler.compare_policies(
        trace, [ProvisioningPolicy(k=k) for k in (0, 1, 2, 3)], itype)
    costs = [r.total_cost(itype) for r in reports]
    assert costs == sorted(costs)


# ---------------------------------------------------------------------------
# DiurnalTrace
# ---------------------------------------------------------------------------

def test_trace_deterministic_for_seed():
    a = DiurnalTrace(seed=1).generate()
    b = DiurnalTrace(seed=1).generate()
    assert [p.actual for p in a] == [p.actual for p in b]


def test_trace_differs_across_seeds():
    a = DiurnalTrace(seed=1).generate()
    b = DiurnalTrace(seed=2).generate()
    assert [p.actual for p in a] != [p.actual for p in b]


def test_trace_peaks_during_business_hours():
    trace = DiurnalTrace()
    assert trace.mean_at(10.5) > trace.mean_at(3.0)
    assert trace.mean_at(15.5) > trace.mean_at(22.0)


def test_trace_has_figure2_excursions():
    """Figure 2 needs both a t1 (shortfall) and a t2 (idle) moment."""
    trace = DiurnalTrace(seed=42)
    points = trace.generate()
    assert trace.shortfall_sample_exists(points)
    assert trace.idle_sample_exists(points)


def test_trace_rejects_nonpositive_hours():
    with pytest.raises(ValueError):
        DiurnalTrace().generate(hours=0)


def test_trace_sample_spacing():
    points = DiurnalTrace(sample_minutes=5.0).generate(hours=1.0)
    assert len(points) == 12
    assert points[1].time_s - points[0].time_s == pytest.approx(300.0)
