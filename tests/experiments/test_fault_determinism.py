"""Determinism of faulted runs: same seed + same plan ⇒ same record.

The ISSUE-level acceptance criterion: a spec carrying a fault plan must
produce a bit-identical RunRecord whether it runs in-process, through 1
runner worker, or through N (the plan and all its random draws pipe
through the spec dict and the seeded RandomStreams).
"""

from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.simulation.faults import FaultSpec

TINY = dict(stages=2, core_seconds_per_stage=8.0,
            shuffle_bytes_per_boundary=1024.0 * 1024,
            required_cores=4, available_cores=2)

FAULTS = (
    dict(kind="executor_kill", at_s=2.0, target="any", count=1),
    dict(kind="storage_brownout", at_s=1.0, duration_s=3.0, factor=2.0,
         target="storage:hdfs"),
    dict(kind="lambda_invoke_failure", probability=0.3),
)


def faulted_specs():
    return [ExperimentSpec("synthetic", scenario, seed=seed,
                           workload_params=TINY, faults=FAULTS)
            for scenario in ("ss_R_vm", "ss_hybrid")
            for seed in range(2)]


def test_faulted_serial_and_parallel_records_identical():
    specs = faulted_specs()
    serial = ExperimentRunner(workers=1, cache=False).run(specs)
    parallel = ExperimentRunner(workers=4, cache=False).run(specs)
    assert all(not r.failed for r in serial)
    assert [r.canonical() for r in serial] == \
        [r.canonical() for r in parallel]
    # The faults actually fired (this is not a vacuous determinism test).
    assert all(r.metrics["faults_injected"] >= 1 for r in serial)


def test_spec_with_faults_round_trips_and_hashes():
    spec = faulted_specs()[0]
    again = ExperimentSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.spec_hash() == spec.spec_hash()
    assert all(isinstance(f, FaultSpec) for f in again.faults)
    # A plan changes the identity of the experiment (cache-safe).
    clean = spec.with_(faults=())
    assert clean.spec_hash() != spec.spec_hash()


def test_same_plan_same_seed_is_bit_identical_rerun():
    spec = faulted_specs()[0]
    first = ExperimentRunner(workers=1, cache=False).run([spec])[0]
    second = ExperimentRunner(workers=1, cache=False).run([spec])[0]
    assert first.canonical() == second.canonical()
