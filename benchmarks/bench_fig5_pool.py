"""Extension of Figure 5: the full 10-query TPC-DS pool.

§5.2: "The TPC-DS workload suite consists of 100 queries, out of which
we picked 10 with a range of compute and memory requirements and are I/O
intensive ... Out of those, we present the results of 4 queries."

The paper presents four; this bench runs the whole pool through the
three scenarios the headline claim compares, confirming the ~55 %
hybrid-vs-autoscale improvement is a property of the query *class*, not
of the four presented picks.
"""

import statistics

from repro.analysis.reporting import format_table
from repro.core.scenarios import run_scenario
from repro.experiments.spec import ExperimentSpec
from repro.workloads.tpcds import TPCDS_QUERIES
from benchmarks.conftest import run_once


def run_pool():
    out = {}
    for query in sorted(TPCDS_QUERIES):
        out[query] = {
            "base": run_scenario(ExperimentSpec(f"tpcds-{query}",
                                                "spark_R_vm")),
            "autoscale": run_scenario(ExperimentSpec(f"tpcds-{query}",
                                                     "spark_autoscale")),
            "hybrid": run_scenario(ExperimentSpec(f"tpcds-{query}",
                                                  "ss_hybrid")),
        }
    return out


def test_fig5_pool(benchmark, emit):
    results = run_once(benchmark, run_pool)
    rows = []
    improvements = []
    for query, r in results.items():
        improvement = 1 - r["hybrid"].duration_s / r["autoscale"].duration_s
        improvements.append(improvement)
        rows.append([query,
                     f"{r['base'].duration_s:.1f}",
                     f"{r['autoscale'].duration_s:.1f}",
                     f"{r['hybrid'].duration_s:.1f}",
                     f"{improvement:.1%}"])
    mean_improvement = statistics.mean(improvements)
    body = format_table(
        ["query", "Spark 32 VM (s)", "autoscale (s)", "SS hybrid (s)",
         "improvement"], rows)
    body += (f"\n\npool mean improvement: {mean_improvement:.1%} "
             f"(paper's presented-four average: 55.2%)")
    emit("Figure 5 extension — the full 10-query pool", body)

    assert len(results) == 10
    for query, r in results.items():
        # Every pool member is latency-critical-sized and benefits.
        assert r["base"].duration_s < 90.0
        assert r["hybrid"].duration_s < r["autoscale"].duration_s
    assert 0.45 < mean_improvement < 0.65
    # The improvement is tight across the pool, not carried by outliers.
    assert statistics.pstdev(improvements) < 0.08
