"""RDD lineage: the dependency graph the DAG scheduler cuts into stages.

An :class:`RDD` here is a *descriptor* — it records partitioning, the
cost model of computing each partition, how much data it emits, and its
dependencies — not actual data. Narrow dependencies pipeline inside a
stage; :class:`ShuffleDependency` marks a stage boundary where the full
output is materialized through the shuffle layer (§3 "Spark creates
stages at state transfer boundaries").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

_rdd_ids = itertools.count()
_shuffle_ids = itertools.count()


def reset_id_counters() -> None:
    """Reset global id counters (used by tests for determinism)."""
    global _rdd_ids, _shuffle_ids
    _rdd_ids = itertools.count()
    _shuffle_ids = itertools.count()


class Dependency:
    """Base class of RDD dependencies."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """One-to-one (map/filter/...) dependency: pipelined within a stage."""


class ShuffleDependency(Dependency):
    """All-to-all dependency: cuts a stage boundary.

    ``total_bytes`` is the full shuffle volume: each of the parent's M map
    partitions writes ``total_bytes / M``; each of the child's R reduce
    partitions fetches ``total_bytes / R``.
    """

    def __init__(self, parent: "RDD", total_bytes: float) -> None:
        super().__init__(parent)
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
        self.total_bytes = float(total_bytes)
        self.shuffle_id = next(_shuffle_ids)

    @property
    def bytes_per_map(self) -> float:
        return self.total_bytes / self.parent.num_partitions


#: Per-partition compute cost: either a constant (seconds on one reference
#: vCPU) or a callable partition_index -> seconds.
ComputeModel = Union[float, Callable[[int], float]]


class RDD:
    """One node of the lineage graph.

    Parameters
    ----------
    name:
        Human-readable label (shows up in traces and timelines).
    num_partitions:
        Parallelism of this dataset.
    compute_seconds:
        CPU seconds to compute one partition *of this RDD alone* (its
        parents' costs are accounted on the parent RDDs) on a reference
        1-vCPU core.
    deps:
        Dependencies on parent RDDs.
    working_set_bytes:
        Peak per-partition memory while computing — drives the GC model.
    cache:
        Whether Spark would persist this RDD (``.cache()``); cached
        partitions make subsequent stages prefer the executor holding
        them and skip recomputation there.
    """

    def __init__(
        self,
        name: str,
        num_partitions: int,
        compute_seconds: ComputeModel = 0.0,
        deps: Sequence[Dependency] = (),
        working_set_bytes: float = 0.0,
        cache: bool = False,
        input_bytes: float = 0.0,
        kind_preference=None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        if working_set_bytes < 0:
            raise ValueError(
                f"working_set_bytes must be non-negative, got {working_set_bytes}")
        self.rdd_id = next(_rdd_ids)
        self.name = name
        self.num_partitions = num_partitions
        self._compute = compute_seconds
        self.deps: List[Dependency] = list(deps)
        self.working_set_bytes = float(working_set_bytes)
        self.cached = cache
        if input_bytes < 0:
            raise ValueError(f"input_bytes must be non-negative, got {input_bytes}")
        #: Bytes this RDD reads from the cluster's input store, total
        #: across partitions (source RDDs scanning HDFS/S3 input).
        self.input_bytes = float(input_bytes)
        #: Optional heterogeneity-aware sizing hook (the paper's §7
        #: future work): partition -> "vm" | "lambda" | None. Partitions
        #: sized for a kind are preferentially scheduled on it.
        self.kind_preference = kind_preference

    # ------------------------------------------------------------------

    def compute_seconds(self, partition: int) -> float:
        """Reference-core CPU seconds for ``partition``."""
        if callable(self._compute):
            value = self._compute(partition)
        else:
            value = self._compute
        if value < 0:
            raise ValueError(
                f"{self.name}: negative compute time {value} for partition {partition}")
        return float(value)

    @property
    def shuffle_deps(self) -> List[ShuffleDependency]:
        return [d for d in self.deps if isinstance(d, ShuffleDependency)]

    @property
    def narrow_deps(self) -> List[NarrowDependency]:
        return [d for d in self.deps if isinstance(d, NarrowDependency)]

    def narrow_ancestry(self) -> List["RDD"]:
        """This RDD plus everything reachable through narrow deps only,
        in upstream-to-downstream (topological) order — the pipeline a
        single stage executes.

        Lineage is immutable after construction, so the walk is memoized
        (the DAG scheduler re-asks once per task otherwise). Callers get
        a fresh list; the cached tuple is never exposed for mutation.
        """
        cached = getattr(self, "_narrow_ancestry", None)
        if cached is None:
            seen = []
            seen_ids = set()

            def visit(rdd: "RDD") -> None:
                if rdd.rdd_id in seen_ids:
                    return
                for dep in rdd.deps:
                    if isinstance(dep, NarrowDependency):
                        visit(dep.parent)
                seen_ids.add(rdd.rdd_id)
                seen.append(rdd)

            visit(self)
            cached = self._narrow_ancestry = tuple(seen)
        return list(cached)

    def __repr__(self) -> str:
        return f"<RDD {self.rdd_id} {self.name} p={self.num_partitions}>"


class RDDBuilder:
    """Fluent helper workloads use to assemble lineage graphs.

    Example (two-stage map/reduce)::

        b = RDDBuilder()
        source = b.source("input", partitions=16, compute_seconds=2.0)
        mapped = b.map(source, "mapped", compute_seconds=1.0)
        reduced = b.shuffle(mapped, "reduced", partitions=16,
                            shuffle_bytes=1e9, compute_seconds=0.5)
    """

    def source(self, name: str, partitions: int, compute_seconds: ComputeModel,
               working_set_bytes: float = 0.0, cache: bool = False,
               input_bytes: float = 0.0) -> RDD:
        """A root RDD (reads ``input_bytes`` from the data source)."""
        return RDD(name, partitions, compute_seconds,
                   working_set_bytes=working_set_bytes, cache=cache,
                   input_bytes=input_bytes)

    def map(self, parent: RDD, name: str, compute_seconds: ComputeModel = 0.0,
            working_set_bytes: float = 0.0, cache: bool = False) -> RDD:
        """A narrow (pipelined) transformation of ``parent``."""
        return RDD(name, parent.num_partitions, compute_seconds,
                   deps=[NarrowDependency(parent)],
                   working_set_bytes=working_set_bytes, cache=cache)

    def shuffle(self, parent: RDD, name: str, partitions: int,
                shuffle_bytes: float, compute_seconds: ComputeModel = 0.0,
                working_set_bytes: float = 0.0, cache: bool = False) -> RDD:
        """A wide transformation: a stage boundary moving ``shuffle_bytes``."""
        return RDD(name, partitions, compute_seconds,
                   deps=[ShuffleDependency(parent, shuffle_bytes)],
                   working_set_bytes=working_set_bytes, cache=cache)

    def join(self, left: RDD, right: RDD, name: str, partitions: int,
             left_bytes: float, right_bytes: float,
             compute_seconds: ComputeModel = 0.0,
             working_set_bytes: float = 0.0) -> RDD:
        """A two-parent wide transformation (shuffled join)."""
        return RDD(name, partitions, compute_seconds,
                   deps=[ShuffleDependency(left, left_bytes),
                         ShuffleDependency(right, right_bytes)],
                   working_set_bytes=working_set_bytes)
