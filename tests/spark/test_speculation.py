"""Tests for speculative execution (straggler mitigation)."""

import pytest

from repro.spark import SparkConf, TaskState

from tests.spark.helpers import MiniCluster


def straggler_rdd(builder, tasks=8, normal=5.0, straggler=60.0):
    """One partition is pathologically slow (a straggling host, not an
    inherently bigger task — exactly what speculation is for)."""
    return builder.source(
        "straggle", partitions=tasks,
        compute_seconds=lambda p: straggler if p == 0 else normal)


def spec_conf(**overrides):
    base = {"spark.speculation": True,
            "spark.speculation.quantile": 0.5,
            "spark.speculation.multiplier": 1.5,
            "spark.speculation.interval": 0.5}
    base.update(overrides)
    return SparkConf(base)


def test_speculation_disabled_by_default():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    job = cluster.driver.submit(straggler_rdd(cluster.builder))
    cluster.env.run(until=job.done)
    assert not cluster.trace.select(category="scheduler",
                                    name="speculative_launch")


def test_speculation_launches_copy_for_straggler():
    cluster = MiniCluster(conf=spec_conf())
    cluster.vm_executors(4)
    job = cluster.driver.submit(straggler_rdd(cluster.builder))
    cluster.env.run(until=job.done)
    assert not job.failed
    launches = cluster.trace.select(category="scheduler",
                                    name="speculative_launch")
    assert launches
    assert launches[0].get("task").endswith("p0")


def test_speculation_does_not_help_identical_copies():
    """Copies of an *inherently* big task take just as long: the job
    completes correctly, with exactly one winner per partition."""
    cluster = MiniCluster(conf=spec_conf())
    cluster.vm_executors(4)
    job = cluster.driver.submit(straggler_rdd(cluster.builder))
    cluster.env.run(until=job.done)
    finished = [a for a in job.task_attempts
                if a.state is TaskState.FINISHED]
    partitions = [a.spec.partition for a in finished]
    assert sorted(partitions) == list(range(8))  # one winner each


def test_speculation_cancels_losing_copy():
    cluster = MiniCluster(conf=spec_conf())
    executors = cluster.vm_executors(4)
    job = cluster.driver.submit(straggler_rdd(cluster.builder))
    cluster.env.run(until=job.done)
    # The losing copy was killed, not counted as a task failure, and the
    # job shows exactly one cancelled attempt (the loser).
    assert not job.failed
    cancelled = [a for a in job.failed_attempts
                 if a.state is TaskState.KILLED]
    assert len(cancelled) <= 1  # the loser (or zero if copy never started)
    # No retries were scheduled for the cancelled copy: every partition
    # finished exactly once.
    assert len({a.spec.partition for a in job.task_attempts}) == 8


def test_speculation_beats_no_speculation_on_slow_executor():
    """When the straggle comes from a slow *executor* (a tiny Lambda),
    a speculative copy on a fast core genuinely wins."""
    def run(speculation):
        conf = spec_conf() if speculation else SparkConf()
        cluster = MiniCluster(conf=conf)
        cluster.lambda_executors(1, memory_mb=512)  # 1/3 of a vCPU
        cluster.vm_executors(3)
        rdd = cluster.builder.source("uniform", partitions=5,
                                     compute_seconds=10.0)
        job = cluster.driver.submit(rdd)
        cluster.env.run(until=job.done)
        return job.duration

    without = run(False)
    with_spec = run(True)
    assert with_spec < without


def test_speculation_respects_quantile_gate():
    """With quantile=1.0 nothing can ever be speculated."""
    cluster = MiniCluster(conf=spec_conf(**{
        "spark.speculation.quantile": 1.0}))
    cluster.vm_executors(4)
    job = cluster.driver.submit(straggler_rdd(cluster.builder))
    cluster.env.run(until=job.done)
    assert not cluster.trace.select(category="scheduler",
                                    name="speculative_launch")
