"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_experiment_cache(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test tmp dir so test
    runs never write ``.repro_cache`` into the repository or leak
    cached results across tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "experiment-cache"))
