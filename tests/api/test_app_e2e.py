"""End-to-end control-plane tests over the in-process ASGI client.

No sockets: the :class:`~repro.api.testclient.TestClient` speaks the
real ASGI protocol (lifespan, http scopes, SSE streaming) against the
app :func:`~repro.api.app.create_app` builds. Everything is
seed-deterministic; the byte-match test pins the tentpole contract that
a served spec job's results are identical to the same spec run through
``repro run --json``.
"""

import json

import pytest

from repro.api import schemas
from repro.api.app import create_app
from repro.api.service import ServeConfig
from repro.api.testclient import TestClient
from repro.observability.categories import CAT_SERVE


@pytest.fixture()
def client():
    config = ServeConfig(max_concurrent=4, max_queue=8, seed=0,
                         pool_cores=4)
    with TestClient(create_app(config)) as c:
        yield c


def _submit_and_wait(client, payload, timeout_s=60):
    r = client.post("/jobs", json=payload)
    assert r.status == 202, r.text
    job_id = r.data["job_id"]
    done = client.get(f"/jobs/{job_id}", params={"wait": timeout_s})
    assert done.status == 200
    return done.data


# ---------------------------------------------------------------------------
# The submit -> status -> events happy path
# ---------------------------------------------------------------------------

@pytest.mark.smoke
def test_submit_status_events_end_to_end(client):
    info = client.get("/")
    assert info.envelope().kind == schemas.KIND_SERVICE_INFO
    assert "/jobs" in info.data["endpoints"]

    r = client.post("/jobs", json={"workload": "sparkpi",
                                   "scenario": "spark_R_vm", "seed": 1})
    assert r.status == 202
    env = r.envelope()
    assert env.kind == schemas.KIND_JOB_STATUS
    job_id = env.data["job_id"]
    assert env.data["state"] in (schemas.JOB_QUEUED, schemas.JOB_RUNNING)
    assert env.data["spec_hash"]

    done = client.get(f"/jobs/{job_id}", params={"wait": 60})
    status = schemas.JobStatus.from_dict(done.data)
    assert status.state == schemas.JOB_COMPLETED, status.error
    assert status.duration_s > 0
    assert status.cost > 0
    assert status.record["workload"] == "sparkpi"

    listing = client.get("/jobs")
    assert listing.envelope().kind == schemas.KIND_JOB_LIST
    assert [j["job_id"] for j in listing.data["jobs"]] == [job_id]
    assert listing.data["admission"]["finished"] == 1

    # The lifecycle landed on the event hub, in order.
    snap = client.get("/events", params={"follow": 0,
                                         "category": CAT_SERVE})
    assert snap.envelope().kind == schemas.KIND_EVENTS
    names = [e["name"] for e in snap.data["events"]]
    assert names == ["job_queued", "job_started", "job_finished"]

    # And the same events stream over SSE (replayed from the ring).
    stream = client.get("/events", params={"replay": 20, "max_events": 3,
                                           "category": CAT_SERVE})
    assert stream.headers["content-type"].startswith("text/event-stream")
    events = stream.sse_events()
    assert len(events) == 3
    assert [e["data"]["name"] for e in events] == names
    assert [e["event"] for e in events] == [CAT_SERVE] * 3
    # SSE ids carry the hub sequence for resumption.
    assert [int(e["id"]) for e in events] == sorted(
        int(e["id"]) for e in events)


def test_served_job_byte_matches_cli_run(client, tmp_path):
    """The tentpole determinism contract: POST /jobs with a fixed seed
    returns the same RunRecord, byte for byte (minus wall time), as
    ``repro run --json`` for the same spec."""
    from repro.cli import main

    status = _submit_and_wait(client, {"workload": "sparkpi",
                                       "scenario": "ss_hybrid", "seed": 5})
    assert status["state"] == schemas.JOB_COMPLETED

    out = tmp_path / "cli.jsonl"
    assert main(["run", "--workload", "sparkpi", "--scenario", "ss_hybrid",
                 "--seed", "5", "--json", str(out)]) == 0
    [line] = out.read_text().strip().splitlines()
    row = json.loads(line)
    assert schemas.is_envelope(row)
    cli_record = schemas.unwrap_record(row)

    served = dict(status["record"])
    served.pop("wall_time_s")
    cli_record.pop("wall_time_s")
    assert schemas.dumps(served) == schemas.dumps(cli_record)
    assert status["metrics"] == cli_record["metrics"]


def test_pooled_job_joins_shared_cluster(client):
    status = _submit_and_wait(client, {"workload": "sparkpi",
                                       "mode": "pooled", "seed": 2})
    assert status["state"] == schemas.JOB_COMPLETED, status["error"]
    assert status["metrics"]["latency_s"] > 0
    assert status["metrics"]["queueing_delay_s"] >= 0
    # Pooled jobs have no isolated spec, hence no record/spec hash.
    assert status["spec_hash"] is None
    assert "record" not in status

    pools = client.get("/pools")
    assert pools.envelope().kind == schemas.KIND_POOL_STATS
    assert pools.data["manager"]["finished"] == 1
    assert pools.data["sim_time_s"] > 0
    assert pools.data["capacity"]["vm_cores"] == 4

    execs = client.get("/executors")
    assert execs.envelope().kind == schemas.KIND_EXECUTORS
    assert len(execs.data["executors"]) > 0
    kinds = {e["kind"] for e in execs.data["executors"]}
    assert kinds == {"vm"}


# ---------------------------------------------------------------------------
# Planner endpoint
# ---------------------------------------------------------------------------

def test_plan_endpoint_ranks_candidates(client):
    r = client.get("/plan", params={"workload": "sparkpi", "slo_s": 500})
    assert r.status == 200
    env = r.envelope()
    assert env.kind == schemas.KIND_PLAN
    assert env.data["workload"] == "sparkpi"
    ranks = [c["rank"] for c in env.data["candidates"]]
    assert ranks == list(range(1, len(ranks) + 1))
    assert env.data["chosen"] == env.data["candidates"][0]["name"]

    missing = client.get("/plan")
    assert missing.status == 400
    assert missing.data["code"] == schemas.ERR_INVALID_REQUEST


# ---------------------------------------------------------------------------
# Error surfaces
# ---------------------------------------------------------------------------

def test_unknown_job_is_404(client):
    r = client.get("/jobs/job-999999")
    assert r.status == 404
    env = r.envelope()
    assert env.kind == schemas.KIND_ERROR
    assert env.data["code"] == schemas.ERR_NOT_FOUND


def test_bad_submission_is_400(client):
    r = client.post("/jobs", json={"workload": "sparkpi",
                                   "wokload_params": {}})
    assert r.status == 400
    assert r.data["code"] == schemas.ERR_INVALID_REQUEST
    assert "wokload_params" in r.data["message"]

    r = client.post("/jobs", json=["not", "an", "object"])
    assert r.status == 400

    r = client.get("/jobs/job-000001", params={"wait": "soon"})
    assert r.status == 400


def test_unknown_route_and_method(client):
    assert client.get("/nope").status == 404
    r = client.post("/executors")
    assert r.status == 405
    assert r.envelope().kind == schemas.KIND_ERROR
