"""A minimal ASGI toolkit for the control plane.

The control plane is written against the bare `ASGI 3.0
<https://asgi.readthedocs.io/>`_ protocol rather than FastAPI, so the
baked-in environment (stdlib + numpy) can run and test it with zero new
dependencies. The app still speaks standard ASGI, so with the optional
``[serve]`` extra installed it runs unmodified under uvicorn (and the
same routes could be mounted in a FastAPI app); without it,
:mod:`repro.api.server` serves it over a stdlib threaded HTTP server
and :mod:`repro.api.testclient` drives it in-process.

Pieces: :class:`Request` (query/body/JSON parsing), :class:`Response` /
:class:`JSONResponse` (the latter always emits a
:class:`~repro.api.schemas.ResponseEnvelope`), :class:`SSEResponse`
(``text/event-stream`` with client-disconnect handling), and
:class:`App` — a method+path router with ``{param}`` captures, JSON
error mapping through the shared schemas, and lifespan support.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl

from repro.api import schemas

Scope = Dict[str, Any]
Receive = Callable[[], Awaitable[Dict[str, Any]]]
Send = Callable[[Dict[str, Any]], Awaitable[None]]


class ApiError(Exception):
    """An error with an HTTP status and a structured body.

    Raised anywhere under a handler; the router converts it into a
    :class:`~repro.api.schemas.ErrorBody` inside an error envelope, so
    every failure mode shares one JSON shape.
    """

    def __init__(self, status: int, code: str, message: str,
                 detail: Optional[Dict[str, Any]] = None,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = schemas.ErrorBody(code=code, message=message,
                                      detail=detail or {},
                                      retry_after_s=retry_after_s)


class Request:
    """One HTTP request: lazily parsed query, body, and JSON."""

    def __init__(self, scope: Scope, receive: Receive) -> None:
        self.scope = scope
        self._receive = receive
        self.path_params: Dict[str, str] = {}
        self._body: Optional[bytes] = None

    @property
    def method(self) -> str:
        return self.scope.get("method", "GET").upper()

    @property
    def path(self) -> str:
        return self.scope.get("path", "/")

    @property
    def query(self) -> Dict[str, str]:
        raw = self.scope.get("query_string", b"") or b""
        return dict(parse_qsl(raw.decode("latin-1")))

    @property
    def headers(self) -> Dict[str, str]:
        """Lower-cased header map (last value wins on duplicates)."""
        return {k.decode("latin-1").lower(): v.decode("latin-1")
                for k, v in self.scope.get("headers", [])}

    async def body(self) -> bytes:
        if self._body is None:
            chunks: List[bytes] = []
            while True:
                message = await self._receive()
                if message["type"] == "http.disconnect":
                    break
                chunks.append(message.get("body", b""))
                if not message.get("more_body", False):
                    break
            self._body = b"".join(chunks)
        return self._body

    async def json(self) -> Any:
        raw = await self.body()
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, schemas.ERR_INVALID_REQUEST,
                           f"request body is not valid JSON: {exc}")


class Response:
    """A complete (non-streaming) HTTP response."""

    def __init__(self, body: bytes = b"", status: int = 200,
                 content_type: str = "text/plain; charset=utf-8",
                 headers: Optional[List[Tuple[str, str]]] = None) -> None:
        self.body = body
        self.status = status
        self.headers = [("content-type", content_type)] + (headers or [])

    def _raw_headers(self) -> List[Tuple[bytes, bytes]]:
        return [(k.lower().encode("latin-1"), v.encode("latin-1"))
                for k, v in self.headers]

    async def send(self, receive: Receive, send: Send) -> None:
        await send({"type": "http.response.start", "status": self.status,
                    "headers": self._raw_headers()})
        await send({"type": "http.response.body", "body": self.body,
                    "more_body": False})


class JSONResponse(Response):
    """A deterministic JSON response carrying one envelope."""

    def __init__(self, kind: str, data: Any, status: int = 200,
                 headers: Optional[List[Tuple[str, str]]] = None) -> None:
        payload = schemas.envelope(kind, data).dumps().encode("utf-8")
        super().__init__(payload, status=status,
                         content_type="application/json", headers=headers)


def error_response(exc: ApiError) -> JSONResponse:
    headers = []
    if exc.body.retry_after_s is not None:
        headers.append(("retry-after",
                        str(max(0, int(round(exc.body.retry_after_s))))))
    return JSONResponse(schemas.KIND_ERROR, exc.body, status=exc.status,
                        headers=headers)


def sse_frame(data: Any, event: Optional[str] = None,
              event_id: Optional[str] = None) -> bytes:
    """One ``text/event-stream`` frame (``id``/``event``/``data``)."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    text = data if isinstance(data, str) else schemas.dumps(data)
    for chunk in text.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class SSEResponse:
    """A ``text/event-stream`` response fed by an async generator of
    pre-encoded frames (see :func:`sse_frame`).

    The generator is cancelled as soon as the client disconnects, so a
    server never leaks a subscription past its consumer.
    """

    def __init__(self, frames: AsyncIterator[bytes]) -> None:
        self.frames = frames
        self.status = 200
        self.headers = [("content-type", "text/event-stream"),
                        ("cache-control", "no-cache"),
                        ("connection", "keep-alive")]

    async def send(self, receive: Receive, send: Send) -> None:
        await send({
            "type": "http.response.start", "status": self.status,
            "headers": [(k.encode("latin-1"), v.encode("latin-1"))
                        for k, v in self.headers]})

        disconnected = asyncio.Event()

        async def watch_disconnect() -> None:
            while not disconnected.is_set():
                message = await receive()
                if message["type"] == "http.disconnect":
                    disconnected.set()
                    return

        watcher = asyncio.ensure_future(watch_disconnect())
        try:
            async for frame in self.frames:
                if disconnected.is_set():
                    break
                try:
                    await send({"type": "http.response.body", "body": frame,
                                "more_body": True})
                except Exception:
                    break  # transport gone — treat as a disconnect
            if not disconnected.is_set():
                try:
                    await send({"type": "http.response.body", "body": b"",
                                "more_body": False})
                except Exception:
                    pass
        finally:
            watcher.cancel()
            try:
                await watcher
            except (asyncio.CancelledError, Exception):
                pass
            closer = getattr(self.frames, "aclose", None)
            if closer is not None:
                try:
                    await closer()
                except Exception:
                    pass


Handler = Callable[[Request], Awaitable[Any]]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(path: str) -> re.Pattern:
    pattern = _PARAM_RE.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)",
                            re.escape(path).replace(r"\{", "{")
                            .replace(r"\}", "}"))
    return re.compile(f"^{pattern}$")


class App:
    """Method+path router implementing the ASGI 3.0 callable."""

    def __init__(self, on_startup: Optional[Callable[[], None]] = None,
                 on_shutdown: Optional[Callable[[], None]] = None) -> None:
        self._routes: List[Tuple[str, re.Pattern, str, Handler]] = []
        self._on_startup = on_startup
        self._on_shutdown = on_shutdown
        self._started = False

    def route(self, method: str, path: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self._routes.append((method.upper(), _compile(path), path,
                                 handler))
            return handler
        return register

    def get(self, path: str):
        return self.route("GET", path)

    def post(self, path: str):
        return self.route("POST", path)

    def startup(self) -> None:
        """Idempotent startup hook (lifespan or first request)."""
        if not self._started:
            self._started = True
            if self._on_startup is not None:
                self._on_startup()

    def shutdown(self) -> None:
        if self._started:
            self._started = False
            if self._on_shutdown is not None:
                self._on_shutdown()

    # -- ASGI entry point --------------------------------------------------

    async def __call__(self, scope: Scope, receive: Receive,
                       send: Send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws not served
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        self.startup()
        request = Request(scope, receive)
        try:
            response = await self._dispatch(request)
        except ApiError as exc:
            response = error_response(exc)
        except Exception as exc:  # noqa: BLE001 - boundary of the app
            response = error_response(ApiError(
                500, schemas.ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}"))
        await response.send(receive, send)

    async def _dispatch(self, request: Request):
        allowed: List[str] = []
        for method, pattern, _path, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            request.path_params = match.groupdict()
            result = await handler(request)
            if isinstance(result, (Response, SSEResponse)):
                return result
            raise ApiError(500, schemas.ERR_INTERNAL,
                           f"handler returned {type(result).__name__}, "
                           f"expected a Response")
        if allowed:
            raise ApiError(405, schemas.ERR_INVALID_REQUEST,
                           f"{request.method} not allowed for "
                           f"{request.path}; allowed: {sorted(allowed)}")
        raise ApiError(404, schemas.ERR_NOT_FOUND,
                       f"no route for {request.path}")

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    self.startup()
                except Exception as exc:  # noqa: BLE001
                    await send({"type": "lifespan.startup.failed",
                                "message": str(exc)})
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return
