#!/usr/bin/env python3
"""A burst of latency-critical TPC-DS queries hits an under-provisioned
cluster — the paper's motivating scenario, end to end.

Four analysts fire Q5, Q16, Q94, and Q95 (each sized for 32 cores) at a
cluster with only 8 free VM cores. We compare, per query, what happens
under VM-based autoscaling versus SplitServe's hybrid launch, and total
up the damage.

Run:  python examples/tpcds_burst.py
"""

from repro.analysis.reporting import format_table
from repro.core import run_scenario
from repro.experiments import ExperimentSpec
from repro.workloads.tpcds import PRESENTED_QUERIES


def main() -> None:
    rows = []
    total_autoscale, total_hybrid = 0.0, 0.0
    for query in PRESENTED_QUERIES:
        name = f"tpcds-{query}"
        baseline = run_scenario(ExperimentSpec(name, "spark_R_vm"))
        autoscale = run_scenario(ExperimentSpec(name, "spark_autoscale"))
        hybrid = run_scenario(ExperimentSpec(name, "ss_hybrid"))
        total_autoscale += autoscale.duration_s
        total_hybrid += hybrid.duration_s
        improvement = 1 - hybrid.duration_s / autoscale.duration_s
        rows.append([
            query,
            f"{baseline.duration_s:.1f}s",
            f"{autoscale.duration_s:.1f}s",
            f"{hybrid.duration_s:.1f}s",
            f"{improvement:.0%}",
            f"${hybrid.cost:.4f}",
        ])
    print(format_table(
        ["query", "Spark 32 VM", "Spark 8/32 autoscale",
         "SS 8 VM / 24 La", "improvement", "SS cost"],
        rows,
        title="TPC-DS burst: 32-core queries arriving to 8 free cores"))

    overall = 1 - total_hybrid / total_autoscale
    print(f"\nAcross the burst, SplitServe's hybrid launch answers "
          f"{overall:.0%} faster than VM-based autoscaling "
          f"(paper reports 55.2% on average) — every query finishes "
          f"before the autoscaler's replacement VMs would even boot.")


if __name__ == "__main__":
    main()
