"""Live observability for the ``repro serve`` control plane.

PR 3 gave single *runs* full observability (closed taxonomy, metrics,
Chrome traces); this module gives the long-lived serving process the
same treatment, as four composable pieces the
:class:`~repro.api.service.ServeRuntime` wires together:

- **Causal tracing** — :class:`ServeTracer` carries a deterministic
  ``trace_id``/``span_id``/``parent_span_id`` context on every
  serve-side job from JobRequest through admission, plan, retry
  attempts, breaker transitions, and journal ops. Every span boundary
  is also published as a ``CAT_TRACE`` event on the serve hub (so SSE
  clients and the dashboard see spans live), and the driver stamps
  active trace ids onto the sim's ``CAT_*`` events via the EventBus
  context (see :meth:`repro.observability.bus.EventBus.set_context`).
  ``repro trace <job_id>`` renders the tree via
  :func:`render_span_tree`; :func:`span_tree` /
  :func:`span_tree_fingerprint` are the deterministic projection the
  byte-identity tests compare (wall-clock fields excluded).
- **Live metrics exposition** — :class:`RollingHistogram` (a
  fixed-bucket, rolling-window aggregator with p50/p95/p99 readouts)
  and :func:`render_prometheus` /
  :func:`registry_families`, which project the deterministic
  :class:`~repro.observability.metrics.MetricsRegistry` plus live
  serve gauges into the Prometheus text exposition format behind
  ``GET /metrics``.
- **SLO tracking** — :class:`SLOTracker` computes per-window burn
  rates against configurable availability/latency objectives
  (burn rate = observed bad fraction / error budget; 1.0 = burning
  exactly the budget), surfaced in ``/readyz`` (``slo_burn_ok``) and
  as ``serve.slo.*`` metric families.
- **Profiling hooks** — :class:`SamplingProfiler`, a statistical
  sampler (stdlib ``sys._current_frames``; off by default, enabled by
  ``repro serve --profile`` / ``repro run --profile``) that attributes
  samples to kernel/bus/scheduler/cloud/serve hot paths and exports
  top-N frames into RunRecord.metrics and ``/metrics``.

Wall-clock note: the serve plane measures real admission latency,
real SLO windows and real profiler samples, so this module is on the
replayability lint's wall-clock exemption list. Nothing here feeds
simulated behavior, and every identifier (trace ids, span ids) is
hash-derived — never drawn from ``random``.
"""

from __future__ import annotations

import hashlib
import sys
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.observability.categories import (
    CAT_TRACE,
    EV_SPAN_END,
    EV_SPAN_EVENT,
    EV_SPAN_START,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Span", "ServeTracer", "trace_id_for_job", "span_tree",
    "span_tree_fingerprint", "render_span_tree", "orphan_spans",
    "RollingHistogram", "DEFAULT_LATENCY_BUCKETS",
    "SLOConfig", "SLOTracker",
    "MetricSample", "MetricFamily", "prom_name", "render_prometheus",
    "registry_families", "rolling_histogram_families", "slo_families",
    "profiler_families", "deterministic_metric_lines",
    "NONDETERMINISTIC_MARKERS",
    "SamplingProfiler", "PROFILE_BUCKETS",
    "DASHBOARD_HTML",
]

# Span attr/metric keys that carry wall-clock quantities; the
# deterministic projections strip them.
_TIMING_ATTRS = frozenset({
    "queued_s", "backoff_s", "duration_s", "wall_s", "t", "retry_after_s",
    "uptime_s", "append_s",
})

SPAN_HOST = "host"   # wall-clock span (the serve plane's native clock)
SPAN_SIM = "sim"     # simulated-time span (merged timelines label lanes)

STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_RETRY = "retry"


def _short_hash(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def trace_id_for_job(job_id: str) -> str:
    """Deterministic trace id: same job id ⇒ same trace, across runs
    and across server restarts (recovered jobs continue their trace)."""
    return _short_hash(f"trace:{job_id}")


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

@dataclass
class Span:
    """One node of a job's causal tree.

    ``index`` is the span's birth order within its trace — ids are
    derived from it, so a fixed operation sequence yields a
    byte-identical tree. ``start_s``/``end_s`` are host wall seconds
    (serve clock); the deterministic projection drops them.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str]
    name: str
    index: int
    kind: str = SPAN_HOST
    start_s: float = 0.0
    end_s: Optional[float] = None
    status: str = STATUS_OPEN
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "index": self.index,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(trace_id=str(data["trace_id"]),
                   span_id=str(data["span_id"]),
                   parent_span_id=data.get("parent_span_id"),
                   name=str(data["name"]),
                   index=int(data.get("index", 0)),
                   kind=str(data.get("kind", SPAN_HOST)),
                   start_s=float(data.get("start_s") or 0.0),
                   end_s=data.get("end_s"),
                   status=str(data.get("status", STATUS_OPEN)),
                   attrs=dict(data.get("attrs") or {}))


class ServeTracer:
    """Owns every serve-side trace and publishes span boundaries.

    One instance per :class:`~repro.api.service.ServeRuntime`. All
    methods are thread-safe (admission lock, worker threads, and the
    reaper all emit). ``hub`` is anything with the
    ``record(time, category, name, **fields)`` duck type (the serve
    EventHub); ``clock`` supplies the serve-relative wall clock.
    """

    def __init__(self, hub: Any = None,
                 clock: Callable[[], float] = time.monotonic,
                 max_traces: int = 4096) -> None:
        self._hub = hub
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: Dict[str, List[Span]] = {}       # trace_id -> spans
        self._trace_of_job: Dict[str, str] = {}
        self._open_roots: Dict[str, Span] = {}        # trace_id -> root
        self._open_by_name: Dict[Tuple[str, str], Span] = {}
        self._counters: Dict[str, int] = {}
        self._max_traces = max_traces

    # -- low-level span plumbing ------------------------------------------

    def _publish(self, event: str, span: Span) -> None:
        """Mirror one span boundary onto the hub as a CAT_TRACE event
        (``event`` must be an ``EV_SPAN_*`` registry constant — the
        taxonomy lint checks call sites of this helper)."""
        if self._hub is None:
            return
        fields: Dict[str, Any] = {
            "trace": span.trace_id, "span": span.span_id,
            "parent": span.parent_span_id, "span_name": span.name,
            "status": span.status,
        }
        self._hub.record(self._clock(), CAT_TRACE, event, **fields)

    def _new_span(self, trace_id: str, name: str,
                  parent_span_id: Optional[str], kind: str,
                  attrs: Dict[str, Any]) -> Span:
        index = self._counters.get(trace_id, 0)
        self._counters[trace_id] = index + 1
        span = Span(trace_id=trace_id,
                    span_id=_short_hash(f"{trace_id}:{index}"),
                    parent_span_id=parent_span_id, name=name, index=index,
                    kind=kind, start_s=self._clock(), attrs=attrs)
        bucket = self._spans.setdefault(trace_id, [])
        bucket.append(span)
        if len(self._spans) > self._max_traces:
            self._evict_locked()
        return span

    def _evict_locked(self) -> None:
        """Drop the oldest *closed* traces beyond the bound."""
        for trace_id in list(self._spans):
            if len(self._spans) <= self._max_traces:
                return
            if trace_id in self._open_roots:
                continue
            del self._spans[trace_id]
            self._counters.pop(trace_id, None)

    def _start(self, trace_id: str, name: str,
               parent_span_id: Optional[str],
               attrs: Dict[str, Any]) -> Span:
        span = self._new_span(trace_id, name, parent_span_id, SPAN_HOST,
                              attrs)
        self._open_by_name[(trace_id, name)] = span
        return span

    def _end(self, span: Optional[Span], status: str,
             attrs: Dict[str, Any]) -> Optional[Span]:
        if span is None:
            return None
        span.end_s = self._clock()
        span.status = status
        span.attrs.update(attrs)
        self._open_by_name.pop((span.trace_id, span.name), None)
        return span

    def _event(self, trace_id: str, name: str,
               parent_span_id: Optional[str],
               attrs: Dict[str, Any]) -> Span:
        span = self._new_span(trace_id, name, parent_span_id, SPAN_HOST,
                              attrs)
        span.end_s = span.start_s
        span.status = STATUS_OK
        return span

    # -- job lifecycle -----------------------------------------------------

    def begin_job(self, job_id: str, workload: str, mode: str,
                  recovered: bool = False,
                  prior_attempts: int = 0) -> str:
        """Open the root + admission spans at submit (or recovery)."""
        trace_id = trace_id_for_job(job_id)
        with self._lock:
            attrs: Dict[str, Any] = {"job": job_id, "workload": workload,
                                     "mode": mode}
            if recovered:
                attrs["recovered"] = True
                attrs["prior_attempts"] = prior_attempts
            root = self._start(trace_id, "job", None, attrs)
            self._trace_of_job[job_id] = trace_id
            self._open_roots[trace_id] = root
            admission = self._start(trace_id, "admission", root.span_id, {})
        self._publish(EV_SPAN_START, root)
        self._publish(EV_SPAN_START, admission)
        return trace_id

    def job_started(self, job_id: str, attempt: int) -> None:
        """Close the wait span (admission or retry-wait) and open the
        attempt span."""
        closed: List[Span] = []
        with self._lock:
            trace_id = self._trace_of_job.get(job_id)
            if trace_id is None:
                return
            root = self._open_roots.get(trace_id)
            if attempt <= 1:
                wait = self._open_by_name.get((trace_id, "admission"))
            else:
                wait = self._open_by_name.get(
                    (trace_id, f"retry-wait-{attempt - 1}"))
            ended = self._end(wait, STATUS_OK, {})
            if ended is not None:
                closed.append(ended)
            span = self._start(
                trace_id, f"attempt-{attempt}",
                root.span_id if root is not None else None,
                {"attempt": attempt})
        for span_ in closed:
            self._publish(EV_SPAN_END, span_)
        self._publish(EV_SPAN_START, span)

    def job_retrying(self, job_id: str, attempt: int, backoff_s: float,
                     error: str) -> None:
        """Close attempt ``attempt`` as a retry and open the backoff
        wait span the next attempt will close."""
        closed: List[Span] = []
        with self._lock:
            trace_id = self._trace_of_job.get(job_id)
            if trace_id is None:
                return
            root = self._open_roots.get(trace_id)
            ended = self._end(
                self._open_by_name.get((trace_id, f"attempt-{attempt}")),
                STATUS_RETRY, {"error": error})
            if ended is not None:
                closed.append(ended)
            wait = self._start(
                trace_id, f"retry-wait-{attempt}",
                root.span_id if root is not None else None,
                {"backoff_s": round(backoff_s, 6)})
        for span_ in closed:
            self._publish(EV_SPAN_END, span_)
        self._publish(EV_SPAN_START, wait)

    def job_finished(self, job_id: str, state: str, attempts: int,
                     error: Optional[str] = None) -> None:
        """Terminal transition: close any open attempt/wait span and
        the root."""
        status = STATUS_OK if error is None else STATUS_ERROR
        closed: List[Span] = []
        with self._lock:
            trace_id = self._trace_of_job.get(job_id)
            if trace_id is None:
                return
            attrs: Dict[str, Any] = {"error": error} if error else {}
            for name in ("admission", f"attempt-{attempts}",
                         f"retry-wait-{attempts}"):
                ended = self._end(
                    self._open_by_name.get((trace_id, name)), status,
                    dict(attrs))
                if ended is not None:
                    closed.append(ended)
            root = self._open_roots.pop(trace_id, None)
            ended = self._end(root, status,
                              {"state": state, "attempts": attempts,
                               **attrs})
            if ended is not None:
                closed.append(ended)
        for span_ in closed:
            self._publish(EV_SPAN_END, span_)

    # -- annotations -------------------------------------------------------

    def annotate_job(self, job_id: str, name: str,
                     **attrs: Any) -> None:
        """A zero-length span event under the job's root (plan
        decisions, journal ops, chaos marks)."""
        with self._lock:
            trace_id = self._trace_of_job.get(job_id)
            if trace_id is None:
                return
            root = self._open_roots.get(trace_id)
            parent = root.span_id if root is not None else None
            span = self._event(trace_id, name, parent, dict(attrs))
        self._publish(EV_SPAN_EVENT, span)

    def annotate_active(self, name: str, **attrs: Any) -> int:
        """Attach one span event to *every* in-flight trace (breaker
        transitions affect all running jobs); returns how many traces
        were annotated."""
        spans: List[Span] = []
        with self._lock:
            for trace_id, root in self._open_roots.items():
                spans.append(self._event(trace_id, name, root.span_id,
                                         dict(attrs)))
        for span in spans:
            self._publish(EV_SPAN_EVENT, span)
        return len(spans)

    # -- queries -----------------------------------------------------------

    def trace_id(self, job_id: str) -> Optional[str]:
        with self._lock:
            return self._trace_of_job.get(job_id)

    def active_trace_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._open_roots)

    def spans(self, job_id: str) -> List[Dict[str, Any]]:
        """All spans of the job's trace, birth order, as dicts."""
        with self._lock:
            trace_id = self._trace_of_job.get(job_id)
            if trace_id is None:
                return []
            return [s.to_dict() for s in self._spans.get(trace_id, [])]


# ---------------------------------------------------------------------------
# Span-tree projection and rendering
# ---------------------------------------------------------------------------

def orphan_spans(spans: Sequence[Mapping[str, Any]]
                 ) -> List[Mapping[str, Any]]:
    """Spans whose parent id is neither None nor present in the set —
    a complete trace has none."""
    ids = {s["span_id"] for s in spans}
    return [s for s in spans
            if s.get("parent_span_id") is not None
            and s["parent_span_id"] not in ids]


def span_tree(spans: Sequence[Mapping[str, Any]],
              include_times: bool = False) -> List[Dict[str, Any]]:
    """Nest spans by parent link (children in birth order).

    With ``include_times=False`` (the default) the projection is
    deterministic: wall-clock attrs and start/end stamps are dropped,
    so two same-sequence runs produce byte-identical trees.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for s in sorted(spans, key=lambda s: s["index"]):
        attrs = {k: v for k, v in (s.get("attrs") or {}).items()
                 if include_times or k not in _TIMING_ATTRS}
        node: Dict[str, Any] = {
            "name": s["name"], "status": s["status"], "kind": s["kind"],
            "attrs": attrs, "children": [],
        }
        if include_times:
            node["start_s"] = s.get("start_s")
            node["end_s"] = s.get("end_s")
        nodes[s["span_id"]] = node
    roots: List[Dict[str, Any]] = []
    for s in sorted(spans, key=lambda s: s["index"]):
        node = nodes[s["span_id"]]
        parent = s.get("parent_span_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def span_tree_fingerprint(spans: Sequence[Mapping[str, Any]]) -> str:
    """Canonical JSON of the deterministic tree projection — the
    byte-identity surface the determinism tests compare."""
    import json
    return json.dumps(span_tree(spans, include_times=False),
                      sort_keys=True)


def render_span_tree(spans: Sequence[Mapping[str, Any]],
                     include_times: bool = True) -> str:
    """ASCII tree for ``repro trace`` (box-drawing, one span per line).

    Raises ``ValueError`` when the trace has orphan spans — a broken
    parent link is a tracing bug, not a rendering choice.
    """
    if not spans:
        return "(no spans)"
    orphans = orphan_spans(spans)
    if orphans:
        raise ValueError(
            "orphan spans (parent link broken): "
            + ", ".join(f"{s['name']}({s['span_id']})" for s in orphans))
    trace_id = spans[0]["trace_id"]
    lines = [f"trace {trace_id}"]

    def _label(node: Mapping[str, Any]) -> str:
        marker = "◆ " if (node.get("start_s") is not None
                          and node.get("end_s") == node.get("start_s")
                          ) else ""
        out = f"{marker}{node['name']} [{node['status']}]"
        if include_times and node.get("end_s") is not None \
                and node.get("start_s") is not None \
                and node["end_s"] > node["start_s"]:
            out += f" {node['end_s'] - node['start_s']:.6f}s"
        attrs = node.get("attrs") or {}
        if attrs:
            out += " " + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        return out

    def _walk(nodes: List[Dict[str, Any]], prefix: str) -> None:
        for i, node in enumerate(nodes):
            last = i == len(nodes) - 1
            lines.append(prefix + ("└─ " if last else "├─ ")
                         + _label(node))
            _walk(node["children"], prefix + ("   " if last else "│  "))

    _walk(span_tree(spans, include_times=True), "")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rolling-window histogram
# ---------------------------------------------------------------------------

#: Log-spaced latency buckets (seconds), 100 µs — 10 s. The final +Inf
#: bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class RollingHistogram:
    """Fixed-bucket histogram over a rolling wall-clock window.

    The window is ``slices`` ring segments of ``window_s / slices``
    each; observations land in the current segment and a whole segment
    expires at a time (standard coarse rolling window — cheap, O(1)
    per observation, bounded memory). Quantiles are read from the
    merged window buckets (upper-bound estimate, the Prometheus
    convention). Lifetime ``total_count``/``total_sum`` never reset.
    """

    def __init__(self, window_s: float = 60.0, slices: int = 6,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window_s <= 0 or slices < 1:
            raise ValueError("window_s must be > 0 and slices >= 1")
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("need at least one bucket bound")
        self.window_s = float(window_s)
        self._slice_s = self.window_s / slices
        self._clock = clock
        self._lock = threading.Lock()
        n = len(self.bounds) + 1  # + overflow bucket
        self._slices = [[0] * n for _ in range(slices)]
        self._slice_sums = [0.0] * slices
        self._slice_counts = [0] * slices
        self._current = 0
        self._current_started = clock()
        self.total_count = 0
        self.total_sum = 0.0

    def _advance_locked(self, now: float) -> None:
        elapsed = now - self._current_started
        if elapsed < self._slice_s:
            return
        steps = min(len(self._slices), int(elapsed / self._slice_s))
        for _ in range(steps):
            self._current = (self._current + 1) % len(self._slices)
            self._slices[self._current] = [0] * (len(self.bounds) + 1)
            self._slice_sums[self._current] = 0.0
            self._slice_counts[self._current] = 0
        self._current_started = now

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._advance_locked(self._clock())
            self._slices[self._current][idx] += 1
            self._slice_sums[self._current] += value
            self._slice_counts[self._current] += 1
            self.total_count += 1
            self.total_sum += value

    def _merged_locked(self) -> List[int]:
        merged = [0] * (len(self.bounds) + 1)
        for counts in self._slices:
            for i, c in enumerate(counts):
                merged[i] += c
        return merged

    def window_counts(self) -> Tuple[List[int], int, float]:
        """(per-bucket counts, count, sum) over the current window."""
        with self._lock:
            self._advance_locked(self._clock())
            return (self._merged_locked(), sum(self._slice_counts),
                    sum(self._slice_sums))

    def quantile(self, q: float) -> float:
        """Upper-bound quantile estimate over the window (0 when
        empty; the top bound when the sample lands in overflow)."""
        counts, total, _ = self.window_counts()
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.999999))
        running = 0
        for i, c in enumerate(counts):
            running += c
            if running >= rank:
                return (self.bounds[i] if i < len(self.bounds)
                        else self.bounds[-1])
        return self.bounds[-1]

    def snapshot(self) -> Dict[str, float]:
        counts, total, total_sum = self.window_counts()
        return {
            "count": total, "sum": total_sum,
            "p50": self.quantile(0.50), "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


# ---------------------------------------------------------------------------
# SLO burn rate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SLOConfig:
    """Objectives the serve plane is scored against.

    ``availability_target`` — fraction of submissions that must be
    accepted (not shed) and of finished jobs that must not fail.
    ``latency_p99_s`` — admission-latency objective: an admission
    slower than this is a "bad" latency event. ``max_burn_rate`` — the
    readiness gate: ``/readyz`` trips when either burn rate exceeds it
    (14.4 = the classic 1-hour fast-burn page threshold for a 30-day
    window).
    """

    window_s: float = 60.0
    availability_target: float = 0.99
    latency_p99_s: float = 0.25
    max_burn_rate: float = 14.4

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if self.latency_p99_s <= 0:
            raise ValueError("latency_p99_s must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.max_burn_rate <= 0:
            raise ValueError("max_burn_rate must be positive")


class _GoodBadWindow:
    """Rolling good/bad event counts (same ring scheme as
    RollingHistogram, two integers per slice)."""

    def __init__(self, window_s: float, slices: int,
                 clock: Callable[[], float]) -> None:
        self._clock = clock
        self._slice_s = window_s / slices
        self._good = [0] * slices
        self._bad = [0] * slices
        self._current = 0
        self._current_started = clock()
        self._lock = threading.Lock()
        self.total_good = 0
        self.total_bad = 0

    def _advance_locked(self, now: float) -> None:
        elapsed = now - self._current_started
        if elapsed < self._slice_s:
            return
        steps = min(len(self._good), int(elapsed / self._slice_s))
        for _ in range(steps):
            self._current = (self._current + 1) % len(self._good)
            self._good[self._current] = 0
            self._bad[self._current] = 0
        self._current_started = now

    def record(self, good: bool) -> None:
        with self._lock:
            self._advance_locked(self._clock())
            if good:
                self._good[self._current] += 1
                self.total_good += 1
            else:
                self._bad[self._current] += 1
                self.total_bad += 1

    def window(self) -> Tuple[int, int]:
        with self._lock:
            self._advance_locked(self._clock())
            return sum(self._good), sum(self._bad)


class SLOTracker:
    """Per-window burn rates against the configured objectives.

    Burn rate = (bad fraction in the window) / (error budget), the
    standard multiwindow-burn-rate formulation: 1.0 means errors arrive
    exactly at the budgeted rate; ``max_burn_rate`` (e.g. 14.4) means
    the monthly budget would be gone in ~2 days. No events ⇒ burn 0.
    """

    def __init__(self, config: Optional[SLOConfig] = None,
                 slices: int = 6,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or SLOConfig()
        self._availability = _GoodBadWindow(self.config.window_s, slices,
                                            clock)
        self._latency = _GoodBadWindow(self.config.window_s, slices,
                                       clock)

    # -- feeds -------------------------------------------------------------

    def record_admission(self, accepted: bool, latency_s: float) -> None:
        self._availability.record(accepted)
        if accepted:
            self._latency.record(latency_s <= self.config.latency_p99_s)

    def record_job_outcome(self, ok: bool) -> None:
        self._availability.record(ok)

    # -- reads -------------------------------------------------------------

    @staticmethod
    def _burn(good: int, bad: int, target: float) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - target)

    def burn_rates(self) -> Dict[str, float]:
        a_good, a_bad = self._availability.window()
        l_good, l_bad = self._latency.window()
        cfg = self.config
        return {
            "availability": self._burn(a_good, a_bad,
                                       cfg.availability_target),
            # The latency objective shares the availability budget
            # fraction: an admission past the target burns like an
            # error against the same (1 - target) budget.
            "latency": self._burn(l_good, l_bad,
                                  cfg.availability_target),
        }

    def healthy(self) -> bool:
        return max(self.burn_rates().values(),
                   default=0.0) <= self.config.max_burn_rate

    def snapshot(self) -> Dict[str, Any]:
        a_good, a_bad = self._availability.window()
        l_good, l_bad = self._latency.window()
        burns = self.burn_rates()
        return {
            "window_s": self.config.window_s,
            "availability_target": self.config.availability_target,
            "latency_p99_s": self.config.latency_p99_s,
            "max_burn_rate": self.config.max_burn_rate,
            "good_events": a_good + l_good,
            "bad_events": a_bad + l_bad,
            "availability_burn_rate": round(burns["availability"], 6),
            "latency_burn_rate": round(burns["latency"], 6),
            "healthy": self.healthy(),
        }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricSample:
    """One exposition line: optional labels + value (+ name suffix for
    ``_bucket``/``_count``/``_sum`` children)."""

    value: float
    labels: Tuple[Tuple[str, str], ...] = ()
    suffix: str = ""


@dataclass
class MetricFamily:
    """One ``# TYPE`` block of the exposition."""

    name: str
    type: str          # "counter" | "gauge" | "histogram" | "summary"
    help: str
    samples: List[MetricSample] = field(default_factory=list)


_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def prom_name(dotted: str, prefix: str = "repro_") -> str:
    """Sanitize a dotted metric name into the Prometheus grammar."""
    import re
    name = prefix + re.sub(r"[^a-zA-Z0-9_]", "_", dotted)
    if not re.match(r"^[a-zA-Z_]", name):
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """The Prometheus text exposition (format 0.0.4) of the families,
    sorted by family name so equal inputs render byte-identically."""
    out: List[str] = []
    for fam in sorted(families, key=lambda f: f.name):
        if fam.type not in _PROM_TYPES:
            raise ValueError(f"unknown family type {fam.type!r}")
        help_text = fam.help.replace("\\", r"\\").replace("\n", r"\n")
        out.append(f"# HELP {fam.name} {help_text}")
        out.append(f"# TYPE {fam.name} {fam.type}")
        for sample in fam.samples:
            label_text = ""
            if sample.labels:
                pairs = ",".join(
                    '{}="{}"'.format(
                        k, v.replace("\\", r"\\").replace('"', r"\"")
                        .replace("\n", r"\n"))
                    for k, v in sample.labels)
                label_text = "{" + pairs + "}"
            out.append(f"{fam.name}{sample.suffix}{label_text} "
                       f"{_format_value(sample.value)}")
    return "\n".join(out) + "\n"


def registry_families(registry: MetricsRegistry,
                      help_prefix: str = "repro metric "
                      ) -> List[MetricFamily]:
    """Project a MetricsRegistry onto exposition families: Counter →
    counter (``_total``), Gauge → gauge, Histogram → summary
    (``_count``/``_sum``) plus a ``_mean`` gauge."""
    families: List[MetricFamily] = []
    for name in registry.names():
        metric = registry.metric(name)
        if isinstance(metric, Counter):
            families.append(MetricFamily(
                name=prom_name(name) + "_total", type="counter",
                help=help_prefix + name,
                samples=[MetricSample(metric.value)]))
        elif isinstance(metric, Gauge):
            families.append(MetricFamily(
                name=prom_name(name), type="gauge",
                help=help_prefix + name,
                samples=[MetricSample(metric.value)]))
        elif isinstance(metric, Histogram):
            families.append(MetricFamily(
                name=prom_name(name), type="summary",
                help=help_prefix + name,
                samples=[MetricSample(metric.count, suffix="_count"),
                         MetricSample(metric.sum, suffix="_sum")]))
            if metric.count:
                families.append(MetricFamily(
                    name=prom_name(name) + "_mean", type="gauge",
                    help=help_prefix + name + " (mean)",
                    samples=[MetricSample(metric.mean)]))
    return families


def rolling_histogram_families(name: str, hist: RollingHistogram,
                               help_text: str) -> List[MetricFamily]:
    """One rolling histogram as a Prometheus histogram family
    (cumulative ``_bucket{le=...}`` + ``_count``/``_sum`` over the
    window) plus p50/p95/p99 gauges."""
    counts, total, total_sum = hist.window_counts()
    samples: List[MetricSample] = []
    running = 0
    for bound, count in zip(hist.bounds, counts):
        running += count
        samples.append(MetricSample(
            running, labels=(("le", _format_value(bound)),),
            suffix="_bucket"))
    samples.append(MetricSample(
        total, labels=(("le", "+Inf"),), suffix="_bucket"))
    samples.append(MetricSample(total, suffix="_count"))
    samples.append(MetricSample(total_sum, suffix="_sum"))
    families = [MetricFamily(name=name, type="histogram", help=help_text,
                             samples=samples)]
    for q, label in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
        families.append(MetricFamily(
            name=f"{name}_{label}", type="gauge",
            help=f"{help_text} ({label} over the window)",
            samples=[MetricSample(hist.quantile(q))]))
    return families


def slo_families(tracker: SLOTracker) -> List[MetricFamily]:
    snap = tracker.snapshot()
    fams = []
    for key, type_ in (("availability_burn_rate", "gauge"),
                       ("latency_burn_rate", "gauge"),
                       ("good_events", "gauge"),
                       ("bad_events", "gauge")):
        fams.append(MetricFamily(
            name=prom_name(f"serve.slo.{key}"), type=type_,
            help=f"serve SLO {key.replace('_', ' ')} "
                 f"(window {snap['window_s']:g}s)",
            samples=[MetricSample(float(snap[key]))]))
    fams.append(MetricFamily(
        name=prom_name("serve.slo.healthy"), type="gauge",
        help="1 when every burn rate is under max_burn_rate",
        samples=[MetricSample(1.0 if snap["healthy"] else 0.0)]))
    return fams


def profiler_families(profiler: "SamplingProfiler"
                      ) -> List[MetricFamily]:
    """Top-N frames and subsystem buckets as labeled gauge families."""
    frames = profiler.top_frames()
    buckets = profiler.bucket_fractions()
    fams = [MetricFamily(
        name=prom_name("serve.profile.samples") + "_total",
        type="counter", help="profiler samples collected",
        samples=[MetricSample(float(profiler.sample_count))])]
    if buckets:
        fams.append(MetricFamily(
            name=prom_name("serve.profile.bucket_fraction"), type="gauge",
            help="fraction of samples per subsystem bucket",
            samples=[MetricSample(frac, labels=(("bucket", name),))
                     for name, frac in sorted(buckets.items())]))
    if frames:
        total = max(1, profiler.sample_count)
        fams.append(MetricFamily(
            name=prom_name("serve.profile.frame_fraction"), type="gauge",
            help="fraction of samples per hottest frame (top-N)",
            samples=[MetricSample(count / total,
                                  labels=(("frame", label),))
                     for label, count in frames]))
    return fams


#: Family-name substrings that mark wall-clock-fed (nondeterministic)
#: metrics. The determinism tests strip matching families before
#: byte-comparing two servers' ``/metrics`` output.
NONDETERMINISTIC_MARKERS: Tuple[str, ...] = (
    "seconds", "uptime", "burn_rate", "slo", "profile", "latency",
    "wall", "_s_",
)


def deterministic_metric_lines(text: str) -> List[str]:
    """Sample lines of an exposition whose family name carries no
    wall-clock marker — the byte-identity surface of ``/metrics``."""
    keep = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if any(marker in name for marker in NONDETERMINISTIC_MARKERS):
            continue
        keep.append(line)
    return keep


# ---------------------------------------------------------------------------
# Sampled profiler
# ---------------------------------------------------------------------------

#: filename fragment -> subsystem bucket, first match wins (checked
#: innermost frame outward). The names follow the perf ROADMAP item:
#: kernel (discrete-event loop + heap), bus (EventBus publish/validate
#: + trace recording), scheduler (DAG/task scheduling + pools), cloud
#: (provider/launch paths), serve (the control plane itself).
PROFILE_BUCKETS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("kernel", ("repro/simulation/kernel", "repro/simulation/resources",
                "repro/simulation/events", "repro/simulation/rng")),
    ("bus", ("repro/observability/bus", "repro/observability/metrics",
             "repro/observability/instrumentation",
             "repro/simulation/tracing")),
    ("scheduler", ("repro/spark/", "repro/cluster/")),
    ("cloud", ("repro/cloud/", "repro/core/", "repro/storage/")),
    ("serve", ("repro/api/", "repro/observability/serve_obs")),
)


def _bucket_for(filename: str) -> Optional[str]:
    path = filename.replace("\\", "/")
    for bucket, fragments in PROFILE_BUCKETS:
        if any(frag in path for frag in fragments):
            return bucket
    if "/repro/" in path:
        return "other"
    return None


class SamplingProfiler:
    """Statistical profiler for one target thread (off by default).

    A sampler thread wakes every ``interval_s``, grabs the target's
    stack via ``sys._current_frames()``, and attributes the sample to
    the innermost frame inside ``src/repro`` — labeled
    ``<bucket>:<function>`` (plus the stdlib leaf when the target is
    blocked inside one, e.g. ``serve:_drive/wait``). Sampling touches
    no locks of the profiled code and costs one dict lookup per tick,
    which is what keeps the enabled overhead inside the <10% admission
    p99 budget (measured by ``bench_serve_load``).
    """

    def __init__(self, interval_s: float = 0.005, top_n: int = 15
                 ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.top_n = top_n
        self.sample_count = 0
        self._counts: Dict[str, int] = {}
        self._bucket_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._target_id: Optional[int] = None
        self._saved_switch_interval: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, thread_id: Optional[int] = None) -> "SamplingProfiler":
        """Begin sampling ``thread_id`` (default: the calling thread)."""
        if self._thread is not None:
            return self
        self._target_id = (thread_id if thread_id is not None
                           else threading.get_ident())
        # Shrink the GIL switch interval while sampling. With the
        # default 5ms interval the sampler's pending GIL request is
        # granted at the target's next *voluntary* release — which is
        # disproportionately a C-extension call boundary (numpy), so
        # samples pile onto whichever Python frame issues those calls
        # (observed 30%+ over-attribution to the RNG refill). A 0.5ms
        # interval makes preemption at arbitrary bytecodes dominate the
        # handoff distribution, flattening the bias to profiler noise.
        self._saved_switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(min(self._saved_switch_interval, 0.0005))
        self._stop.clear()
        self._thread = threading.Thread(target=self._sample_loop,
                                        name="repro-profiler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        if self._saved_switch_interval is not None:
            sys.setswitchinterval(self._saved_switch_interval)
            self._saved_switch_interval = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            self._attribute(frame)

    def _attribute(self, frame: Any) -> None:
        leaf_name = frame.f_code.co_name
        label = None
        bucket = None
        walker = frame
        while walker is not None:
            b = _bucket_for(walker.f_code.co_filename)
            if b is not None:
                bucket = b
                func = walker.f_code.co_name
                label = (f"{b}:{func}" if walker is frame
                         else f"{b}:{func}/{leaf_name}")
                break
            walker = walker.f_back
        if label is None:
            bucket = "external"
            label = f"external:{leaf_name}"
        with self._lock:
            self.sample_count += 1
            self._counts[label] = self._counts.get(label, 0) + 1
            self._bucket_counts[bucket] = \
                self._bucket_counts.get(bucket, 0) + 1

    # -- reads -------------------------------------------------------------

    def top_frames(self, n: Optional[int] = None
                   ) -> List[Tuple[str, int]]:
        """Hottest frames, ``(label, samples)``, count-descending (ties
        by label so the ordering is stable)."""
        with self._lock:
            items = sorted(self._counts.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        return items[:n or self.top_n]

    def bucket_fractions(self) -> Dict[str, float]:
        with self._lock:
            total = self.sample_count
            if not total:
                return {}
            return {bucket: count / total
                    for bucket, count in self._bucket_counts.items()}

    def metrics(self, prefix: str = "profile.") -> Dict[str, float]:
        """Flat dotted metrics for RunRecord.metrics: total samples,
        per-bucket fractions, and the top-N frame fractions under
        sanitized keys."""
        import re
        out: Dict[str, float] = {f"{prefix}samples": float(
            self.sample_count)}
        for bucket, frac in sorted(self.bucket_fractions().items()):
            out[f"{prefix}bucket.{bucket}"] = round(frac, 6)
        total = max(1, self.sample_count)
        for label, count in self.top_frames():
            key = re.sub(r"[^a-zA-Z0-9_.]", "_", label.replace(":", "."))
            out[f"{prefix}frame.{key}"] = round(count / total, 6)
        return out


# ---------------------------------------------------------------------------
# Dashboard (stdlib-only HTML, RackMind dc_sim/api style)
# ---------------------------------------------------------------------------

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve — live dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 1.5rem; background: #101418; color: #d7dde4; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; color: #8ab4f8; }
  .grid { display: grid; grid-template-columns: 1fr 1fr; gap: 1rem; }
  table { border-collapse: collapse; width: 100%; font-size: 0.8rem; }
  td, th { border-bottom: 1px solid #2a3138; padding: 2px 8px;
           text-align: left; white-space: nowrap; }
  th { color: #9aa6b2; font-weight: 600; }
  .num { text-align: right; font-variant-numeric: tabular-nums; }
  #events { max-height: 24rem; overflow-y: auto; }
  .cat { color: #8ab4f8; } .warn { color: #f28b82; }
  footer { margin-top: 1rem; color: #667; font-size: 0.75rem; }
</style>
</head>
<body>
<h1>repro serve — live observability</h1>
<div class="grid">
  <section>
    <h2>metrics (/metrics, refreshed every 2 s)</h2>
    <table id="metrics"><thead>
      <tr><th>metric</th><th class="num">value</th></tr>
    </thead><tbody></tbody></table>
  </section>
  <section>
    <h2>events (/events, live SSE)</h2>
    <div id="events"><table><thead>
      <tr><th>t</th><th>category</th><th>name</th><th>fields</th></tr>
    </thead><tbody id="eventrows"></tbody></table></div>
  </section>
</div>
<footer>stdlib-only dashboard — data: <code>GET /metrics</code>
(Prometheus text) + <code>GET /events</code> (SSE).
Traces: <code>repro trace &lt;job_id&gt;</code>.</footer>
<script>
const WATCH = ["repro_serve_jobs_running", "repro_serve_jobs_queued",
  "repro_serve_jobs_submitted_total", "repro_serve_jobs_rejected_total",
  "repro_serve_jobs_failed", "repro_serve_breaker_state",
  "repro_serve_admission_latency_seconds_p50",
  "repro_serve_admission_latency_seconds_p99",
  "repro_serve_slo_availability_burn_rate",
  "repro_serve_slo_latency_burn_rate", "repro_uptime_seconds"];
async function refreshMetrics() {
  try {
    const text = await (await fetch("/metrics")).text();
    const values = {};
    for (const line of text.split("\\n")) {
      if (!line || line.startsWith("#")) continue;
      const sp = line.lastIndexOf(" ");
      values[line.slice(0, sp)] = line.slice(sp + 1);
    }
    const body = document.querySelector("#metrics tbody");
    body.innerHTML = "";
    for (const name of WATCH) {
      if (!(name in values)) continue;
      const row = body.insertRow();
      row.insertCell().textContent = name;
      const cell = row.insertCell();
      cell.className = "num";
      cell.textContent = values[name];
    }
  } catch (err) { /* server restarting; retry on the next tick */ }
}
refreshMetrics();
setInterval(refreshMetrics, 2000);
const rows = document.getElementById("eventrows");
const source = new EventSource("/events?replay=50");
source.onmessage = onEvent;
for (const cat of ["serve", "trace", "cluster", "executor", "dag",
                   "scheduler", "fault", "planner", "lambda", "vm"])
  source.addEventListener(cat, onEvent);
function onEvent(msg) {
  const ev = JSON.parse(msg.data);
  const row = rows.insertRow(0);
  row.insertCell().textContent = Number(ev.time).toFixed(3);
  const cat = row.insertCell();
  cat.textContent = ev.category; cat.className = "cat";
  row.insertCell().textContent = ev.name;
  row.insertCell().textContent = JSON.stringify(ev.fields);
  while (rows.rows.length > 200) rows.deleteRow(-1);
}
</script>
</body>
</html>
"""
