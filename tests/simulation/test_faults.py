"""Unit tests for the declarative fault-injection vocabulary."""

import pytest

from repro.simulation import Environment, RandomStreams
from repro.simulation.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    match_executor,
    match_storage,
    match_vm,
)


# ---------------------------------------------------------------------------
# FaultSpec validation
# ---------------------------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor_strike", at_s=1.0)


def test_exactly_one_trigger_required():
    with pytest.raises(ValueError, match="exactly one trigger"):
        FaultSpec(kind="executor_kill")
    with pytest.raises(ValueError, match="exactly one trigger"):
        FaultSpec(kind="executor_kill", at_s=1.0,
                  on_event="tasks_finished:3")


def test_on_event_format_checked():
    FaultSpec(kind="executor_kill", on_event="tasks_finished:4")
    for bad in ("tasks_finished", "tasks_finished:0", "bogus:3",
                "tasks_finished:x"):
        with pytest.raises(ValueError, match="on_event"):
            FaultSpec(kind="executor_kill", on_event=bad)


def test_invoke_failure_is_probabilistic():
    FaultSpec(kind="lambda_invoke_failure", probability=0.5)
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(kind="lambda_invoke_failure")
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(kind="lambda_invoke_failure", probability=1.5)
    with pytest.raises(ValueError, match="probabilistic"):
        FaultSpec(kind="lambda_invoke_failure", probability=0.5,
                  on_event="tasks_finished:1")
    # ...and probability applies to nothing else.
    with pytest.raises(ValueError, match="probability only"):
        FaultSpec(kind="executor_kill", at_s=1.0, probability=0.5)


def test_factor_limit_and_count_rules():
    with pytest.raises(ValueError, match="factor"):
        FaultSpec(kind="storage_brownout", at_s=1.0)
    with pytest.raises(ValueError, match="factor"):
        FaultSpec(kind="straggler", at_s=1.0, factor=0.5)
    with pytest.raises(ValueError, match="factor does not apply"):
        FaultSpec(kind="executor_kill", at_s=1.0, factor=2.0)
    with pytest.raises(ValueError, match="limit"):
        FaultSpec(kind="lambda_throttle", at_s=1.0)
    with pytest.raises(ValueError, match="limit only"):
        FaultSpec(kind="executor_kill", at_s=1.0, limit=3)
    with pytest.raises(ValueError, match="count"):
        FaultSpec(kind="lambda_throttle", at_s=1.0, limit=0, count=2)


# ---------------------------------------------------------------------------
# Serialization + plans
# ---------------------------------------------------------------------------

def test_spec_round_trips_through_dict():
    spec = FaultSpec(kind="straggler", at_s=10.0, target="lambda",
                     count=2, duration_s=5.0, factor=3.0)
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultSpec field"):
        FaultSpec.from_dict({"kind": "executor_kill", "at_s": 1.0,
                             "severity": "high"})
    with pytest.raises(ValueError, match="needs a 'kind'"):
        FaultSpec.from_dict({"at_s": 1.0})


def test_plan_coerce_variants():
    spec = FaultSpec(kind="executor_kill", at_s=1.0)
    assert FaultPlan.coerce(None) == FaultPlan()
    assert not FaultPlan.coerce(None)
    plan = FaultPlan.coerce([spec, {"kind": "executor_kill", "at_s": 2.0}])
    assert len(plan) == 2 and plan.faults[0] is spec
    assert FaultPlan.coerce(plan) is plan
    with pytest.raises(TypeError, match="FaultSpec or mapping"):
        FaultPlan.coerce(["executor_kill"])


# ---------------------------------------------------------------------------
# Target selectors (duck-typed stubs)
# ---------------------------------------------------------------------------

class _Kind:
    def __init__(self, value):
        self.value = value


class _StubExecutor:
    def __init__(self, executor_id, kind="vm", vm=None):
        self.executor_id = executor_id
        self.kind = _Kind(kind)
        self.vm = vm


class _StubVM:
    def __init__(self, name, spot=False):
        self.name = name
        if spot:
            self.mean_revocation_s = 600.0


class _StubStorage:
    def __init__(self, name):
        self.name = name
        self.factor = 1.0

    def degrade(self, factor):
        self.factor = factor

    def restore(self):
        self.factor = 1.0


def test_match_executor():
    vm = _StubVM("vm-3")
    ex_vm = _StubExecutor("vm-exec-1", "vm", vm=vm)
    ex_la = _StubExecutor("la-exec-2", "lambda")
    assert match_executor("any", ex_vm) and match_executor("*", ex_la)
    assert match_executor("vm", ex_vm) and not match_executor("vm", ex_la)
    assert match_executor("lambda", ex_la)
    assert match_executor("executor:vm-exec-*", ex_vm)
    assert not match_executor("executor:la-*", ex_vm)
    assert match_executor("vm:vm-3", ex_vm)
    assert not match_executor("vm:vm-3", ex_la)  # lambdas have no VM
    assert not match_executor("bogus", ex_vm)


def test_match_vm_and_storage():
    plain, spot = _StubVM("vm-0"), _StubVM("spot-1", spot=True)
    assert match_vm("any", plain)
    assert match_vm("spot", spot) and not match_vm("spot", plain)
    assert match_vm("vm:spot-*", spot) and not match_vm("vm:spot-*", plain)
    hdfs = _StubStorage("hdfs")
    assert match_storage("any", hdfs)
    assert match_storage("storage:hdfs", hdfs)
    assert not match_storage("storage:s3", hdfs)


# ---------------------------------------------------------------------------
# Injector mechanics (against duck-typed stubs)
# ---------------------------------------------------------------------------

class _StubScheduler:
    def __init__(self, executors):
        self.observers = []
        self._executors = executors
        self.killed = []

    @property
    def registered_executors(self):
        return list(self._executors)

    def decommission_executor(self, executor, graceful=True, reason=""):
        self.killed.append((executor.executor_id, graceful, reason))


class _StubProvider:
    def __init__(self):
        self.concurrency_limit = None
        self.invoke_fault = None
        self.running_vms = []


def _injector(env, plan, scheduler=None, provider=None, storages=()):
    inj = FaultInjector(env, RandomStreams(7), plan)
    inj.attach(scheduler=scheduler, provider=provider, storages=storages)
    return inj


def test_time_trigger_fires_at_t():
    env = Environment()
    scheduler = _StubScheduler([_StubExecutor("vm-exec-0")])
    _injector(env, [FaultSpec(kind="executor_kill", at_s=5.0)],
              scheduler=scheduler)
    env.run(until=4.9)
    assert scheduler.killed == []
    env.run(until=5.1)
    assert scheduler.killed == [("vm-exec-0", False,
                                 "fault: executor_kill")]


def test_event_trigger_fires_on_counter():
    env = Environment()
    scheduler = _StubScheduler([_StubExecutor("vm-exec-0")])
    inj = _injector(
        env, [FaultSpec(kind="executor_kill",
                        on_event="tasks_finished:3")],
        scheduler=scheduler)
    assert inj in scheduler.observers
    inj.on_task_finished(None)
    inj.on_task_finished(None)
    assert scheduler.killed == []
    inj.on_task_finished(None)
    assert len(scheduler.killed) == 1


def test_victim_choice_is_seeded_and_deterministic():
    def victims():
        env = Environment()
        executors = [_StubExecutor(f"vm-exec-{i}") for i in range(8)]
        scheduler = _StubScheduler(executors)
        _injector(env, [FaultSpec(kind="executor_kill", at_s=1.0,
                                  count=3)], scheduler=scheduler)
        env.run(until=2.0)
        return [k[0] for k in scheduler.killed]

    first, second = victims(), victims()
    assert first == second and len(first) == 3


def test_throttle_sets_and_lifts_concurrency_limit():
    env = Environment()
    provider = _StubProvider()
    _injector(env, [FaultSpec(kind="lambda_throttle", at_s=1.0,
                              duration_s=4.0, limit=2)],
              provider=provider)
    env.run(until=2.0)
    assert provider.concurrency_limit == 2
    env.run(until=6.0)
    assert provider.concurrency_limit is None


def test_brownout_degrades_and_restores_matching_storage():
    env = Environment()
    hdfs, s3 = _StubStorage("hdfs"), _StubStorage("s3")
    _injector(env, [FaultSpec(kind="storage_brownout", at_s=1.0,
                              duration_s=2.0, factor=4.0,
                              target="storage:hdfs")],
              storages=[hdfs, s3])
    env.run(until=1.5)
    assert hdfs.factor == 4.0 and s3.factor == 1.0
    env.run(until=4.0)
    assert hdfs.factor == 1.0


def test_straggler_slows_and_restores_executor():
    env = Environment()
    ex = _StubExecutor("vm-exec-0")
    ex.cpu_slowdown = 1.0
    scheduler = _StubScheduler([ex])
    _injector(env, [FaultSpec(kind="straggler", at_s=1.0, duration_s=3.0,
                              factor=2.5)], scheduler=scheduler)
    env.run(until=2.0)
    assert ex.cpu_slowdown == 2.5
    env.run(until=5.0)
    assert ex.cpu_slowdown == 1.0


def test_invoke_gate_draws_from_seeded_stream():
    env = Environment()
    provider = _StubProvider()
    inj = _injector(env, [FaultSpec(kind="lambda_invoke_failure",
                                    probability=1.0)],
                    provider=provider)
    error = provider.invoke_fault()
    assert error is not None and "injected" in str(error)
    assert inj.injected and inj.injected[0]["event"] == "invoke_failed"
    # Windowed variant: outside the window nothing fires.
    env2 = Environment()
    provider2 = _StubProvider()
    _injector(env2, [FaultSpec(kind="lambda_invoke_failure",
                               probability=1.0, at_s=10.0,
                               duration_s=5.0)],
              provider=provider2)
    assert provider2.invoke_fault() is None  # t=0 < window start
