"""Ablation: bridging a core shortfall — Lambdas vs standby burstables.

§2 discusses BurScale as complementary: it keeps *standby burstable VMs*
to absorb overload while regular VMs boot. This ablation runs the same
under-provisioned job three ways:

- ``splitserve`` — bridge the shortfall with warm Lambdas (this paper);
- ``burscale-flush`` — standby t2 burstables with healthy CPU credits;
- ``burscale-broke`` — the same standbys after earlier spikes drained
  their credits (BurScale's "managing token state" risk, §2);

and adds the standing cost of keeping the standbys up around the clock,
which Lambdas do not pay.
"""

from repro.analysis.reporting import format_table
from repro.cloud import CloudProvider
from repro.cloud.burstable import BURSTABLE_CATALOGUE, BurstableVM
from repro.cloud.constants import SECONDS_PER_HOUR
from repro.cloud.pricing import BillingMeter
from repro.core import SplitServe
from repro.simulation import Environment, RandomStreams
from repro.workloads import SyntheticWorkload
from benchmarks.conftest import run_once

#: 16-core job, 4 cores free; 12 must be bridged.
WORKLOAD = dict(stages=4, core_seconds_per_stage=320.0,
                shuffle_bytes_per_boundary=150 * 1024 * 1024,
                required_cores=16, available_cores=4)
#: Standby pool: six 2-core t2.large.
STANDBY_COUNT = 6


def _base_cluster(seed=0):
    env = Environment()
    rng = RandomStreams(seed)
    provider = CloudProvider(env, rng)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    master.allocate_cores(master.itype.vcpus)
    ss = SplitServe(env, provider, rng, master_vm=master)
    worker = provider.request_vm("m4.4xlarge", already_running=True)
    worker.allocate_cores(worker.itype.vcpus - 4)
    return env, provider, ss


def run_splitserve(seed=0):
    env, provider, ss = _base_cluster(seed)
    workload = SyntheticWorkload(**WORKLOAD)
    result = ss.run_job(workload.build(16), required_cores=16,
                        max_vm_cores=4)
    return result.duration, provider.meter.breakdown().get("lambda", 0.0)


def run_burscale(credits, seed=0):
    env, provider, ss = _base_cluster(seed)
    standbys = []
    for i in range(STANDBY_COUNT):
        vm = BurstableVM.launch(env, f"standby-{i}", "t2.large",
                                provider.rng, already_running=True,
                                initial_credits=credits)
        provider.vms.append(vm)
        standbys.append(vm)
    workload = SyntheticWorkload(**WORKLOAD)
    # The launching facility naturally picks up the standby cores — no
    # Lambdas needed (max_vm_cores unrestricted).
    result = ss.run_job(workload.build(16), required_cores=16)
    # Standby economics: the pool exists around the clock; amortize one
    # hour of standby against this job.
    itype, _spec = BURSTABLE_CATALOGUE["t2.large"]
    standby_cost = STANDBY_COUNT * itype.price_per_hour
    return result.duration, standby_cost


def run_all():
    ss_time, ss_lambda_cost = run_splitserve()
    flush_time, standby_cost = run_burscale(credits=60)
    broke_time, _ = run_burscale(credits=0)
    return {
        "splitserve (12 Lambdas)": (ss_time, ss_lambda_cost),
        "burscale, credits flush": (flush_time, standby_cost),
        "burscale, credits drained": (broke_time, standby_cost),
    }


def test_ablation_burstable_bridging(benchmark, emit):
    results = run_once(benchmark, run_all)
    rows = [[name, f"{t:.1f}", f"${c:.4f}"]
            for name, (t, c) in results.items()]
    emit("Ablation — bridging 12 missing cores: Lambdas vs standby "
         "burstables",
         format_table(["bridge", "time (s)", "bridge cost (job/hour)"],
                      rows))

    ss_time, ss_cost = results["splitserve (12 Lambdas)"]
    flush_time, standby_cost = results["burscale, credits flush"]
    broke_time, _ = results["burscale, credits drained"]
    # With credits, standby burstables are a fine bridge (the paper calls
    # the approaches complementary).
    assert flush_time < 1.4 * ss_time
    # Without credits they collapse toward the 30% baseline.
    assert broke_time > 1.5 * flush_time
    # And the standing pool costs more per hour than this job's Lambdas.
    assert standby_cost > ss_cost
