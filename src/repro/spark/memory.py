"""The JVM memory/GC pressure model.

§4.2 of the paper: *"the smaller memory on Lambdas results in more
frequent invocations of the JVM garbage collector (GC), which in turn
hurts the overall workload performance"* — and GC overhead *grows with
time* on small heaps ("garbage collection may begin posing significant
overheads after only a few minutes of execution", §3). Those two effects
are what make segueing off Lambdas worthwhile for long jobs, so the model
captures both:

- **pressure slowdown**: when a task's working set exceeds the usable
  heap, spilling + GC multiplies service time by
  ``1 + coeff * (pressure - 1)^exp``;
- **aging slowdown**: on heaps below the comfortable threshold, each
  minute of continuous executor uptime adds a small multiplicative
  overhead (fragmentation, promotion churn), capped so the model stays
  sane for pathological inputs.
"""

from __future__ import annotations

from repro.cloud.constants import (
    EXECUTOR_USABLE_MEMORY_FRACTION,
    GC_AGING_PER_MINUTE,
    GC_PRESSURE_COEFF,
    GC_PRESSURE_EXPONENT,
)

#: Heaps at or above this are "comfortable": no aging penalty. Lambda
#: executors (<= 3 GB) are always below it; typical VM executors above.
COMFORTABLE_HEAP_BYTES = 4 * 1024 ** 3

#: Upper bound on the combined slowdown factor.
MAX_SLOWDOWN = 10.0


def usable_heap_bytes(executor_memory_bytes: float) -> float:
    """Heap actually available to task working sets."""
    if executor_memory_bytes <= 0:
        raise ValueError(
            f"executor memory must be positive, got {executor_memory_bytes}")
    return executor_memory_bytes * EXECUTOR_USABLE_MEMORY_FRACTION


def pressure_slowdown(working_set_bytes: float, executor_memory_bytes: float) -> float:
    """Multiplier from memory pressure alone (1.0 when the set fits)."""
    if working_set_bytes < 0:
        raise ValueError(f"working set must be non-negative, got {working_set_bytes}")
    heap = usable_heap_bytes(executor_memory_bytes)
    pressure = working_set_bytes / heap
    if pressure <= 1.0:
        return 1.0
    return min(MAX_SLOWDOWN,
               1.0 + GC_PRESSURE_COEFF * (pressure - 1.0) ** GC_PRESSURE_EXPONENT)


def aging_slowdown(executor_memory_bytes: float, uptime_seconds: float) -> float:
    """Multiplier from sustained execution on a tight heap."""
    if uptime_seconds < 0:
        raise ValueError(f"uptime must be non-negative, got {uptime_seconds}")
    if executor_memory_bytes >= COMFORTABLE_HEAP_BYTES:
        return 1.0
    # Scale the penalty by how tight the heap is relative to comfortable.
    tightness = 1.0 - executor_memory_bytes / COMFORTABLE_HEAP_BYTES
    minutes = uptime_seconds / 60.0
    return min(MAX_SLOWDOWN, 1.0 + GC_AGING_PER_MINUTE * tightness * minutes)


def gc_slowdown(working_set_bytes: float, executor_memory_bytes: float,
                uptime_seconds: float) -> float:
    """Combined service-time multiplier for one task."""
    return min(MAX_SLOWDOWN,
               pressure_slowdown(working_set_bytes, executor_memory_bytes)
               * aging_slowdown(executor_memory_bytes, uptime_seconds))
