"""Tests for per-stage job summaries."""

import pytest

from tests.spark.helpers import MiniCluster, two_stage_rdd


def test_stage_summaries_ordered_and_complete():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    rdd = two_stage_rdd(cluster.builder, maps=4, reduces=4,
                        map_seconds=10.0, reduce_seconds=5.0,
                        shuffle_bytes=0)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=job.done)
    rows = job.stage_summaries()
    assert len(rows) == 2
    map_row, result_row = rows
    assert "map" in map_row["stage"]
    assert "result" in result_row["stage"]
    assert map_row["completed_at"] <= result_row["submitted_at"]
    assert map_row["duration"] == pytest.approx(10.0, rel=0.1)
    assert result_row["duration"] == pytest.approx(5.0, rel=0.1)
    assert all(r["attempts"] == 1 for r in rows)


def test_stage_summaries_count_resubmissions():
    cluster = MiniCluster()
    executors = cluster.vm_executors(2)
    rdd = two_stage_rdd(cluster.builder, maps=2, reduces=2,
                        map_seconds=10.0, reduce_seconds=30.0,
                        shuffle_bytes=1024)
    job = cluster.driver.submit(rdd)

    def killer(env):
        yield env.timeout(15)
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="rollback trigger")

    cluster.env.process(killer(cluster.env))
    cluster.env.run(until=job.done)
    rows = job.stage_summaries()
    map_row = next(r for r in rows if "map" in r["stage"])
    assert map_row["attempts"] >= 2  # the rollback re-ran it
