"""Named-policy registry: one lookup for every pluggable policy.

Two policy families exist in the repo and, before this module, each was
wired differently: the §4.1 k·σ provisioning policies were built inline
from a ``k`` float, while the planner's split policy would have needed
its own flag plumbing. Here both are registered under stable names and
constructed the same way — from a name plus keyword params — whether the
caller is a CLI flag (``repro stream --policy 2sigma``), an
:class:`~repro.experiments.spec.ExperimentSpec` ``extra``/``policy``
payload, or a benchmark.

A policy's *kind* says where it plugs in:

``provisioning``
    ``cores_at(DemandPoint) -> int`` objects (the
    :class:`~repro.core.autoscaler.ProvisioningPolicy` protocol)
    consumed by :class:`~repro.core.stream.JobStreamSimulator` and
    :class:`~repro.core.autoscaler.InterJobAutoscaler`.
``split``
    ``decide(workload, free_cores) -> SplitDecision`` objects (the
    :class:`~repro.planner.policy.PlannerPolicy` protocol) consulted by
    :class:`~repro.cluster.apps.AppManager` at admission.

Callers pass ``expect_kind`` so a spec naming a provisioning policy
where a split policy belongs fails loudly instead of duck-typing its
way into nonsense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

#: Policy kinds.
PROVISIONING = "provisioning"
SPLIT = "split"
POLICY_KINDS = (PROVISIONING, SPLIT)


@dataclass(frozen=True)
class PolicyEntry:
    """One registered policy: how to build it and where it plugs in."""

    name: str
    kind: str
    factory: Callable[..., Any]
    description: str


_REGISTRY: Dict[str, PolicyEntry] = {}


def register_policy(name: str, kind: str, factory: Callable[..., Any],
                    description: str) -> None:
    """Register ``factory`` under ``name``. Re-registering a name is an
    error — policies are part of spec hashes and must stay stable."""
    if kind not in POLICY_KINDS:
        raise ValueError(f"policy kind must be one of {POLICY_KINDS}, "
                         f"got {kind!r}")
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[name] = PolicyEntry(name, kind, factory, description)


def known_policies(kind: Optional[str] = None) -> Tuple[str, ...]:
    """Registered policy names (optionally one kind), sorted."""
    return tuple(sorted(name for name, entry in _REGISTRY.items()
                        if kind is None or entry.kind == kind))


def policy_entry(name: str) -> PolicyEntry:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown policy {name!r}; known: {', '.join(known_policies())}")
    return _REGISTRY[name]


def make_policy(name: str, expect_kind: Optional[str] = None,
                **params: Any) -> Any:
    """Build the policy registered as ``name`` with ``params``.

    ``expect_kind`` asserts where the caller intends to plug the policy
    in; a mismatch raises instead of returning an object with the wrong
    interface.
    """
    entry = policy_entry(name)
    if expect_kind is not None and entry.kind != expect_kind:
        raise ValueError(
            f"policy {name!r} is a {entry.kind} policy, not {expect_kind}")
    return entry.factory(**params)


# ---------------------------------------------------------------------------
# Built-in provisioning policies (§4.1: provision m(t) + k·σ(t)).
# ---------------------------------------------------------------------------

def _ksigma(k: float = 0.0):
    from repro.core.autoscaler import ProvisioningPolicy
    return ProvisioningPolicy(k=float(k))


def _fixed_sigma(k: float) -> Callable[..., Any]:
    def factory():
        return _ksigma(k)
    return factory


register_policy("ksigma", PROVISIONING, _ksigma,
                "provision m(t) + k*sigma(t); pass k explicitly")
register_policy("mean", PROVISIONING, _fixed_sigma(0.0),
                "provision exactly m(t) (k=0)")
for _k in (1, 2, 3):
    register_policy(f"{_k}sigma", PROVISIONING, _fixed_sigma(float(_k)),
                    f"provision m(t) + {_k}*sigma(t)")


# ---------------------------------------------------------------------------
# Built-in split policy (the planner, imported lazily so loading the
# registry never drags the profiling machinery in).
# ---------------------------------------------------------------------------

def _planner(**params: Any):
    from repro.planner.policy import PlannerPolicy
    return PlannerPolicy(**params)


register_policy("planner", SPLIT, _planner,
                "model-based FaaS/IaaS split chosen per job at admission")
