"""Ablation: the segue design choices of §4.3.

Two sweeps:

1. **Drain vs kill.** SplitServe gracefully drains Lambda executors
   ("simply stops directing additional tasks") instead of killing them,
   because a kill marks tasks Failed and, with executor-local shuffle
   state, triggers execution rollback. We run the same hybrid job and
   decommission the Lambda executors mid-flight both ways.

2. **The spark.lambda.executor.timeout knob.** Sweeping the threshold
   shows the trade: small values drain Lambdas early (cheap, but work
   shifts to the few VM cores -> slower); large values keep Lambdas
   longer (faster until the GC/cost cliff).

Both experiments run as ``custom:`` ExperimentSpecs through the
ExperimentRunner: the mid-flight decommission setup is not a §5.1
scenario, so the spec points at the module-level experiment functions
below, keeping each (policy, knob) point declarative and fan-out-able.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.cloud import CloudProvider
from repro.core import SplitServe
from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.simulation import Environment, RandomStreams
from repro.spark import HostKind
from repro.workloads import SyntheticWorkload
from benchmarks.conftest import run_once

WORKLOAD = dict(stages=4, core_seconds_per_stage=320.0,
                shuffle_bytes_per_boundary=200 * 1024 * 1024,
                required_cores=8, available_cores=2)

_HERE = "custom:benchmarks.bench_ablation_segue_policy"
DECOMMISSION = f"{_HERE}:decommission_experiment"
TIMEOUT_KNOB = f"{_HERE}:timeout_experiment"


def build_ss(seed=0, conf=None, worker_cores=2):
    env = Environment()
    rng = RandomStreams(seed)
    provider = CloudProvider(env, rng)
    master = provider.request_vm("m4.xlarge", name="master",
                                 already_running=True)
    master.allocate_cores(master.itype.vcpus)
    ss = SplitServe(env, provider, rng, conf=conf, master_vm=master)
    worker = provider.request_vm("m4.4xlarge", already_running=True)
    worker.allocate_cores(worker.itype.vcpus - worker_cores)
    return env, provider, ss


def _submit(ss, spec):
    workload = SyntheticWorkload(**dict(spec.workload_params))
    wspec = workload.spec
    return ss.submit_job(workload.build(wspec.required_cores),
                         required_cores=wspec.required_cores,
                         max_vm_cores=wspec.available_cores), workload


def decommission_experiment(spec):
    """Custom experiment: drain (or kill) all Lambda executors at
    ``extra["at_s"]`` and measure the recovery penalty."""
    params = dict(spec.extra)
    graceful, at_s = bool(params["graceful"]), float(params["at_s"])
    env, provider, ss = build_ss(seed=spec.seed, conf=spec.conf())
    run, workload = _submit(ss, spec)

    def decommission(env):
        yield env.timeout(at_s)
        for executor in list(ss.driver.executors_of_kind(HostKind.LAMBDA)):
            ss.driver.task_scheduler.decommission_executor(
                executor, graceful=graceful, reason="ablation")

    env.process(decommission(env))
    env.run(until=run.job.done)
    ss.finish_run(run)
    return {"workload": workload.name,
            "duration_s": run.job.duration,
            "cost": provider.meter.total(),
            "cost_breakdown": provider.meter.breakdown(),
            "metrics": {"failed_tasks": len(run.job.failed_attempts)}}


def timeout_experiment(spec):
    """Custom experiment: one spark.lambda.executor.timeout setting
    (carried in the spec's conf_overrides)."""
    env, provider, ss = build_ss(seed=spec.seed, conf=spec.conf())
    run, workload = _submit(ss, spec)
    env.run(until=run.job.done)
    ss.finish_run(run)
    breakdown = provider.meter.breakdown()
    return {"workload": workload.name,
            "duration_s": run.job.duration,
            "cost": provider.meter.total(),
            "cost_breakdown": breakdown,
            "metrics": {"lambda_cost": breakdown.get("lambda", 0.0)}}


def run_decommission(graceful: bool, at_s: float = 25.0, runner=None):
    runner = runner if runner is not None else ExperimentRunner()
    spec = ExperimentSpec(workload="synthetic", scenario=DECOMMISSION,
                          workload_params=WORKLOAD,
                          extra={"graceful": graceful, "at_s": at_s})
    [record] = runner.run([spec], keep_errors=False)
    return record.duration_s, int(record.metrics["failed_tasks"])


def run_timeout_sweep(runner=None):
    runner = runner if runner is not None else ExperimentRunner()
    timeouts = (20.0, 60.0, 120.0, None)
    specs = [ExperimentSpec(
        workload="synthetic", scenario=TIMEOUT_KNOB,
        workload_params=WORKLOAD,
        conf_overrides={"spark.lambda.executor.timeout": timeout})
        for timeout in timeouts]
    records = runner.run(specs, keep_errors=False)
    return {timeout: (record.duration_s, record.metrics["lambda_cost"])
            for timeout, record in zip(timeouts, records)}


def test_ablation_drain_vs_kill(benchmark, emit):
    (drain_t, drain_killed), (kill_t, kill_killed) = run_once(
        benchmark, lambda: (run_decommission(True),
                            run_decommission(False)))
    emit("Ablation — graceful drain vs hard kill of Lambda executors",
         format_table(["policy", "time (s)", "failed tasks"],
                      [["drain (SplitServe)", f"{drain_t:.1f}", drain_killed],
                       ["kill", f"{kill_t:.1f}", kill_killed]]))
    # Draining never fails a task; killing fails the in-flight ones and
    # costs recovery time.
    assert drain_killed == 0
    assert kill_killed > 0
    assert kill_t >= drain_t


def test_ablation_lambda_timeout_knob(benchmark, emit):
    results = run_once(benchmark, run_timeout_sweep)
    rows = [[("none" if k is None else f"{k:.0f}s"), f"{t:.1f}",
             f"${c:.4f}"] for k, (t, c) in results.items()]
    emit("Ablation — spark.lambda.executor.timeout sweep",
         format_table(["timeout", "time (s)", "lambda cost"], rows))
    # Earlier drains mean less Lambda spend but longer runs; the knob
    # spans that trade monotonically at the extremes.
    assert results[20.0][1] <= results[None][1]
    assert results[20.0][0] >= results[None][0]


@pytest.mark.smoke
def test_smoke_one_timeout_point():
    runner = ExperimentRunner(workers=1, cache=False)
    spec = ExperimentSpec(
        workload="synthetic", scenario=TIMEOUT_KNOB,
        workload_params=dict(stages=2, core_seconds_per_stage=16.0,
                             shuffle_bytes_per_boundary=1024.0 * 1024,
                             required_cores=4, available_cores=2),
        conf_overrides={"spark.lambda.executor.timeout": 60.0})
    [record] = runner.run([spec])
    assert record.error is None
    assert record.duration_s > 0
