"""The unified result schema: one :class:`RunRecord` per executed spec.

Every experiment — a §5.1 scenario, a Figure 4 profiling point, the
day-of-jobs stream, a custom ablation — reduces to the same record:
the spec that produced it, wall-clock and simulated time, dollar cost,
failure status, per-executor task counts and aggregate task metrics.
Records round-trip through ``to_dict``/``from_dict`` and serialize one
per line with :func:`write_jsonl`/:func:`read_jsonl`. On disk each line
is a versioned :class:`~repro.api.schemas.ResponseEnvelope`
(``{"schema_version": ..., "kind": "run_record", "data": ...}`` — the
same shape every API/CLI JSON surface uses); pre-envelope files (raw
RunRecord rows) still read, with a :class:`DeprecationWarning`, for one
release.

``wall_time_s`` is the only machine-dependent field; use
:meth:`RunRecord.canonical` when comparing records for determinism.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.experiments.spec import ExperimentSpec


@dataclass
class RunRecord:
    """The outcome of executing one :class:`ExperimentSpec`."""

    spec: ExperimentSpec
    #: Display label of the workload actually run (e.g. ``pagerank-25000``).
    workload: str = ""
    #: Simulated job duration in seconds (NaN if the job failed).
    duration_s: float = float("nan")
    #: Marginal dollar cost of the run (§5.1 accounting).
    cost: float = 0.0
    #: Real elapsed seconds spent executing the spec (machine-dependent).
    wall_time_s: float = 0.0
    #: Simulated failure (e.g. Qubole's Q5 fatal error), per the model.
    failed: bool = False
    failure_reason: Optional[str] = None
    #: Harness-level Python error (traceback), distinct from ``failed``.
    error: Optional[str] = None
    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    tasks: Optional[int] = None
    tasks_by_kind: Dict[str, int] = field(default_factory=dict)
    failed_attempts: Optional[int] = None
    #: Aggregate metrics (per-executor-kind task seconds, stream stats,
    #: ablation-specific numbers, ...).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: True when the record was served from the on-disk cache (transient;
    #: not serialized).
    cached: bool = False

    @property
    def scenario(self) -> str:
        return self.spec.scenario

    @property
    def seed(self) -> int:
        return self.spec.seed

    def label(self, workload_spec=None) -> str:
        """Figure-style label (``SS 8 VM / 24 La Segue``) where one
        exists for the scenario; the spec's own names otherwise."""
        from repro.core.scenarios import SCENARIO_LABELS
        template = SCENARIO_LABELS.get(self.spec.scenario)
        if template is None or workload_spec is None:
            return f"{self.workload or self.spec.workload} {self.spec.scenario}"
        return template.format(R=workload_spec.required_cores,
                               r=workload_spec.available_cores,
                               d=workload_spec.shortfall_cores)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "scenario": self.spec.scenario,
            "workload": self.workload or self.spec.workload,
            "duration_s": self.duration_s,
            "cost": self.cost,
            "wall_time_s": self.wall_time_s,
            "failed": self.failed,
            "failure_reason": self.failure_reason,
            "cost_breakdown": dict(self.cost_breakdown),
            "metrics": dict(self.metrics),
        }
        if self.error is not None:
            out["error"] = self.error
        # Job internals exist only for runs that produced a finished job,
        # matching the historical ScenarioResult.to_dict shape.
        if not self.failed and self.tasks is not None:
            out["tasks"] = self.tasks
            out["tasks_by_kind"] = dict(self.tasks_by_kind)
            out["failed_attempts"] = self.failed_attempts
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        spec_data = data.get("spec")
        if spec_data is not None:
            spec = ExperimentSpec.from_dict(spec_data)
        else:  # minimal legacy payloads: scenario/workload at top level
            spec = ExperimentSpec(workload=data.get("workload", "unknown"),
                                  scenario=data["scenario"])
        return cls(
            spec=spec,
            workload=data.get("workload", spec.workload),
            duration_s=data.get("duration_s", float("nan")),
            cost=data.get("cost", 0.0),
            wall_time_s=data.get("wall_time_s", 0.0),
            failed=data.get("failed", False),
            failure_reason=data.get("failure_reason"),
            error=data.get("error"),
            cost_breakdown=dict(data.get("cost_breakdown") or {}),
            tasks=data.get("tasks"),
            tasks_by_kind=dict(data.get("tasks_by_kind") or {}),
            failed_attempts=data.get("failed_attempts"),
            metrics=dict(data.get("metrics") or {}),
        )

    def canonical(self) -> Dict[str, Any]:
        """The record minus its machine-dependent fields — what must be
        bit-identical between serial and parallel execution."""
        out = self.to_dict()
        out.pop("wall_time_s")
        return out


def write_jsonl(records: Iterable[RunRecord], path: str) -> int:
    """Write records one-per-line (enveloped, deterministic key order);
    returns the number written."""
    from repro.api import schemas
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(schemas.envelope(schemas.KIND_RUN_RECORD,
                                      record.to_dict()).dumps() + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[RunRecord]:
    """Read records written by :func:`write_jsonl` (either enveloped
    rows or, with a deprecation warning, pre-envelope raw rows)."""
    from repro.api import schemas
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(
                    schemas.unwrap_record(json.loads(line))))
    return records
