"""Spark-style configuration.

A string-keyed configuration object mirroring ``SparkConf``, including the
knob SplitServe adds: ``spark.lambda.executor.timeout`` (§4.3 — the
threshold after which no new tasks are directed to a Lambda-based
executor, triggering its graceful decommission).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

#: Defaults mirror Spark 2.1 where a matching setting exists.
DEFAULTS: Dict[str, Any] = {
    # Scheduling.
    "spark.task.maxFailures": 4,
    "spark.locality.wait": 3.0,  # seconds; Spark default "3s"
    "spark.stage.maxConsecutiveAttempts": 4,
    # Executors (one core per executor throughout the paper, §5.1).
    "spark.executor.cores": 1,
    "spark.executor.memory.vm": 8 * 1024 ** 3,  # bytes per VM executor
    # Dynamic allocation.
    "spark.dynamicAllocation.enabled": True,
    "spark.dynamicAllocation.schedulerBacklogTimeout": 1.0,
    "spark.dynamicAllocation.sustainedSchedulerBacklogTimeout": 1.0,
    "spark.dynamicAllocation.executorIdleTimeout": 60.0,
    # SplitServe's knob (§4.3): Lambda executors running longer than this
    # stop receiving new tasks and drain. None disables segueing.
    "spark.lambda.executor.timeout": None,
    # Blacklisting (Spark's bad-node defence): an executor accumulating
    # this many task failures stops receiving tasks.
    "spark.blacklist.enabled": False,
    "spark.blacklist.maxFailedTasksPerExecutor": 2,
    # Speculative execution (Spark's straggler mitigation): once the
    # quantile of a stage's tasks has finished, re-launch copies of tasks
    # running longer than the multiplier times the median duration.
    "spark.speculation": False,
    "spark.speculation.quantile": 0.75,
    "spark.speculation.multiplier": 1.5,
    "spark.speculation.interval": 1.0,
    # Simulation-model knobs.
    "spark.sim.task.jitter": 0.05,  # +/-5% uniform service-time jitter
    "spark.sim.shuffle.fetch.parallelism": 5,  # like spark.reducer.maxReqsInFlight spirit
}


class SparkConf:
    """A copy-on-write view over :data:`DEFAULTS` plus user overrides."""

    def __init__(self, overrides: Dict[str, Any] = None) -> None:
        self._overrides: Dict[str, Any] = dict(overrides or {})
        unknown = set(self._overrides) - set(DEFAULTS)
        if unknown:
            raise KeyError(f"unknown configuration keys: {sorted(unknown)}")

    def get(self, key: str) -> Any:
        if key in self._overrides:
            return self._overrides[key]
        try:
            return DEFAULTS[key]
        except KeyError:
            raise KeyError(f"unknown configuration key {key!r}") from None

    def set(self, key: str, value: Any) -> "SparkConf":
        """Return a new conf with ``key`` overridden (conf is immutable)."""
        if key not in DEFAULTS:
            raise KeyError(f"unknown configuration key {key!r}")
        merged = dict(self._overrides)
        merged[key] = value
        return SparkConf(merged)

    def items(self) -> Iterator[Tuple[str, Any]]:
        for key in DEFAULTS:
            yield key, self.get(key)

    def __contains__(self, key: str) -> bool:
        return key in DEFAULTS

    def __repr__(self) -> str:
        return f"SparkConf({self._overrides!r})"
