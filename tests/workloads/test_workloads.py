"""Tests for the workload DAG builders."""

import pytest

from repro.spark.rdd import ShuffleDependency, reset_id_counters
from repro.workloads import (
    KMeansWorkload,
    PageRankWorkload,
    SparkPiWorkload,
    SyntheticWorkload,
    TPCDSWorkload,
    TPCDS_QUERIES,
)
from repro.workloads.base import WorkloadSpec
from repro.workloads.pagerank import skewed_compute
from repro.workloads.tpcds import PRESENTED_QUERIES


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_id_counters()


def count_stages(final_rdd):
    """Count stages by walking the lineage (shuffle deps + result)."""
    seen = set()

    def visit(rdd):
        for node in rdd.narrow_ancestry():
            for dep in node.shuffle_deps:
                if dep.shuffle_id not in seen:
                    seen.add(dep.shuffle_id)
                    visit(dep.parent)

    visit(final_rdd)
    return len(seen) + 1


# ---------------------------------------------------------------------------
# WorkloadSpec
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec("x", required_cores=0, available_cores=1,
                     worker_itype="m4.large")
    with pytest.raises(ValueError):
        WorkloadSpec("x", required_cores=4, available_cores=8,
                     worker_itype="m4.large")


def test_spec_shortfall():
    spec = WorkloadSpec("x", required_cores=16, available_cores=3,
                        worker_itype="m4.large")
    assert spec.shortfall_cores == 13


# ---------------------------------------------------------------------------
# PageRank
# ---------------------------------------------------------------------------

def test_pagerank_paper_setup():
    w = PageRankWorkload()
    assert w.pages == 850_000
    assert w.spec.required_cores == 16
    assert w.spec.available_cores == 3
    assert w.spec.worker_itype == "m4.4xlarge"


def test_pagerank_has_six_stages():
    """Figure 7: PageRank has 6 execution stages."""
    w = PageRankWorkload()
    assert w.num_stages == 6
    assert count_stages(w.build(16)) == 6


def test_pagerank_links_cached():
    # The parsed link graph is persisted across iterations.
    final = PageRankWorkload().build(16)
    assert "links" in {r.name for r in _all_rdds(final) if r.cached}


def _all_rdds(final):
    out, stack, seen = [], [final], set()
    while stack:
        rdd = stack.pop()
        if rdd.rdd_id in seen:
            continue
        seen.add(rdd.rdd_id)
        out.append(rdd)
        stack.extend(d.parent for d in rdd.deps)
    return out


def test_pagerank_skew_hot_partition():
    compute = skewed_compute(160.0, 16)
    assert compute(0) > compute(1)
    total = sum(compute(p) for p in range(16))
    assert total == pytest.approx(160.0)


def test_skewed_compute_single_partition():
    compute = skewed_compute(100.0, 1)
    assert compute(0) == 100.0


def test_pagerank_profiling_sizes():
    assert PageRankWorkload.small().pages == 25_000
    assert PageRankWorkload.medium().pages == 50_000
    assert PageRankWorkload.large().pages == 100_000


def test_pagerank_validation():
    with pytest.raises(ValueError):
        PageRankWorkload(pages=0)
    with pytest.raises(ValueError):
        PageRankWorkload(iterations=0)
    with pytest.raises(ValueError):
        PageRankWorkload().build(0)


def test_pagerank_shuffle_scales_with_pages():
    small = PageRankWorkload.small().build(8)
    large = PageRankWorkload.large().build(8)

    def total_shuffle(rdd):
        return sum(d.total_bytes for r in _all_rdds(rdd)
                   for d in r.shuffle_deps)

    assert total_shuffle(large) == pytest.approx(4 * total_shuffle(small))


# ---------------------------------------------------------------------------
# K-means
# ---------------------------------------------------------------------------

def test_kmeans_paper_setup():
    w = KMeansWorkload()
    assert w.points == 3_000_000
    assert w.dims == 20
    assert w.k == 10
    assert w.iterations == 5
    assert w.spec.required_cores == 16
    assert w.spec.available_cores == 4
    assert w.spec.vm_ready_delay_s == 60.0


def test_kmeans_stage_count():
    w = KMeansWorkload()
    assert count_stages(w.build(16)) == w.num_stages == 6


def test_kmeans_points_cached_and_sized_for_one_lambda():
    """The partition size is the linchpin of the memory story: one
    partition must fit a 1536 MB Lambda's storage region but two must
    overflow a 4 GB VM executor's."""
    from repro.spark.memory import usable_heap_bytes

    w = KMeansWorkload()
    per_partition = w.cached_dataset_bytes / 16
    lambda_limit = usable_heap_bytes(1536 * 1024 ** 2) * 0.5
    vm_limit = usable_heap_bytes(4 * 1024 ** 3) * 0.5
    assert per_partition < lambda_limit
    assert 2 * per_partition < vm_limit
    assert 3 * per_partition > vm_limit


def test_kmeans_validation():
    with pytest.raises(ValueError):
        KMeansWorkload(points=0)
    with pytest.raises(ValueError):
        KMeansWorkload().build(-1)


# ---------------------------------------------------------------------------
# SparkPi
# ---------------------------------------------------------------------------

def test_sparkpi_paper_setup():
    w = SparkPiWorkload()
    assert w.darts == 1e10
    assert w.spec.required_cores == 64
    assert w.spec.worker_itype == "m4.16xlarge"


def test_sparkpi_negligible_shuffle():
    w = SparkPiWorkload()
    final = w.build(64)
    total = sum(d.total_bytes for r in _all_rdds(final)
                for d in r.shuffle_deps)
    assert total < 1024 * 1024  # well under a megabyte


def test_sparkpi_two_stages():
    assert count_stages(SparkPiWorkload().build(64)) == 2


# ---------------------------------------------------------------------------
# TPC-DS
# ---------------------------------------------------------------------------

def test_tpcds_pool_has_ten_queries():
    assert len(TPCDS_QUERIES) == 10


def test_tpcds_presented_queries():
    assert set(PRESENTED_QUERIES) == {"q5", "q16", "q94", "q95"}
    assert len(TPCDSWorkload.presented()) == 4


def test_tpcds_q5_not_qubole_supported():
    assert not TPCDSWorkload("q5").spec.qubole_supported
    assert TPCDSWorkload("q16").spec.qubole_supported


def test_tpcds_unknown_query_rejected():
    with pytest.raises(KeyError, match="unknown query"):
        TPCDSWorkload("q999")


def test_tpcds_stage_count_matches_profile():
    for name in PRESENTED_QUERIES:
        w = TPCDSWorkload(name)
        assert count_stages(w.build(32)) == w.profile.num_stages


def test_tpcds_shuffle_stages_use_sql_partitions():
    w = TPCDSWorkload("q16")
    final = w.build(32)
    assert final.num_partitions == 200


def test_tpcds_scale_factor_scales_compute_and_shuffle():
    small = TPCDSWorkload("q16", scale_factor=8)
    large = TPCDSWorkload("q16", scale_factor=16)
    s_rdd, l_rdd = small.build(32), large.build(32)

    def totals(rdd):
        rdds = _all_rdds(rdd)
        shuffle = sum(d.total_bytes for r in rdds for d in r.shuffle_deps)
        compute = sum(r.compute_seconds(0) * r.num_partitions for r in rdds)
        return shuffle, compute

    s_shuffle, s_compute = totals(s_rdd)
    l_shuffle, l_compute = totals(l_rdd)
    assert l_shuffle == pytest.approx(2 * s_shuffle)
    assert l_compute == pytest.approx(2 * s_compute, rel=0.05)


def test_tpcds_q5_is_heaviest_shuffler():
    volumes = {name: TPCDS_QUERIES[name].total_shuffle_gb
               for name in PRESENTED_QUERIES}
    assert max(volumes, key=volumes.get) == "q5"


# ---------------------------------------------------------------------------
# Synthetic
# ---------------------------------------------------------------------------

def test_synthetic_stage_count():
    w = SyntheticWorkload(stages=4)
    assert count_stages(w.build(8)) == 4


def test_synthetic_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(stages=0)
    with pytest.raises(ValueError):
        SyntheticWorkload(core_seconds_per_stage=-1)
