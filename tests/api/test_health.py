"""``/healthz`` and ``/readyz``: the load-balancer contract.

Liveness answers whenever the process serves requests; readiness turns
503 (with the failing checks in a structured ErrorBody) whenever a
balancer should stop sending traffic — saturated admission queue, open
circuit breaker, or a draining server.
"""

import threading

import pytest

from repro.api import schemas
from repro.api.app import create_app
from repro.api.service import ServeConfig, ServeRuntime
from repro.api.testclient import TestClient

_GATES = {}


def _gate(name: str) -> threading.Event:
    return _GATES.setdefault(name, threading.Event())


def blocking_job(spec):
    gate = _GATES[dict(spec.extra)["gate"]]
    assert gate.wait(timeout=30.0), "gate never released"
    return {"workload": "blocker", "duration_s": 1.0, "cost": 0.0}


def _blocker(seed: int, gate: str) -> dict:
    return {"workload": "blocker",
            "scenario": "custom:tests.api.test_health:blocking_job",
            "seed": seed, "extra": {"gate": gate}}


@pytest.mark.smoke
def test_healthz_and_readyz_on_an_idle_server():
    config = ServeConfig(max_concurrent=2, max_queue=4, pool_cores=4)
    with TestClient(create_app(config)) as client:
        live = client.get("/healthz")
        assert live.status == 200
        env = live.envelope()
        assert env.kind == schemas.KIND_HEALTH
        assert env.data["status"] == "ok"
        assert env.data["uptime_s"] >= 0
        assert env.data["schema_version"] == schemas.SCHEMA_VERSION
        # No --state-dir: the journal surfaces as explicitly disabled.
        assert env.data["journal_enabled"] is False
        assert env.data["journal_lag_ops"] is None

        ready = client.get("/readyz")
        assert ready.status == 200
        assert ready.envelope().kind == schemas.KIND_HEALTH
        assert ready.data["status"] == "ready"
        assert all(ready.data["checks"].values())
        assert set(ready.data["checks"]) == {
            "driver_alive", "queue_below_max", "breaker_not_open",
            "not_draining", "slo_burn_ok"}


def test_healthz_reports_journal_lag(tmp_path):
    """With a journal, healthz exposes the ops appended since the
    open-time compaction — the replay debt a restart would pay."""
    config = ServeConfig(max_concurrent=2, max_queue=4, pool_cores=4,
                         state_dir=str(tmp_path))
    with TestClient(create_app(config)) as client:
        health = client.get("/healthz").data
        assert health["journal_enabled"] is True
        assert health["journal_lag_ops"] == 0

        r = client.post("/jobs", json={"workload": "sparkpi"})
        assert r.status == 202
        job_id = r.data["job_id"]
        assert health["journal_lag_ops"] == 0  # snapshot from before
        lag = client.get("/healthz").data["journal_lag_ops"]
        assert lag >= 1  # at least the WAL 'submitted' append

        client.get(f"/jobs/{job_id}", params={"wait": 30})
        final = client.get("/healthz").data["journal_lag_ops"]
        assert final >= 3  # submitted + started + finished


def test_readyz_503_when_admission_queue_saturated():
    gate = _gate("readyz-saturated")
    config = ServeConfig(max_concurrent=1, max_queue=1, pool_cores=4)
    try:
        with TestClient(create_app(config)) as client:
            for seed in range(2):  # one running + one queued = full
                r = client.post("/jobs",
                                json=_blocker(seed, "readyz-saturated"))
                assert r.status == 202

            not_ready = client.get("/readyz")
            assert not_ready.status == 503
            env = not_ready.envelope()
            assert env.kind == schemas.KIND_ERROR
            assert env.data["code"] == schemas.ERR_NOT_READY
            assert "queue_below_max" in env.data["message"]
            checks = env.data["detail"]["checks"]
            assert not checks["queue_below_max"]
            assert checks["driver_alive"]
            # Liveness is unaffected: the process is healthy, just full.
            assert client.get("/healthz").status == 200

            gate.set()
            assert client.app.runtime.drain(timeout=60.0)
            assert client.get("/readyz").status == 200
    finally:
        gate.set()


def test_readyz_503_while_breaker_open():
    config = ServeConfig(max_concurrent=1, max_queue=4, pool_cores=4,
                         breaker_failure_threshold=2,
                         breaker_cooldown_s=60.0)
    with TestClient(create_app(config)) as client:
        runtime = client.app.runtime
        for _ in range(runtime.breaker.failure_threshold):
            runtime.breaker.record_failure()

        not_ready = client.get("/readyz")
        assert not_ready.status == 503
        assert "breaker_not_open" in not_ready.data["message"]
        assert not not_ready.data["detail"]["checks"]["breaker_not_open"]


def test_readyz_503_while_draining():
    service = ServeRuntime(ServeConfig(max_concurrent=1, max_queue=4,
                                       pool_cores=4)).start()
    try:
        service.request_drain(deadline_s=0.1)
        with TestClient(create_app(runtime=service)) as client:
            not_ready = client.get("/readyz")
            assert not_ready.status == 503
            assert not not_ready.data["detail"]["checks"]["not_draining"]
            assert client.get("/healthz").status == 200
    finally:
        service.close()
