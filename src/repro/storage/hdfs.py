"""HDFS: SplitServe's common shuffle layer for VM and Lambda executors.

§4.3: *"SplitServe uses a single common high throughput storage layer,
which can be accessed by both VM and Lambda based executors"* — HDFS,
chosen for ease of implementation.

The model: a namenode (metadata RPCs, negligible data traffic) plus one
or more datanodes, each hosted on a VM whose **dedicated EBS bandwidth is
the datanode's throughput ceiling**. The paper's PageRank setup colocates
the single datanode with the Spark master on an m4.xlarge (750 Mbps EBS),
which is exactly the bottleneck its §5.2 discussion dissects.

Writes with replication ``r`` traverse the write pipeline: the block
lands on ``r`` datanodes, occupying each one's EBS channel. Reads are
served by one replica (round-robin across datanodes). The namenode also
rate-limits metadata RPCs — at very high degrees of parallelism the
M*R explosion of shuffle-block opens is what bends the Figure 4 U-curve
back up.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.cloud.constants import (
    HDFS_DEFAULT_REPLICATION,
    HDFS_REQUEST_LATENCY_CV,
    HDFS_REQUEST_LATENCY_MEAN_S,
)
from repro.storage.base import StorageService

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.network import FairShareLink
    from repro.cloud.pricing import BillingMeter
    from repro.cloud.vm import VirtualMachine
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams

#: Sustained namenode RPC capacity (requests/s) — a modest single-node
#: namenode colocated with the Spark master.
NAMENODE_RPC_RATE = 4000.0


class HDFS(StorageService):
    """A small HDFS cluster."""

    def __init__(
        self,
        env: "Environment",
        datanodes: Sequence["VirtualMachine"],
        rng: "RandomStreams",
        meter: "BillingMeter" = None,
        replication: int = HDFS_DEFAULT_REPLICATION,
        namenode_vm: "VirtualMachine" = None,
        name: str = "hdfs",
    ) -> None:
        if not datanodes:
            raise ValueError("HDFS needs at least one datanode")
        if not 1 <= replication <= len(datanodes):
            raise ValueError(
                f"replication {replication} outside [1, {len(datanodes)}]")
        super().__init__(env, name, rng, meter)
        self.datanodes: List["VirtualMachine"] = list(datanodes)
        self.namenode_vm = namenode_vm if namenode_vm is not None else datanodes[0]
        self.replication = replication
        self._placement: Dict[str, List["VirtualMachine"]] = {}
        self._write_rr = itertools.count()
        self._read_rr = itertools.count()
        self._rpc_virtual_time = -float("inf")

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _admit(self, count: int, write: bool) -> float:
        """Namenode RPC admission: a leaky bucket at NAMENODE_RPC_RATE
        with one second of burst."""
        now = self.env.now
        interval = 1.0 / NAMENODE_RPC_RATE
        earliest = max(self._rpc_virtual_time + interval, now - 1.0)
        self._rpc_virtual_time = earliest + (count - 1) * interval
        return max(0.0, self._rpc_virtual_time - now)

    def _op_latency(self, write: bool) -> float:
        return self.rng.lognormal_around(
            "hdfs.rpc", HDFS_REQUEST_LATENCY_MEAN_S, HDFS_REQUEST_LATENCY_CV)

    def _op_context(self, key: str, write: bool):
        if write:
            replicas = self._pick_replicas()
            if key is not None:
                self._placement[key] = replicas
            return replicas
        if key is not None and key in self._placement:
            replicas = self._placement[key]
            return [replicas[next(self._read_rr) % len(replicas)]]
        return [self.datanodes[next(self._read_rr) % len(self.datanodes)]]

    def _bulk_transfer(self, nbytes: float,
                       via_links: Sequence["FairShareLink"], write: bool,
                       context=None):
        nodes = context
        if nodes is None:
            nodes = (self._pick_replicas() if write
                     else [self.datanodes[next(self._read_rr)
                                          % len(self.datanodes)]])
        links = list(via_links)
        for i, node in enumerate(nodes):
            links.append(node.ebs_link)
            if write and i > 0:
                # Pipeline hop between replicas crosses their NICs too.
                links.append(node.net_link)
        yield from self._transfer_all(links, nbytes)

    # ------------------------------------------------------------------

    def _pick_replicas(self) -> List["VirtualMachine"]:
        """Round-robin block placement across datanodes."""
        start = next(self._write_rr)
        n = len(self.datanodes)
        return [self.datanodes[(start + i) % n] for i in range(self.replication)]

    def delete(self, key: str) -> None:
        super().delete(key)
        self._placement.pop(key, None)

    def placement_of(self, key: str) -> List[str]:
        """Names of the datanodes holding ``key`` (for tests/analysis)."""
        return [vm.name for vm in self._placement.get(key, [])]
