"""Planner SLO sweep: the split planner vs the pure baselines.

The planner's pitch is conditional: when the deadline is loose it
should never pay more than the cheaper of the pure-VM and pure-Lambda
shapes, and when the deadline is tighter than VM startup allows it
should beat the best pure-VM latency by bridging with Lambdas. This
bench sweeps one workload (pagerank: r=3 cores free, R=16 wanted,
120 s VM readiness) across three SLOs — loose, the paper's, and one
below what any VM-procurement plan can reach — executes the planner's
chosen split plus every pure candidate, and checks both claims against
*simulated* (not predicted) runtimes and costs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.experiments import ExperimentRunner
from repro.experiments.runner import run_spec

WORKLOAD = "pagerank"
#: SLO labels -> seconds (None = the workload's own slo_seconds).
SLOS = {"loose (600s)": 600.0, "paper (240s)": None, "tight (120s)": 120.0}
#: The pure shapes the planner must justify itself against.
PURE = ("vm_now", "vm_scaleout", "lambda_all")


def run_sweep():
    from repro.planner import SplitPlanner

    planner = SplitPlanner(seed=0)
    results = {}
    for label, slo in SLOS.items():
        plan = planner.plan(WORKLOAD, slo_s=slo)
        chosen = run_spec(planner.spec_for(plan))
        pure = {}
        for entry in plan.candidates:
            if entry.candidate.name in PURE:
                pure[entry.candidate.name] = run_spec(
                    planner.spec_for(plan, candidate=entry))
        results[label] = (plan, chosen, pure)
    return results


def test_planner_slo_sweep(benchmark, emit):
    results = run_once(benchmark, run_sweep)
    rows = []
    for label, (plan, chosen, pure) in results.items():
        vm_time = min(pure[n].duration_s for n in ("vm_now", "vm_scaleout"))
        pure_cost = min(r.cost for r in pure.values())
        rows.append([
            label, plan.chosen.candidate.name,
            f"{chosen.duration_s:.1f}s", f"${chosen.cost:.4f}",
            f"{vm_time:.1f}s", f"${pure_cost:.4f}",
            "yes" if chosen.metrics["planner.slo_met"] else "NO"])
    emit(f"planner SLO sweep: {WORKLOAD}",
         format_table(
             ["SLO", "chosen", "time", "cost", "best pure-VM time",
              "cheapest pure cost", "SLO met"], rows))

    loose_plan, loose_rec, loose_pure = results["loose (600s)"]
    cheapest_pure = min(r.cost for r in loose_pure.values())
    # Loose SLO: picking a hybrid only makes sense if it saves money.
    assert loose_rec.cost <= cheapest_pure * 1.005, (
        f"loose-SLO planner cost {loose_rec.cost:.4f} exceeds the "
        f"cheaper pure baseline {cheapest_pure:.4f}")
    assert loose_rec.metrics["planner.slo_met"]

    tight_plan, tight_rec, tight_pure = results["tight (120s)"]
    best_vm = min(tight_pure[n].duration_s
                  for n in ("vm_now", "vm_scaleout"))
    # Tight SLO: VM procurement alone (120 s readiness) cannot get
    # there; the planner must beat it by bridging with Lambdas.
    assert best_vm > tight_plan.slo_s, (
        "bench premise broken: a pure-VM shape met the tight SLO")
    assert tight_rec.duration_s < best_vm
    assert tight_rec.metrics["planner.slo_met"]


@pytest.mark.smoke
def test_smoke_one_planned_run(tmp_path):
    """One planned spec through the ExperimentRunner: the plan is
    feasible, the record carries the calibration-loop metrics, and the
    calibration error is within the model's accuracy budget."""
    from repro.planner import SplitPlanner

    planner = SplitPlanner(seed=0)
    plan = planner.plan("sparkpi")
    assert plan.feasible
    runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
    [record] = runner.run([planner.spec_for(plan)])
    assert not record.failed
    m = record.metrics
    assert m["planner.candidate"] == plan.chosen.candidate.name
    assert m["planner.slo_met"]
    assert m["planner.error_runtime_frac"] <= 0.15
