"""Redis/ElastiCache: Locus's shuffle substrate — fast but expensive.

An in-memory store served by one or more dedicated cache nodes. Latency
is sub-millisecond and there are no per-request charges, but the node
itself is a large VM billed by the hour whether or not it is busy — the
paper's reason for calling this option "quite expensive" (§2).

The scenario driver is responsible for billing the node-hours via
:meth:`bill_node_hours`; reads and writes contend on the cluster's
aggregate throughput link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cloud.constants import (
    REDIS_NODE_BYTES_PER_S,
    REDIS_NODE_PRICE_PER_HOUR,
    REDIS_REQUEST_LATENCY_CV,
    REDIS_REQUEST_LATENCY_MEAN_S,
    SECONDS_PER_HOUR,
)
from repro.cloud.network import FairShareLink
from repro.storage.base import StorageService

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.pricing import BillingMeter
    from repro.simulation.kernel import Environment
    from repro.simulation.rng import RandomStreams


class RedisStore(StorageService):
    """An in-memory cache cluster of ``nodes`` identical nodes."""

    def __init__(
        self,
        env: "Environment",
        rng: "RandomStreams",
        meter: "BillingMeter" = None,
        name: str = "redis",
        nodes: int = 1,
        node_bytes_per_s: float = REDIS_NODE_BYTES_PER_S,
        node_price_per_hour: float = REDIS_NODE_PRICE_PER_HOUR,
    ) -> None:
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        super().__init__(env, name, rng, meter)
        self.nodes = nodes
        self.node_price_per_hour = node_price_per_hour
        # One shared link models the cluster's aggregate throughput; keys
        # hash across nodes, so aggregate scaling is linear in practice.
        self._link = FairShareLink(
            env, node_bytes_per_s * nodes, name=f"{name}/mem")

    def _op_latency(self, write: bool) -> float:
        return self.rng.lognormal_around(
            "redis.request", REDIS_REQUEST_LATENCY_MEAN_S,
            REDIS_REQUEST_LATENCY_CV)

    def _bulk_transfer(self, nbytes: float,
                       via_links: Sequence["FairShareLink"], write: bool,
                       context=None):
        yield from self._transfer_all([self._link, *via_links], nbytes)

    def bill_node_hours(self, duration_s: float) -> float:
        """Bill the cache nodes for ``duration_s`` of wall-clock existence
        (minimum one hour per node, as ElastiCache bills)."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        hours = max(1.0, duration_s / SECONDS_PER_HOUR)
        cost = self.nodes * self.node_price_per_hour * hours
        if self.meter is not None:
            self.meter.bill_storage(self.name, cost)
        return cost
