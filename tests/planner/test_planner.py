"""Tests for plan ranking, feasibility, and the calibration loop."""

import pytest

from repro.experiments.runner import run_spec
from repro.experiments.spec import PLANNED_SCENARIO
from repro.planner import SplitPlanner
from repro.planner.planner import default_candidates


@pytest.fixture(scope="module")
def planner():
    return SplitPlanner(seed=0)


@pytest.fixture(scope="module")
def plan(planner):
    return planner.plan("sparkpi")


def test_candidate_set_covers_the_paper_shapes(planner):
    profile = planner.profile("sparkpi")
    names = {c.name for c in default_candidates(profile)}
    assert {"vm_now", "lambda_all", "hybrid", "hybrid_segue",
            "vm_scaleout"} <= names


def test_feasible_plan_ranked_cheapest_first(plan):
    """Within the SLO-meeting tier the ranking is by predicted cost."""
    assert plan.feasible
    margin = 1.0 - SplitPlanner().slo_margin
    safe = [c for c in plan.candidates
            if c.predicted_runtime_s <= plan.slo_s * margin]
    assert plan.chosen in safe
    costs = [c.predicted_cost for c in safe]
    assert costs == sorted(costs)


def test_slo_margin_excludes_knife_edge_candidates(planner):
    """A candidate predicted just under the SLO only wins if nothing
    lands inside the safety margin; here the margin must push the
    planner off the knife edge onto a comfortably-feasible split."""
    plan = planner.plan("sparkpi")
    chosen = plan.chosen
    assert (chosen.predicted_runtime_s
            <= plan.slo_s * (1.0 - planner.slo_margin))


def test_impossible_slo_reports_infeasible(planner):
    plan = planner.plan("sparkpi", slo_s=0.001)
    assert not plan.feasible
    assert not any(c.meets_slo for c in plan.candidates)
    # Infeasible tier ranks fastest-first: the least-bad plan leads.
    runtimes = [c.predicted_runtime_s for c in plan.candidates]
    assert runtimes == sorted(runtimes)


def test_plan_to_dict_is_json_shaped(plan):
    data = plan.to_dict()
    assert data["workload"] == "sparkpi"
    assert data["feasible"] is True
    assert data["chosen"] == plan.chosen.candidate.name
    assert len(data["candidates"]) == len(plan.candidates)
    assert all("predicted_runtime_s" in c for c in data["candidates"])


def test_spec_for_builds_executable_planned_spec(planner, plan):
    spec = planner.spec_for(plan)
    assert spec.scenario == PLANNED_SCENARIO
    policy = dict(spec.policy)
    assert policy["vm_cores"] == plan.chosen.candidate.vm_cores
    assert policy["lambda_cores"] == plan.chosen.candidate.lambda_cores
    assert policy["slo_s"] == plan.slo_s
    assert "segue_at_s" not in policy or policy["segue_at_s"] is not None


def test_calibration_loop_metrics_on_record(planner, plan):
    record = run_spec(planner.spec_for(plan))
    assert not record.failed
    m = record.metrics
    for key in ("planner.candidate", "planner.slo_s",
                "planner.predicted_runtime_s", "planner.predicted_cost",
                "planner.actual_runtime_s", "planner.actual_cost",
                "planner.error_runtime_frac", "planner.error_cost_frac",
                "planner.slo_met"):
        assert key in m, key
    assert m["planner.actual_runtime_s"] == record.duration_s
    assert m["planner.actual_cost"] == record.cost


@pytest.mark.parametrize("workload", ["sparkpi", "synthetic", "kmeans"])
def test_prediction_error_within_budget(planner, workload):
    """The acceptance budget: executing the chosen plan lands within
    15% of the predicted runtime (most workloads are far tighter)."""
    plan = planner.plan(workload)
    record = run_spec(planner.spec_for(plan))
    assert not record.failed
    assert record.metrics["planner.error_runtime_frac"] <= 0.15
    if plan.feasible:
        assert record.metrics["planner.slo_met"]


def test_planned_run_is_deterministic(planner, plan):
    spec = planner.spec_for(plan)
    a, b = run_spec(spec), run_spec(spec)
    assert a.canonical() == b.canonical()


def test_planned_spec_requires_split_policy():
    from repro.experiments.spec import ExperimentSpec
    from repro.planner.planned import run_planned

    with pytest.raises(ValueError, match="vm_cores"):
        run_planned(ExperimentSpec("sparkpi", PLANNED_SCENARIO))
