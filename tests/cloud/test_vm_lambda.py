"""Tests for VM and Lambda lifecycles and the provider facade."""

import pytest

from repro.cloud import (
    CloudProvider,
    LambdaConfig,
    LambdaState,
    VMState,
    instance_type,
)
from repro.cloud.constants import LAMBDA_LIFETIME_S
from repro.cloud.instance_types import fewest_instances_for_cores
from repro.simulation import Environment, RandomStreams, TraceRecorder


def make_provider(seed=0, trace=None):
    env = Environment()
    provider = CloudProvider(env, RandomStreams(seed), trace=trace)
    return env, provider


# ---------------------------------------------------------------------------
# Instance types
# ---------------------------------------------------------------------------

def test_catalogue_lookup_and_error():
    m4 = instance_type("m4.xlarge")
    assert m4.vcpus == 4
    with pytest.raises(KeyError, match="unknown instance type"):
        instance_type("m5.mega")


def test_fewest_instances_single():
    assert [t.name for t in fewest_instances_for_cores(8)] == ["m4.2xlarge"]
    assert [t.name for t in fewest_instances_for_cores(16)] == ["m4.4xlarge"]
    assert [t.name for t in fewest_instances_for_cores(32)] == ["m4.10xlarge"]


def test_fewest_instances_multiple_for_128_cores():
    types = [t.name for t in fewest_instances_for_cores(128)]
    assert types == ["m4.16xlarge", "m4.16xlarge"]


def test_fewest_instances_rejects_nonpositive():
    with pytest.raises(ValueError):
        fewest_instances_for_cores(0)


def test_price_per_vcpu():
    m4_large = instance_type("m4.large")
    assert m4_large.price_per_vcpu_hour == pytest.approx(0.05)


# ---------------------------------------------------------------------------
# VM lifecycle
# ---------------------------------------------------------------------------

def test_vm_boot_takes_roughly_two_minutes():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge")
    assert vm.state in (VMState.REQUESTED, VMState.PROVISIONING)
    env.run(until=vm.ready)
    assert vm.is_running
    assert 60 < env.now < 240  # lognormal around 120s


def test_vm_fixed_boot_delay():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge", boot_delay_s=100.0)
    env.run(until=vm.ready)
    assert env.now == pytest.approx(100.0)


def test_already_running_vm_is_ready_immediately():
    env, provider = make_provider()
    vm = provider.request_vm("m4.4xlarge", already_running=True)
    assert vm.is_running
    assert vm.ready.triggered


def test_vm_core_accounting():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge", already_running=True)
    assert vm.free_cores == 4
    vm.allocate_cores(3)
    assert vm.free_cores == 1
    with pytest.raises(RuntimeError, match="only 1 free"):
        vm.allocate_cores(2)
    vm.release_cores(3)
    assert vm.free_cores == 4
    with pytest.raises(RuntimeError):
        vm.release_cores(1)


def test_vm_cannot_allocate_before_running():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge")
    with pytest.raises(RuntimeError, match="not running"):
        vm.allocate_cores(1)


def test_vm_terminate_and_uptime():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge", already_running=True)

    def stop(env):
        yield env.timeout(300)
        provider.terminate_vm(vm)

    env.process(stop(env))
    env.run()
    assert vm.state is VMState.TERMINATED
    assert vm.uptime == pytest.approx(300)
    vm.terminate()  # idempotent


def test_vm_terminated_while_provisioning_never_runs():
    env, provider = make_provider()
    vm = provider.request_vm("m4.xlarge", boot_delay_s=100.0)

    def cancel(env):
        yield env.timeout(50)
        vm.terminate()

    env.process(cancel(env))
    env.run()
    assert vm.state is VMState.TERMINATED
    assert not vm.ready.triggered


# ---------------------------------------------------------------------------
# Lambda lifecycle
# ---------------------------------------------------------------------------

def test_lambda_config_validation():
    with pytest.raises(ValueError):
        LambdaConfig(memory_mb=64)
    with pytest.raises(ValueError):
        LambdaConfig(memory_mb=4096)
    with pytest.raises(ValueError):
        LambdaConfig(lifetime_s=0)


def test_lambda_cpu_share_scales_with_memory():
    assert LambdaConfig(memory_mb=1536).cpu_share == pytest.approx(1.0)
    assert LambdaConfig(memory_mb=768).cpu_share == pytest.approx(0.5)
    assert LambdaConfig(memory_mb=3008).cpu_share == pytest.approx(3008 / 1536)


def test_lambda_warm_start_is_fast():
    env, provider = make_provider()
    fn = provider.invoke_lambda()
    env.run(until=fn.ready)
    assert env.now < 1.0  # ~100ms warm
    assert fn.warm_start


def test_lambda_cold_start_is_slow():
    env, provider = make_provider()
    fn = provider.invoke_lambda(force_cold=True)
    env.run(until=fn.ready)
    assert 2.0 < env.now < 30.0
    assert not fn.warm_start


def test_lambda_expires_at_lifetime_cap():
    env, provider = make_provider()
    fn = provider.invoke_lambda()
    env.run(until=fn.expired)
    assert fn.state is LambdaState.EXPIRED
    assert env.now == pytest.approx(LAMBDA_LIFETIME_S, abs=1.0)


def test_lambda_finish_prevents_expiry():
    env, provider = make_provider()
    fn = provider.invoke_lambda()

    def work(env):
        yield fn.ready
        yield env.timeout(30)
        provider.release_lambda(fn)

    env.process(work(env))
    env.run()
    assert fn.state is LambdaState.FINISHED
    assert not fn.expired.triggered
    assert fn.billed_duration == pytest.approx(30, abs=1.0)


def test_lambda_remaining_lifetime_decreases():
    env, provider = make_provider()
    fn = provider.invoke_lambda()
    env.run(until=fn.ready)
    first = fn.remaining_lifetime
    env.run(until=env.now + 100)
    assert fn.remaining_lifetime == pytest.approx(first - 100, abs=0.01)


def test_lambda_network_bandwidth_proportional_to_memory():
    env, provider = make_provider()
    small = provider.invoke_lambda(LambdaConfig(memory_mb=512))
    large = provider.invoke_lambda(LambdaConfig(memory_mb=3008))
    ratio = (large.net_link.capacity_bytes_per_s
             / small.net_link.capacity_bytes_per_s)
    assert ratio == pytest.approx(3008 / 512)


# ---------------------------------------------------------------------------
# Warm pool
# ---------------------------------------------------------------------------

def test_warm_pool_reuse_after_release():
    env, provider = make_provider()
    provider._initial_warm = 0  # force cold starts until a release happens
    first = provider.invoke_lambda()
    assert not first.warm_start

    def cycle(env):
        yield first.ready
        provider.release_lambda(first)
        second = provider.invoke_lambda()
        assert second.warm_start

    env.process(cycle(env))
    env.run()


def test_warm_pool_sized_entries_do_not_cross_memory_classes():
    env, provider = make_provider()
    provider._initial_warm = 0
    fn = provider.invoke_lambda(LambdaConfig(memory_mb=1024))

    def cycle(env):
        yield fn.ready
        provider.release_lambda(fn)
        other = provider.invoke_lambda(LambdaConfig(memory_mb=2048))
        assert not other.warm_start  # different size class: cold

    env.process(cycle(env))
    env.run()


def test_billing_helpers():
    env, provider = make_provider()
    vm = provider.request_vm("m4.large", already_running=True)
    fn = provider.invoke_lambda()

    def run(env):
        yield env.timeout(90)
        provider.release_lambda(fn)
        provider.terminate_vm(vm)

    env.process(run(env))
    env.run()
    vm_cost = provider.bill_vm_usage(vm)
    la_cost = provider.bill_lambda_usage(fn)
    assert vm_cost > 0 and la_cost > 0
    assert provider.meter.total() == pytest.approx(vm_cost + la_cost)


def test_trace_records_vm_and_lambda_events():
    trace = TraceRecorder()
    env = Environment()
    provider = CloudProvider(env, RandomStreams(0), trace=trace)
    vm = provider.request_vm("m4.large", boot_delay_s=10)
    fn = provider.invoke_lambda()
    env.run(until=vm.ready)
    assert trace.select(category="vm", name="running")
    assert trace.select(category="lambda", name="invoked")
