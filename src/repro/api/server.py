"""Serving the control plane over real sockets.

:func:`run` is what ``repro serve`` calls: it prefers uvicorn when the
optional ``[serve]`` extra is installed (the app is plain ASGI 3.0, so
uvicorn runs it unmodified) and otherwise falls back to
:func:`make_server` — a stdlib ``ThreadingHTTPServer`` bridging each
request onto the ASGI app via a private event loop. The bridge buffers
single-shot JSON responses (emitting ``Content-Length``) and streams
multi-part bodies (SSE) chunk-by-chunk with immediate flushes, closing
the connection at end-of-stream as HTTP/1.0 clients expect.
"""

from __future__ import annotations

import asyncio
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Tuple
from urllib.parse import unquote, urlsplit

__all__ = ["make_server", "run"]


class _BridgeHandler(BaseHTTPRequestHandler):
    """One stdlib HTTP request pumped through the ASGI app."""

    asgi_app = None  # bound by make_server on the generated subclass
    protocol_version = "HTTP/1.0"  # streamed bodies end at close

    # Silence the default per-request stderr lines; the app's event
    # stream is the supported observation surface.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle()

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle()

    def _handle(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        parts = urlsplit(self.path)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.0",
            "method": self.command,
            "scheme": "http",
            "path": unquote(parts.path) or "/",
            "raw_path": parts.path.encode("utf-8"),
            "query_string": parts.query.encode("latin-1"),
            "root_path": "",
            "headers": [(k.lower().encode("latin-1"),
                         v.encode("latin-1"))
                        for k, v in self.headers.items()],
            "client": self.client_address,
            "server": self.server.server_address,
        }
        try:
            asyncio.run(self._pump(scope, body))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    async def _pump(self, scope: Dict[str, Any], body: bytes) -> None:
        delivered = False
        state: Dict[str, Any] = {"status": None, "headers": [],
                                 "started": False, "buffer": []}

        async def receive() -> Dict[str, Any]:
            nonlocal delivered
            if not delivered:
                delivered = True
                return {"type": "http.request", "body": body,
                        "more_body": False}
            # Stay "connected" until the response generator finishes;
            # a write failure surfaces as an exception in send().
            await asyncio.get_running_loop().create_future()

        async def send(message: Dict[str, Any]) -> None:
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = [
                    (k.decode("latin-1"), v.decode("latin-1"))
                    for k, v in message.get("headers", [])]
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                if message.get("more_body", False):
                    if not state["started"]:
                        self._start(state, streaming=True)
                        state["started"] = True
                    if chunk:
                        self.wfile.write(chunk)
                        self.wfile.flush()
                elif state["started"]:  # end of a stream
                    if chunk:
                        self.wfile.write(chunk)
                    self.wfile.flush()
                else:  # buffered single-shot response
                    state["buffer"].append(chunk)
                    self._finish(state)

        await self.asgi_app(scope, receive, send)

    def _start(self, state: Dict[str, Any], streaming: bool) -> None:
        self.send_response(state["status"])
        seen = set()
        for key, value in state["headers"]:
            seen.add(key.lower())
            self.send_header(key, value)
        if streaming and "connection" not in seen:
            self.send_header("Connection", "close")
        self.end_headers()

    def _finish(self, state: Dict[str, Any]) -> None:
        payload = b"".join(state["buffer"])
        self.send_response(state["status"])
        for key, value in state["headers"]:
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        self.wfile.flush()


def make_server(app, host: str = "127.0.0.1",
                port: int = 8000) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` stdlib server bound to ``app``.

    The app's startup hook runs before the server is returned; callers
    own shutdown (``server.shutdown()`` then ``app.shutdown()``).
    """
    handler = type("ReproServeHandler", (_BridgeHandler,),
                   {"asgi_app": app})
    server = ThreadingHTTPServer((host, port), handler)
    app.startup()
    return server


def run(app, host: str = "127.0.0.1", port: int = 8000,
        prefer_uvicorn: bool = True) -> None:
    """Serve ``app`` until interrupted: uvicorn when the ``[serve]``
    extra is installed, the stdlib bridge otherwise."""
    if prefer_uvicorn:
        try:
            import uvicorn
        except ImportError:
            uvicorn = None
        if uvicorn is not None:
            uvicorn.run(app, host=host, port=port, log_level="warning")
            return
    server = make_server(app, host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        app.shutdown()
