"""`repro report` renders a served JobStatus document (satellite of the
control-plane PR): curl `GET /jobs/{id}` into a file, point `repro
report` at it, get the job header plus the embedded run report."""

import pytest

from repro.api import schemas
from repro.api.service import ServeConfig, ServeRuntime
from repro.cli import main
from repro.observability.report import render_report_file


@pytest.fixture(scope="module")
def job_status_doc():
    service = ServeRuntime(ServeConfig(max_concurrent=2, seed=0)).start()
    try:
        status = service.submit({"workload": "sparkpi",
                                 "scenario": "ss_hybrid", "seed": 5,
                                 "slo_s": 10_000})
        final = service.wait_for(status.job_id, timeout=60.0)
    finally:
        service.close()
    assert final.state == schemas.JOB_COMPLETED, final.error
    return final


def test_report_renders_enveloped_job_status(tmp_path, job_status_doc):
    path = tmp_path / "status.json"
    path.write_text(schemas.envelope(schemas.KIND_JOB_STATUS,
                                     job_status_doc).dumps())
    text = render_report_file(str(path))
    assert f"job: {job_status_doc.job_id}" in text
    assert "state=completed" in text
    assert "sparkpi" in text
    assert "SLO" in text
    # The embedded RunRecord renders the full run report below.
    assert "cost" in text


def test_report_renders_bare_job_status(tmp_path, job_status_doc):
    path = tmp_path / "status.json"
    path.write_text(schemas.dumps(job_status_doc.to_dict()))
    text = render_report_file(str(path))
    assert f"job: {job_status_doc.job_id}" in text


def test_report_cli_exit_code(tmp_path, job_status_doc, capsys):
    path = tmp_path / "status.json"
    path.write_text(schemas.envelope(schemas.KIND_JOB_STATUS,
                                     job_status_doc).dumps())
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert job_status_doc.job_id in out
