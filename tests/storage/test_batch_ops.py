"""Unit tests for the batch read/write API of the storage layer."""

import pytest

from repro.cloud import CloudProvider
from repro.cloud.constants import MB
from repro.cloud.pricing import BillingMeter
from repro.storage import HDFS, S3, SQSQueue
from repro.simulation import Environment, RandomStreams


@pytest.fixture
def ctx():
    env = Environment()
    rng = RandomStreams(11)
    meter = BillingMeter()
    provider = CloudProvider(env, rng, meter=meter)
    return env, rng, meter, provider


def test_batch_write_counts_requests_once_each(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    env.run(until=s3.batch_write(100, 10 * MB))
    assert s3.stats.write_requests == 100
    assert s3.stats.bytes_written == 10 * MB
    from repro.cloud.constants import S3_PRICE_PER_PUT

    assert meter.storage_costs["s3"] == pytest.approx(100 * S3_PRICE_PER_PUT)


def test_batch_read_bills_per_request(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    env.run(until=s3.batch_write(1, MB, key_prefix="blob"))
    env.run(until=s3.batch_read(50, MB))
    from repro.cloud.constants import S3_PRICE_PER_GET

    assert meter.storage_costs["s3"] >= 50 * S3_PRICE_PER_GET


def test_batch_latency_paid_in_waves(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    start = env.now
    env.run(until=s3.batch_write(50, 0.0, parallelism=5))
    ten_waves = env.now - start
    env2 = Environment()
    s3b = S3(env2, RandomStreams(11), BillingMeter())
    env2.run(until=s3b.batch_write(50, 0.0, parallelism=50))
    one_wave = env2.now
    assert ten_waves > 3 * one_wave


def test_batch_write_registers_prefix_key(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    env.run(until=s3.batch_write(10, 5 * MB, key_prefix="shuffle0/map1"))
    assert s3.exists("shuffle0/map1")
    assert s3.size_of("shuffle0/map1") == 5 * MB


def test_batch_validation(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    with pytest.raises(ValueError):
        s3.batch_write(0, MB)
    with pytest.raises(ValueError):
        s3.batch_read(0, MB)
    with pytest.raises(ValueError):
        s3.batch_write(1, -1)


def test_batch_throttle_admits_at_rate(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter, put_rate_limit=100.0)
    env.run(until=s3.batch_write(1000, 0.0, parallelism=1000))
    # 1000 requests at 100/s (1s burst credit) needs ~9s.
    assert env.now > 8.0
    assert s3.stats.throttle_wait_s > 0


def test_hdfs_namenode_rpc_limit_bends_huge_batches(ctx):
    env, rng, meter, provider = ctx
    node = provider.request_vm("m4.xlarge", already_running=True)
    hdfs = HDFS(env, [node], rng, meter)
    env.run(until=hdfs.batch_read(
        20_000, 0.0, parallelism=20_000))
    # 20k RPCs at the 4k/s namenode ceiling takes ~4-5 seconds.
    assert env.now > 3.0


def test_hdfs_batch_read_uses_datanode_bandwidth(ctx):
    env, rng, meter, provider = ctx
    node = provider.request_vm("m4.xlarge", already_running=True)  # 750 Mbps
    hdfs = HDFS(env, [node], rng, meter)
    from repro.cloud.constants import MBPS

    nbytes = 750 * MBPS * 4
    env.run(until=hdfs.batch_read(10, nbytes))
    assert env.now == pytest.approx(4.0, rel=0.05)


def test_read_partial_range_validation(ctx):
    env, rng, meter, provider = ctx
    s3 = S3(env, rng, meter)
    env.run(until=s3.write("obj", MB))
    with pytest.raises(ValueError):
        s3.read_partial("obj", 2 * MB)
    done = s3.read_partial("obj", MB / 2)
    env.run(until=done)
    assert s3.stats.bytes_read == pytest.approx(MB / 2)


def test_sqs_batch_billing_uses_chunk_floor(ctx):
    env, rng, meter, provider = ctx
    sqs = SQSQueue(env, rng, meter)
    # 100 requests carrying less than 100 chunks of payload still bill
    # at least one SEND each.
    env.run(until=sqs.batch_write(100, 1024))
    from repro.cloud.constants import SQS_PRICE_PER_REQUEST

    assert meter.storage_costs["sqs"] >= 100 * SQS_PRICE_PER_REQUEST
