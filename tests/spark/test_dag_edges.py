"""Edge-case tests for the DAG scheduler: retries, caps, resubmission."""

import pytest

from repro.cloud.constants import MB
from repro.spark import SparkConf
from repro.spark.dag_scheduler import JobFailedError

from tests.spark.helpers import MiniCluster, single_stage_rdd, two_stage_rdd


def test_cannot_submit_second_job_while_first_runs():
    cluster = MiniCluster()
    cluster.vm_executors(2)
    cluster.driver.submit(single_stage_rdd(cluster.builder, tasks=2))
    with pytest.raises(RuntimeError, match="already running"):
        cluster.driver.submit(single_stage_rdd(cluster.builder, tasks=2))


def test_sequential_jobs_on_one_driver():
    cluster = MiniCluster()
    cluster.vm_executors(2)
    first = cluster.run_job(single_stage_rdd(cluster.builder, tasks=4,
                                             seconds=1.0))
    second = cluster.run_job(single_stage_rdd(cluster.builder, tasks=4,
                                              seconds=1.0))
    assert first.num_tasks == second.num_tasks == 4


def test_stage_attempt_cap_fails_job():
    """Repeatedly losing map outputs exhausts the stage-retry budget."""
    conf = SparkConf({"spark.stage.maxConsecutiveAttempts": 2})
    cluster = MiniCluster(conf=conf)
    rdd = two_stage_rdd(cluster.builder, maps=1, reduces=1,
                        map_seconds=2.0, reduce_seconds=30.0,
                        shuffle_bytes=MB)
    job = cluster.driver.submit(rdd)

    def chaos(env):
        # Keep replacing the executor and killing it mid-reduce: each
        # kill loses the map output (local shuffle) -> stage resubmits.
        for _ in range(6):
            ex = cluster.vm_executors(1)[0]
            yield env.timeout(5.0)
            cluster.driver.task_scheduler.decommission_executor(
                ex, graceful=False, reason="chaos")

    cluster.env.process(chaos(cluster.env))
    with pytest.raises(JobFailedError, match="exceeded"):
        cluster.env.run(until=job.done)
    assert job.failed
    assert "attempts" in job.failure_reason


def test_rollback_resubmits_only_missing_partitions():
    """After a partial map-output loss, only the lost partitions rerun."""
    cluster = MiniCluster()
    executors = cluster.vm_executors(4)
    rdd = two_stage_rdd(cluster.builder, maps=4, reduces=4,
                        map_seconds=5.0, reduce_seconds=20.0,
                        shuffle_bytes=4 * MB)
    job = cluster.driver.submit(rdd)

    def killer(env):
        yield env.timeout(8.0)  # map done at ~5s, reduces running
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="partial loss")

    cluster.env.process(killer(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    # Map tasks ran 4 times originally + only the lost executor's map
    # partition(s) again — not all four.
    map_runs = [a for a in job.task_attempts
                if a.spec.is_shuffle_map]
    assert 4 < len(map_runs) <= 6


def test_job_failure_propagates_exception_through_done_event():
    conf = SparkConf({"spark.task.maxFailures": 1})
    cluster = MiniCluster(conf=conf)
    executors = cluster.vm_executors(1)
    job = cluster.driver.submit(
        single_stage_rdd(cluster.builder, tasks=1, seconds=100.0))

    def killer(env):
        yield env.timeout(5.0)
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="one strike")

    cluster.env.process(killer(cluster.env))
    with pytest.raises(JobFailedError):
        cluster.env.run(until=job.done)


def test_waiting_stage_submits_after_all_parents():
    """A join stage waits for both parents' shuffles."""
    cluster = MiniCluster()
    cluster.vm_executors(4)
    b = cluster.builder
    left = b.source("left", 2, compute_seconds=5.0)
    right = b.source("right", 2, compute_seconds=20.0)
    joined = b.join(left, right, "join", 2, MB, MB, compute_seconds=1.0)
    job = cluster.driver.submit(joined)
    cluster.env.run(until=job.done)
    join_starts = [a.metrics.launch_time for a in job.task_attempts
                   if a.spec.stage_id == 0]  # result stage was created first
    # The result (join) tasks start only after the slow right side (~20s).
    assert min(join_starts) >= 20.0


def test_empty_pending_taskset_rejected():
    from repro.spark.task_scheduler import TaskSet

    with pytest.raises(ValueError):
        TaskSet(0, 0, [])


def test_stage_complete_trace_sequence():
    cluster = MiniCluster()
    cluster.vm_executors(2)
    cluster.run_job(two_stage_rdd(cluster.builder, maps=2, reduces=2,
                                  shuffle_bytes=MB))
    events = [r.name for r in cluster.trace.select(category="dag")]
    assert events[0] == "job_submitted"
    assert events.count("stage_complete") == 2
    assert events[-1] == "job_complete"
