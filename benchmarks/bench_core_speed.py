"""Core simulator throughput: how fast does simulated time run?

Every other bench measures *simulated* outcomes (latency in simulated
seconds, dollars). This one measures the harness itself: raw kernel
event throughput (simulated events dispatched per wall-clock second)
and end-to-end job throughput on the ``multijob`` scenario — the same
shared-pool machinery ``repro serve`` drives continuously, so this
number bounds how much cluster a single serve process can simulate.

Two configurations are measured and written to ``BENCH_core.json`` at
the repository root (committed, so regressions in kernel or scheduler
hot paths show up in review diffs):

- the headline 12-job arrival burst on an 8-core FAIR pool (the
  baseline config every PR's number is compared against), and
- a 10× larger 120-job burst against the same pool, so the bench also
  exercises deep admission queues and long scheduler scans.

Measurement protocol: each figure is the **minimum wall time over
``repeats`` replays in one process** (first replay discarded as cold —
its figure is kept alongside for transparency). A single cold run
conflates import/allocator warm-up and OS scheduling noise with kernel
cost; min-of-N is the standard way (pyperf, pytest-benchmark) to read
the steady-state cost on a shared machine. ``events_processed`` and
``simulated_s`` are seed-deterministic and identical across replays —
only wall time varies — so the min is a noise filter, not a different
workload. Wall-clock figures are machine-dependent; the committed file
records the reference machine's numbers.

Run standalone for one-off measurement and profiling::

    PYTHONPATH=src python benchmarks/bench_core_speed.py            # measure
    PYTHONPATH=src python benchmarks/bench_core_speed.py --profile  # + hot frames
    PYTHONPATH=src python benchmarks/bench_core_speed.py --large    # 120-job config
    PYTHONPATH=src python benchmarks/bench_core_speed.py --check-floor 45000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.analysis.reporting import format_table
from repro.experiments import ExperimentSpec
from repro.experiments.runner import run_spec

#: The measured workload: a 12-job burst of small mixed jobs against one
#: shared 8-core FAIR pool, bounded admission so the queue is exercised.
CORE_SPEC = {"mix": "sparkpi,pagerank-small", "n_jobs": 12,
             "mean_interarrival_s": 20.0, "pool_cores": 8,
             "pool_style": "vm", "mode": "fair", "max_concurrent": 4}

#: 10× the headline burst against the same 8-core pool: with admission
#: capped at 4 the queue runs ~100 jobs deep, so scheduler scans, pool
#: re-sorts, and admission bookkeeping dominate differently than in the
#: short burst.
LARGE_JOBS = 120

#: Replays per figure (min-of-N protocol; see module docstring).
DEFAULT_REPEATS = 5

OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_core.json")

#: The pre-refactor reference figures (PR-8 era, single cold replay on
#: the reference machine) — kept in the written file so the trajectory
#: reads directly from the committed artifact.
BASELINE = {"events_per_sec": 45915.1, "wall_s": 0.1420,
            "protocol": "single cold replay"}


def _spec(n_jobs: int = None, seed: int = 0) -> ExperimentSpec:
    extra = dict(CORE_SPEC)
    if n_jobs is not None:
        extra["n_jobs"] = n_jobs
    return ExperimentSpec(workload="multijob", scenario="multijob",
                          seed=seed, extra=extra)


def measure_core_speed(n_jobs: int = None, seed: int = 0,
                       repeats: int = DEFAULT_REPEATS) -> dict:
    """Timed multijob replays reduced to the throughput figures.

    Runs the same deterministic replay ``repeats`` times and reports
    throughput at the minimum wall time (plus the cold and median
    figures, so the noise band is visible in the artifact).
    """
    walls = []
    record = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        record = run_spec(_spec(n_jobs=n_jobs, seed=seed))
        walls.append(time.perf_counter() - started)
        assert record.error is None and not record.failed, record.error
    m = record.metrics
    events = int(m["events_processed"])
    jobs = int(m["jobs"])
    wall_s = min(walls)
    ordered = sorted(walls)
    return {
        "scenario": "multijob",
        "params": dict(CORE_SPEC, n_jobs=jobs, seed=seed),
        "jobs": jobs,
        "events_processed": events,
        "simulated_s": record.duration_s,
        "repeats": len(walls),
        "wall_s": wall_s,
        "wall_s_cold": walls[0],
        "wall_s_median": ordered[len(ordered) // 2],
        "events_per_sec": events / wall_s,
        "jobs_per_sec": jobs / wall_s,
        "sim_speedup": record.duration_s / wall_s,
    }


def profile_core_speed(n_jobs: int = None, seed: int = 0,
                       top_n: int = 12) -> dict:
    """One replay under the serve SamplingProfiler; returns its report.

    Statistical (wall-clock sampled), so frame fractions wobble between
    runs — read them as a ranking, not as exact percentages.
    """
    from repro.observability.serve_obs import SamplingProfiler

    profiler = SamplingProfiler(interval_s=0.001, top_n=top_n)
    with profiler:
        run_spec(_spec(n_jobs=n_jobs, seed=seed))
    return {
        "samples": profiler.sample_count,
        "buckets": {k: round(v, 4)
                    for k, v in sorted(profiler.bucket_fractions().items())},
        "top_frames": [[label, count]
                       for label, count in profiler.top_frames(top_n)],
    }


def run_core_bench(repeats: int = DEFAULT_REPEATS) -> dict:
    """The full artifact written to ``BENCH_core.json``: headline config,
    10× config, trajectory vs the committed baseline, and one sampled
    profile of the headline replay."""
    headline = measure_core_speed(repeats=repeats)
    large = measure_core_speed(n_jobs=LARGE_JOBS,
                               repeats=max(2, repeats - 2))
    result = dict(headline)
    result["protocol"] = (f"min wall over {headline['repeats']} in-process "
                          f"replays (cold + median recorded alongside)")
    result["speedup_vs_baseline"] = round(
        headline["events_per_sec"] / BASELINE["events_per_sec"], 3)
    result["baseline"] = dict(BASELINE)
    result["large"] = large
    # Profile the 10× config: ten times the samples for the same price.
    result["profile"] = profile_core_speed(n_jobs=LARGE_JOBS)
    return result


def _emit_tables(result: dict, emit) -> None:
    def rows(figures):
        return [["events processed", figures["events_processed"]],
                ["simulated seconds", f"{figures['simulated_s']:.0f}"],
                ["wall seconds (min of "
                 f"{figures['repeats']})", f"{figures['wall_s']:.3f}"],
                ["wall seconds (cold)", f"{figures['wall_s_cold']:.3f}"],
                ["events/sec", f"{figures['events_per_sec']:,.0f}"],
                ["jobs/sec", f"{figures['jobs_per_sec']:.2f}"],
                ["sim-time speedup", f"{figures['sim_speedup']:,.0f}x"]]

    emit("Core simulator throughput (multijob, 12 jobs, 8-core FAIR pool)",
         format_table(["metric", "value"], rows(result)))
    emit(f"Core simulator throughput ({LARGE_JOBS} jobs, same pool)",
         format_table(["metric", "value"], rows(result["large"])))
    emit("vs committed baseline",
         format_table(["metric", "value"],
                      [["baseline events/sec",
                        f"{result['baseline']['events_per_sec']:,.0f}"],
                       ["speedup", f"{result['speedup_vs_baseline']:.2f}x"]]))


def test_core_speed(benchmark, emit):
    from benchmarks.conftest import run_once

    result = run_once(benchmark, run_core_bench)
    _emit_tables(result, emit)
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")
    # The kernel dispatches thousands of events per wall second even on
    # modest hardware; order-of-magnitude floors only, so the assertion
    # survives CI-grade machines. (The 12-job burst dispatches ~6.5k
    # events, deterministically per seed.)
    assert result["events_processed"] > 5_000
    assert result["events_per_sec"] > 5_000
    assert result["jobs_per_sec"] > 0.2
    assert result["sim_speedup"] > 10
    assert result["large"]["jobs"] == LARGE_JOBS
    assert result["large"]["events_processed"] > result["events_processed"]


# ---------------------------------------------------------------------------
# Smoke
# ---------------------------------------------------------------------------

@pytest.mark.smoke
def test_smoke_core_speed_counts_events():
    result = measure_core_speed(n_jobs=3, repeats=2)
    assert result["jobs"] == 3
    assert result["events_processed"] > 1_000
    assert result["events_per_sec"] > 0
    assert result["wall_s"] <= result["wall_s_cold"]
    # Same seed, same spec => the deterministic figures repeat exactly.
    again = measure_core_speed(n_jobs=3, repeats=1)
    assert again["events_processed"] == result["events_processed"]
    assert again["simulated_s"] == result["simulated_s"]


@pytest.mark.smoke
def test_smoke_profile_mode_attributes_samples():
    report = profile_core_speed(n_jobs=3)
    assert report["samples"] > 0
    assert report["buckets"]
    assert report["top_frames"]


# ---------------------------------------------------------------------------
# Standalone CLI (used by `make bench-core` and the CI perf floor)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="replays per figure (min-of-N protocol)")
    parser.add_argument("--large", action="store_true",
                        help=f"measure the {LARGE_JOBS}-job config instead")
    parser.add_argument("--profile", action="store_true",
                        help="also run one replay under the sampling "
                             "profiler and print the hottest frames")
    parser.add_argument("--write", action="store_true",
                        help=f"write the full artifact to {OUT_PATH}")
    parser.add_argument("--check-floor", type=float, metavar="EVENTS_PER_SEC",
                        help="exit non-zero if headline events/sec lands "
                             "below this floor (CI regression gate)")
    args = parser.parse_args(argv)

    if args.write:
        result = run_core_bench(repeats=args.repeats)
        with open(OUT_PATH, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {OUT_PATH}")
        figures = result
    else:
        figures = measure_core_speed(
            n_jobs=LARGE_JOBS if args.large else None, repeats=args.repeats)

    print(f"{figures['jobs']} jobs, {figures['events_processed']} events: "
          f"{figures['events_per_sec']:,.0f} events/sec "
          f"(min {figures['wall_s']:.3f}s over {figures['repeats']} replays; "
          f"cold {figures['wall_s_cold']:.3f}s)")

    if args.profile:
        report = profile_core_speed(
            n_jobs=LARGE_JOBS if args.large else None)
        print(f"\nprofile: {report['samples']} samples")
        for bucket, frac in report["buckets"].items():
            print(f"  {bucket:<12} {frac:7.1%}")
        for label, count in report["top_frames"]:
            print(f"  {count:6d}  {label}")

    if args.check_floor is not None:
        if figures["events_per_sec"] < args.check_floor:
            print(f"FAIL: {figures['events_per_sec']:,.0f} events/sec is "
                  f"below the floor of {args.check_floor:,.0f}")
            return 1
        print(f"floor ok: {figures['events_per_sec']:,.0f} >= "
              f"{args.check_floor:,.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
