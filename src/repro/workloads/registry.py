"""Workload registry: construct workloads from (name, params).

This is the name space :class:`~repro.experiments.spec.ExperimentSpec`
resolves workloads through, and the one the CLI lists. Parametric
entries (``synthetic``, ``heterogeneous``) forward ``params`` to the
workload constructor; the paper workloads are fixed setups and take
none.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.workloads.base import Workload
from repro.workloads.generators import HeterogeneousWorkload, SyntheticWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.sort import SortWorkload
from repro.workloads.sparkpi import SparkPiWorkload
from repro.workloads.tpcds import TPCDS_QUERIES, TPCDSWorkload

#: name -> workload factory.
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "pagerank": PageRankWorkload,
    "pagerank-small": PageRankWorkload.small,
    "pagerank-medium": PageRankWorkload.medium,
    "pagerank-large": PageRankWorkload.large,
    "kmeans": KMeansWorkload,
    "sparkpi": SparkPiWorkload,
    "sort": SortWorkload,
    "synthetic": SyntheticWorkload,
    "heterogeneous": HeterogeneousWorkload,
    **{f"tpcds-{q}": (lambda q=q: TPCDSWorkload(q)) for q in TPCDS_QUERIES},
}


def make_workload(name: str, **params: Any) -> Workload:
    """Build the named workload, forwarding params to its constructor."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for workload {name!r}: {exc}") from None
