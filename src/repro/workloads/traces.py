"""Diurnal demand traces for the Figure 2 illustration.

Figure 2 sketches "average predicted workload needs (in terms of number
of executors, one per core) with 95 % confidence bands over a typical
workday": a double-peaked business-hours curve, with the true demand
w(t) wandering around the prediction — occasionally above m(t)+2σ(t)
(the t₁ shortfall SplitServe bridges with Lambdas) and occasionally
below m(t)−2σ(t) (the t₂ idle capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.autoscaler import DemandPoint


@dataclass
class DiurnalTrace:
    """A synthetic but realistically shaped 24 h demand trace.

    The mean follows a double-peak workday (morning and afternoon peaks,
    lunch dip, quiet night); σ(t) is proportional to the mean; the actual
    demand adds AR(1)-correlated noise so excursions persist for a few
    samples, as real workloads' do.
    """

    base_cores: float = 20.0
    peak_cores: float = 120.0
    sigma_fraction: float = 0.12
    sample_minutes: float = 5.0
    noise_sigma_multiplier: float = 1.25
    ar_coefficient: float = 0.7
    seed: int = 42

    def mean_at(self, hour: float) -> float:
        """m(t): the predicted demand at ``hour`` in [0, 24)."""
        morning = math.exp(-((hour - 10.5) ** 2) / (2 * 2.2 ** 2))
        afternoon = math.exp(-((hour - 15.5) ** 2) / (2 * 2.0 ** 2))
        lunch_dip = 0.25 * math.exp(-((hour - 12.75) ** 2) / (2 * 0.7 ** 2))
        shape = max(0.0, morning + 0.9 * afternoon - lunch_dip)
        return self.base_cores + (self.peak_cores - self.base_cores) * min(1.0, shape)

    def sigma_at(self, hour: float) -> float:
        return self.sigma_fraction * self.mean_at(hour)

    def generate(self, hours: float = 24.0) -> List[DemandPoint]:
        """Sample the trace; deterministic for a fixed seed."""
        if hours <= 0:
            raise ValueError("hours must be positive")
        rng = np.random.default_rng(self.seed)
        points: List[DemandPoint] = []
        samples = int(hours * 60 / self.sample_minutes)
        noise = 0.0
        for i in range(samples):
            t_s = i * self.sample_minutes * 60.0
            hour = (t_s / 3600.0) % 24.0
            mean = self.mean_at(hour)
            sigma = self.sigma_at(hour)
            innovation = rng.normal(0.0, sigma * self.noise_sigma_multiplier
                                    * math.sqrt(1 - self.ar_coefficient ** 2))
            noise = self.ar_coefficient * noise + innovation
            actual = max(0.0, mean + noise)
            points.append(DemandPoint(time_s=t_s, mean=mean, sigma=sigma,
                                      actual=actual))
        return points

    def shortfall_sample_exists(self, points: List[DemandPoint],
                                k: float = 2.0) -> bool:
        """True if some sample exceeds m(t) + k sigma(t) — Figure 2's t1."""
        return any(p.actual > p.mean + k * p.sigma for p in points)

    def idle_sample_exists(self, points: List[DemandPoint],
                           k: float = 2.0) -> bool:
        """True if some sample is below m(t) - k sigma(t) — Figure 2's t2."""
        return any(p.actual < p.mean - k * p.sigma for p in points)
