"""The system-wide VM/Lambda state (§4.2).

"This state keeps track of where the executors for a job are currently
running and which VM cores are currently free (if any)." The launching
facility reads it to serve core requests; the segueing facility updates
it as Lambdas drain onto VMs; the cost manager may share access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.spark.executor import Executor, HostKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.lambda_fn import LambdaInstance
    from repro.cloud.provisioner import CloudProvider
    from repro.cloud.vm import VirtualMachine


@dataclass
class ExecutorRecord:
    """Where one executor runs and since when."""

    executor: Executor
    kind: HostKind
    host_name: str
    registered_at: float
    released_at: Optional[float] = None


class ClusterState:
    """Tracks VM core occupancy and live Lambda-backed executors."""

    def __init__(self, provider: "CloudProvider") -> None:
        self.provider = provider
        self._records: Dict[str, ExecutorRecord] = {}

    # ------------------------------------------------------------------
    # VM capacity queries
    # ------------------------------------------------------------------

    def free_vm_cores(self) -> int:
        """Cores available right now across running VMs."""
        return sum(vm.free_cores for vm in self.provider.running_vms)

    def vms_with_free_cores(self) -> List["VirtualMachine"]:
        """Running VMs with at least one unallocated core, most-free
        first (pack new executors onto the emptiest instances to minimize
        inter-VM shuffle, mirroring the paper's placement)."""
        vms = [vm for vm in self.provider.running_vms if vm.free_cores > 0]
        return sorted(vms, key=lambda vm: -vm.free_cores)

    # ------------------------------------------------------------------
    # Executor tracking
    # ------------------------------------------------------------------

    def record_executor(self, executor: Executor) -> None:
        self._records[executor.executor_id] = ExecutorRecord(
            executor=executor,
            kind=executor.kind,
            host_name=executor.host_name,
            registered_at=executor.env.now,
        )

    def record_release(self, executor: Executor) -> None:
        record = self._records.get(executor.executor_id)
        if record is not None and record.released_at is None:
            record.released_at = executor.env.now

    def live_executors(self, kind: Optional[HostKind] = None) -> List[Executor]:
        out = []
        for record in self._records.values():
            if record.released_at is not None:
                continue
            if kind is not None and record.kind is not kind:
                continue
            out.append(record.executor)
        return out

    def executor_records(self) -> List[ExecutorRecord]:
        return list(self._records.values())

    @property
    def live_lambda_count(self) -> int:
        return len(self.live_executors(HostKind.LAMBDA))

    @property
    def live_vm_count(self) -> int:
        return len(self.live_executors(HostKind.VM))

    def describe(self) -> str:
        return (f"vm-executors={self.live_vm_count} "
                f"lambda-executors={self.live_lambda_count} "
                f"free-vm-cores={self.free_vm_cores()}")
