"""The planner's performance model: probes in, runtime predictions out.

Calibration runs two cheap probe simulations per workload — ``ss_R_vm``
(all slots VM-backed) and ``ss_R_la`` (all slots Lambda-backed) — and
reads each stage's task count, total task occupancy, and wall span out
of the probe records' dotted stage metrics. From those it builds a
:class:`WorkloadProfile` whose per-stage, per-executor-kind task times
already embody everything the simulator charges differently per kind:
shuffle through HDFS instead of local disk, Lambda network ceilings,
input re-reads. Per-kind overhead terms absorb whatever happens outside
the stage spans (startup, driver gaps), chosen so the model reproduces
the two probe endpoints *exactly* — hybrid predictions are then
interpolations between calibrated truths rather than free-floating
estimates.

Prediction itself is a tiny stage-sequential occupancy model:
each stage processes ``tasks`` units of work at a rate set by how many
VM and Lambda slots it can use and how fast each kind runs that stage's
tasks, plus a straggler tail measured at the probe. A split that
changes mid-job (segue to procured VMs, background scale-out) is
handled piecewise: work done before the changeover proceeds at the old
rate, the remainder at the new one.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Per-stage metric fields that count toward a task's slot occupancy.
#: ``run_seconds`` is fetch + input + compute + write; GC, deserialize
#: and spill are tracked separately but still hold the slot. Scheduler
#: delay is queue wait — time *without* a slot — and stays out.
_OCCUPANCY_FIELDS = ("run_seconds", "deserialize_seconds", "gc_seconds",
                     "spill_seconds")


@dataclass(frozen=True)
class StageProfile:
    """One stage's measured shape under each executor kind.

    VM task times are measured at two concurrency endpoints — the
    R-slot and the r-slot probe — and interpolated linearly in the
    stage's effective concurrency between them. That one empirical line
    captures the simulator's concurrency-dependent effects without
    naming them: shared-storage contention (more readers, slower
    fetches) pushes it one way, executor cache capacity (fewer
    executors, thrashing evictions and re-ingest) the other. Lambda
    task times have a single probe (all-R), so their storage-I/O share
    scales with concurrency explicitly instead.
    """

    stage_id: int
    tasks: int
    #: Concurrency the R-slot probes measured the stage at: min(R, n).
    probe_slots: int
    #: Concurrency of the r-slot VM probe: min(r, n).
    probe_avail_slots: int
    #: Mean per-task VM slot seconds at each probed concurrency.
    vm_task_full_s: float
    vm_task_avail_s: float
    #: Mean per-task Lambda seconds at probe_slots, split into compute
    #: (concurrency-independent) and storage I/O (scales with readers).
    lambda_compute_task_s: float
    lambda_io_task_s: float
    #: Straggler overhang: measured stage span minus the ideal
    #: (occupancy / slots) packing. Dominated by the last wave's
    #: slowest task, so it scales with the task time, not wave count.
    vm_tail_full_s: float
    vm_tail_avail_s: float
    lambda_tail_s: float

    def _interp(self, lo: float, hi: float, concurrency: int) -> float:
        c = max(1, min(concurrency, self.tasks))
        c_lo, c_hi = self.probe_avail_slots, self.probe_slots
        if c_hi <= c_lo:
            return hi
        frac = (c - c_lo) / (c_hi - c_lo)
        return lo + (hi - lo) * frac

    def vm_task_s(self, concurrency: int) -> float:
        """Mean per-task VM slot time at ``concurrency`` simultaneous
        tasks (interpolated between the two probed endpoints)."""
        return max(1e-9, self._interp(self.vm_task_avail_s,
                                      self.vm_task_full_s, concurrency))

    def vm_tail_s(self, concurrency: int) -> float:
        return max(0.0, self._interp(self.vm_tail_avail_s,
                                     self.vm_tail_full_s, concurrency))

    def lambda_task_s(self, concurrency: int = None) -> float:
        if concurrency is None:
            return self.lambda_compute_task_s + self.lambda_io_task_s
        scale = max(1, min(concurrency, self.tasks)) / self.probe_slots
        return max(1e-9,
                   self.lambda_compute_task_s + self.lambda_io_task_s * scale)


@dataclass(frozen=True)
class SplitCandidate:
    """One executable split decision: the planner's unit of search."""

    name: str
    #: Pre-provisioned VM slots available from t=0.
    vm_cores: int
    #: Lambda slots invoked at t=0.
    lambda_cores: int
    #: VM cores procured in the background (0 = no background VMs).
    segue_cores: int = 0
    #: When the procured cores become usable; required if segue_cores>0.
    segue_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.vm_cores < 0 or self.lambda_cores < 0 or self.segue_cores < 0:
            raise ValueError("core counts must be non-negative")
        if self.vm_cores + self.lambda_cores <= 0:
            raise ValueError("a split needs at least one slot at t=0")
        if self.segue_cores > 0 and self.segue_at_s is None:
            raise ValueError("segue_cores>0 needs segue_at_s")

    def to_policy(self) -> Dict[str, object]:
        """The ``ExperimentSpec.policy`` payload enforcing this split."""
        return {
            "candidate": self.name,
            "vm_cores": self.vm_cores,
            "lambda_cores": self.lambda_cores,
            "segue_cores": self.segue_cores,
            "segue_at_s": self.segue_at_s,
        }

    @classmethod
    def from_policy(cls, policy: Mapping[str, object]) -> "SplitCandidate":
        return cls(name=str(policy.get("candidate", "planned")),
                   vm_cores=int(policy["vm_cores"]),
                   lambda_cores=int(policy["lambda_cores"]),
                   segue_cores=int(policy.get("segue_cores", 0) or 0),
                   segue_at_s=policy.get("segue_at_s"))


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the planner knows about one workload, post-probes."""

    workload: str
    seed: int
    workload_params: Tuple[Tuple[str, object], ...]
    required_cores: int
    available_cores: int
    worker_itype: str
    slo_seconds: float
    vm_ready_delay_s: float
    segue_available_s: Optional[float]
    stages: Tuple[StageProfile, ...]
    #: Calibrated out-of-stage time per kind (startup, driver gaps);
    #: probe duration minus the sum of predicted stage spans, so probe
    #: configurations predict exactly. The VM overhead has one value
    #: per probed concurrency endpoint.
    vm_overhead_s: float
    vm_overhead_avail_s: float
    lambda_overhead_s: float
    #: Probe ground truth, kept for cost calibration and reporting.
    probe_vm_duration_s: float
    probe_vm_avail_duration_s: float
    probe_lambda_duration_s: float
    probe_vm_cost: float
    probe_vm_avail_cost: float
    probe_lambda_cost: float

    @property
    def shortfall_cores(self) -> int:
        return self.required_cores - self.available_cores

    @property
    def segue_ready_s(self) -> float:
        """When segue/scale-out VM cores become usable (matches
        :func:`repro.core.scenarios.run_split`'s default delay)."""
        if self.segue_available_s is not None:
            return self.segue_available_s
        return self.vm_ready_delay_s

    @property
    def mean_lambda_task_s(self) -> float:
        work = sum(s.lambda_task_s() * s.tasks for s in self.stages)
        tasks = sum(s.tasks for s in self.stages)
        return work / tasks if tasks else 0.0


class ProfileError(RuntimeError):
    """A probe run failed or produced no stage metrics."""


def _stage_ids(metrics: Mapping[str, object]) -> list:
    return sorted({int(key.split(".")[1]) for key in metrics
                   if key.startswith("stage.") and key.endswith(".tasks")})


def _occupancy(metrics: Mapping[str, object], sid: int) -> float:
    return sum(float(metrics.get(f"stage.{sid}.{f}", 0.0))
               for f in _OCCUPANCY_FIELDS)


def _io_seconds(metrics: Mapping[str, object], sid: int) -> float:
    """Storage-bound seconds of one stage: shuffle fetch + write as
    tracked per stage, plus the job's input-read seconds apportioned by
    each stage's share of input bytes (input time is only tracked
    job-wide)."""
    io = (float(metrics.get(f"stage.{sid}.shuffle_read_seconds", 0.0))
          + float(metrics.get(f"stage.{sid}.shuffle_write_seconds", 0.0)))
    total_in = sum(float(v) for k, v in metrics.items()
                   if k.startswith("stage.") and k.endswith(".input_bytes"))
    stage_in = float(metrics.get(f"stage.{sid}.input_bytes", 0.0))
    if total_in > 0 and stage_in > 0:
        io += (float(metrics.get("input_seconds_total", 0.0))
               * stage_in / total_in)
    return io


def _stage_profiles(vm_metrics: Mapping[str, object],
                    la_metrics: Mapping[str, object],
                    avail_metrics: Mapping[str, object],
                    probe_slots: int,
                    avail_slots: int) -> Tuple[StageProfile, ...]:
    ids = _stage_ids(vm_metrics)
    if not ids:
        raise ProfileError("probe record has no stage metrics")
    profiles = []
    for sid in ids:
        tasks = int(vm_metrics[f"stage.{sid}.tasks"])
        if tasks <= 0:
            continue
        w_vm = _occupancy(vm_metrics, sid)
        # A stage can be absent from a secondary probe only if the run
        # diverged structurally; fall back to the full-VM shape then.
        w_la = _occupancy(la_metrics, sid) or w_vm
        w_avail = _occupancy(avail_metrics, sid) or w_vm
        io_la = min(_io_seconds(la_metrics, sid) or
                    _io_seconds(vm_metrics, sid), w_la)
        span_vm = float(vm_metrics[f"stage.{sid}.duration_seconds"])
        span_la = float(la_metrics.get(f"stage.{sid}.duration_seconds",
                                       span_vm))
        span_avail = float(avail_metrics.get(
            f"stage.{sid}.duration_seconds", span_vm))
        slots = min(tasks, probe_slots)
        slots_avail = min(tasks, avail_slots)
        profiles.append(StageProfile(
            stage_id=sid, tasks=tasks,
            probe_slots=slots, probe_avail_slots=slots_avail,
            vm_task_full_s=w_vm / tasks,
            vm_task_avail_s=w_avail / tasks,
            lambda_compute_task_s=(w_la - io_la) / tasks,
            lambda_io_task_s=io_la / tasks,
            vm_tail_full_s=max(0.0, span_vm - w_vm / slots),
            vm_tail_avail_s=max(0.0, span_avail - w_avail / slots_avail),
            lambda_tail_s=max(0.0, span_la - w_la / slots),
        ))
    if not profiles:
        raise ProfileError("probe record has no non-empty stages")
    return tuple(profiles)


def _probe_avail(workload: str, seed: int, conf) -> "object":
    """The r-slot pure-VM probe: the one calibration corner the eight
    fixed scenarios do not cover with SplitServe billing, run through
    :func:`repro.core.scenarios.run_split` on its own runtime."""
    from repro.cluster.runtime import ClusterRuntime
    from repro.core.scenarios import run_split
    runtime = ClusterRuntime(seed, trace_enabled=False)
    return run_split(workload, runtime,
                     vm_cores=workload.spec.available_cores,
                     lambda_cores=0, conf=conf)


def build_profile(workload: str, seed: int = 0,
                  workload_params: Optional[Mapping[str, object]] = None
                  ) -> WorkloadProfile:
    """Run the three probe simulations and fit a :class:`WorkloadProfile`.

    Probes — ``ss_R_vm``, ``ss_R_la``, and a pure-VM run at the r
    available cores — execute in-process through :func:`run_spec` /
    :func:`~repro.core.scenarios.run_split` (never the disk cache), so
    profile construction is deterministic for (workload, params, seed)
    and safe inside parallel experiment workers.
    """
    from repro.experiments.runner import run_spec
    from repro.experiments.spec import ExperimentSpec
    params = dict(workload_params or {})
    records = {}
    for scenario in ("ss_R_vm", "ss_R_la"):
        record = run_spec(ExperimentSpec(workload, scenario, seed=seed,
                                         workload_params=params))
        if record.failed or record.error:
            raise ProfileError(
                f"probe {scenario} failed for {workload!r}: "
                f"{record.failure_reason or record.error}")
        records[scenario] = record
    vm_rec, la_rec = records["ss_R_vm"], records["ss_R_la"]
    spec_obj = vm_rec.spec.make_workload()
    spec = spec_obj.spec
    if spec.available_cores < spec.required_cores:
        avail = _probe_avail(spec_obj, seed, vm_rec.spec.conf())
        if avail.failed:
            raise ProfileError(
                f"r-core probe failed for {workload!r}: "
                f"{avail.failure_reason}")
        avail_metrics = avail.to_record().metrics
        avail_duration, avail_cost = avail.duration_s, avail.cost
    else:
        # r == R: the full-VM probe already is the r-core corner.
        avail_metrics = vm_rec.metrics
        avail_duration, avail_cost = vm_rec.duration_s, vm_rec.cost
    stages = _stage_profiles(vm_rec.metrics, la_rec.metrics, avail_metrics,
                             probe_slots=spec.required_cores,
                             avail_slots=spec.available_cores)
    profile = WorkloadProfile(
        workload=workload, seed=seed,
        workload_params=tuple(sorted(params.items())),
        required_cores=spec.required_cores,
        available_cores=spec.available_cores,
        worker_itype=spec.worker_itype,
        slo_seconds=spec.slo_seconds,
        vm_ready_delay_s=spec.vm_ready_delay_s,
        segue_available_s=spec.segue_available_s,
        stages=stages,
        vm_overhead_s=0.0, vm_overhead_avail_s=0.0, lambda_overhead_s=0.0,
        probe_vm_duration_s=vm_rec.duration_s,
        probe_vm_avail_duration_s=avail_duration,
        probe_lambda_duration_s=la_rec.duration_s,
        probe_vm_cost=vm_rec.cost,
        probe_vm_avail_cost=avail_cost,
        probe_lambda_cost=la_rec.cost,
    )
    # Calibrate the out-of-stage overheads so all three probe corners
    # predict exactly (zero error there by construction).
    model = PerformanceModel(profile)
    raw_vm = model._stage_total(spec.required_cores, 0, None)
    raw_avail = model._stage_total(spec.available_cores, 0, None)
    raw_la = model._stage_total(0, spec.required_cores, None)
    return dataclasses.replace(
        profile,
        vm_overhead_s=vm_rec.duration_s - raw_vm,
        vm_overhead_avail_s=avail_duration - raw_avail,
        lambda_overhead_s=la_rec.duration_s - raw_la)


@dataclass
class PerformanceModel:
    """Analytical runtime predictor over one :class:`WorkloadProfile`."""

    profile: WorkloadProfile

    def predict_runtime(self, candidate: SplitCandidate) -> float:
        """Predicted job duration (seconds) under ``candidate``."""
        total = self._stage_total(candidate.vm_cores,
                                  candidate.lambda_cores,
                                  self._changeover(candidate))
        return total + self._overhead(candidate)

    # -- internals --------------------------------------------------------

    def _changeover(self, candidate: SplitCandidate
                    ) -> Optional[Tuple[float, int, int]]:
        """(time, vm_cores', lambda_cores') once segue VMs are ready.

        Segueing converts Lambda slots one-for-one into the procured VM
        cores (``segue_to_vm`` drains as many Lambdas as cores it
        adds); with no Lambdas running it is plain scale-out.
        """
        if candidate.segue_cores <= 0:
            return None
        converted = min(candidate.lambda_cores, candidate.segue_cores)
        return (float(candidate.segue_at_s),
                candidate.vm_cores + candidate.segue_cores,
                candidate.lambda_cores - converted)

    def _stage_time(self, stage: StageProfile, vm: int, la: int) -> float:
        """Span of one stage with ``vm``+``la`` slots (no changeover)."""
        n = stage.tasks
        vm_used = min(vm, n)
        la_used = min(la, max(0, n - vm_used))
        concurrency = vm_used + la_used
        if concurrency <= 0:
            return math.inf
        tau_vm = stage.vm_task_s(concurrency)
        tau_la = stage.lambda_task_s(concurrency)
        rate = vm_used / tau_vm + la_used / tau_la
        if rate <= 0.0:
            return math.inf
        # The straggler tail tracks the task-time scale: slower tasks
        # leave a proportionally larger last-wave overhang. VM tails
        # interpolate between their probed endpoints; the Lambda tail
        # scales with its task time.
        tail = vm_used * stage.vm_tail_s(concurrency)
        la_probe = stage.lambda_task_s()
        if la_probe > 0:
            tail += la_used * stage.lambda_tail_s * tau_la / la_probe
        return n / rate + tail / concurrency

    def _stage_total(self, vm: int, la: int,
                     changeover: Optional[Tuple[float, int, int]]) -> float:
        """Sum of stage spans, piecewise across the changeover point."""
        t = 0.0
        for stage in self.profile.stages:
            before = self._stage_time(stage, vm, la)
            if changeover is None:
                t += before
                continue
            at, vm2, la2 = changeover
            if t >= at:
                t += self._stage_time(stage, vm2, la2)
            elif t + before <= at or not math.isfinite(before):
                t += before
            else:
                # Stage straddles the changeover: the fraction of its
                # work finished by then ran at the old rate, the rest
                # runs at the new one.
                done = (at - t) / before
                t = at + (1.0 - done) * self._stage_time(stage, vm2, la2)
        return t

    def _overhead(self, candidate: SplitCandidate) -> float:
        """Out-of-stage time, blended by the initial slot mix (the VM
        term interpolated between the r- and R-core probe values)."""
        p = self.profile
        vm, la = candidate.vm_cores, candidate.lambda_cores
        lo, hi = p.available_cores, p.required_cores
        if hi > lo:
            frac = min(1.0, max(0.0, (vm + la - lo) / (hi - lo)))
            ov_vm = (p.vm_overhead_avail_s
                     + (p.vm_overhead_s - p.vm_overhead_avail_s) * frac)
        else:
            ov_vm = p.vm_overhead_s
        return (vm * ov_vm + la * p.lambda_overhead_s) / (vm + la)
