"""Tests for heterogeneity-aware task sizing (§7 future work)."""

import pytest

from repro.spark import SparkConf
from repro.workloads import HeterogeneousWorkload

from tests.spark.helpers import MiniCluster


def build_hybrid(uniform, vm_slots=2, lambda_slots=4, memory_mb=768,
                 total=120.0):
    cluster = MiniCluster()
    cluster.vm_executors(vm_slots)
    cluster.lambda_executors(lambda_slots, memory_mb=memory_mb)
    workload = HeterogeneousWorkload(
        total_core_seconds=total, vm_tasks=vm_slots,
        lambda_tasks=lambda_slots, lambda_speed=memory_mb / 1536.0,
        uniform=uniform)
    return cluster, workload


def test_validation():
    with pytest.raises(ValueError):
        HeterogeneousWorkload(vm_tasks=0, lambda_tasks=0)
    with pytest.raises(ValueError):
        HeterogeneousWorkload(lambda_speed=0.0)
    with pytest.raises(ValueError):
        HeterogeneousWorkload(total_core_seconds=-1)


def test_sized_tasks_carry_kind_preference():
    w = HeterogeneousWorkload(vm_tasks=2, lambda_tasks=3)
    final = w.build(5)
    source = final.deps[0].parent
    assert source.kind_preference(0) == "vm"
    assert source.kind_preference(2) == "lambda"
    # VM tasks are bigger than Lambda tasks.
    assert source.compute_seconds(0) > source.compute_seconds(4)


def test_uniform_variant_has_no_preference():
    w = HeterogeneousWorkload(uniform=True, vm_tasks=2, lambda_tasks=3)
    source = w.build(5).deps[0].parent
    assert source.kind_preference is None
    assert source.compute_seconds(0) == source.compute_seconds(4)


def test_sized_tasks_land_on_matching_kind():
    cluster, workload = build_hybrid(uniform=False)
    job = cluster.driver.submit(workload.build(6))
    cluster.env.run(until=job.done)
    for attempt in job.task_attempts:
        sized_for = attempt.spec.sized_for
        if sized_for is None:
            continue
        kind = "lambda" if attempt.executor_id.startswith("la-") else "vm"
        assert kind == sized_for


def test_sized_beats_uniform_makespan():
    cluster_u, workload_u = build_hybrid(uniform=True)
    job_u = cluster_u.driver.submit(workload_u.build(6))
    cluster_u.env.run(until=job_u.done)

    cluster_s, workload_s = build_hybrid(uniform=False)
    job_s = cluster_s.driver.submit(workload_s.build(6))
    cluster_s.env.run(until=job_s.done)
    assert job_s.duration < job_u.duration


def test_kind_preference_relaxes_rather_than_deadlocks():
    """All-VM cluster running Lambda-sized tasks must still finish: the
    preference relaxes after the locality wait."""
    cluster = MiniCluster()
    cluster.vm_executors(2)
    workload = HeterogeneousWorkload(total_core_seconds=30.0,
                                     vm_tasks=1, lambda_tasks=3)
    job = cluster.driver.submit(workload.build(4))
    cluster.env.run(until=job.done)
    assert not job.failed
