#!/usr/bin/env python3
"""Segueing in action: the Figure 7 story, rendered as ASCII timelines.

Runs PageRank three ways — all-VM vanilla Spark, SplitServe hybrid
(3 VM cores + 13 Lambdas), and hybrid with a segue to VM cores that
free up at 45 s — then prints each run's executor timeline so you can
watch the Lambdas drain onto the freed VM cores without a single task
failure.

Run:  python examples/pagerank_segue.py
"""

from repro.analysis.timeline import build_timeline
from repro.core import run_scenario
from repro.experiments import ExperimentSpec


def main() -> None:
    setups = [
        ("spark_R_vm", "(i) Vanilla Spark on 16 VM cores"),
        ("ss_hybrid", "(ii) SplitServe: 3 VM cores + 13 Lambdas"),
        ("ss_hybrid_segue",
         "(iii) as (ii), segue to VM cores freed at 45 s"),
    ]
    for scenario, title in setups:
        result = run_scenario(ExperimentSpec("pagerank", scenario),
                              keep_trace=True)
        timeline = build_timeline(result.trace)
        print(f"\n{title} — finished in {result.duration_s:.1f}s, "
              f"cost ${result.cost:.4f}")
        print(timeline.render(width=64))
        if timeline.segue_time is not None:
            lambda_spend = result.cost_breakdown.get("lambda", 0.0)
            print(f"segue commenced at t={timeline.segue_time:.1f}s; "
                  f"Lambda spend ${lambda_spend:.4f}")

    print("\nKey observation: in (iii) every Lambda finishes its current "
          "task and deregisters — no Failed tasks, no lineage rollback — "
          "exactly the graceful decommissioning of §4.3.")


if __name__ == "__main__":
    main()
