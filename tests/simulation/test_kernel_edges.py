"""Edge-case tests for the simulation kernel's condition/interrupt paths."""

import pytest

from repro.simulation import AllOf, AnyOf, Environment, Interrupt


def test_allof_fails_if_any_constituent_fails():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        t = env.timeout(10)
        try:
            yield AllOf(env, [t, gate])
        except ValueError as exc:
            caught.append((env.now, str(exc)))

    def failer(env):
        yield env.timeout(2)
        gate.fail(ValueError("constituent died"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == [(2, "constituent died")]


def test_anyof_success_wins_over_later_failure():
    env = Environment()
    gate = env.event()
    results = []

    def waiter(env):
        fast = env.timeout(1, value="ok")
        got = yield AnyOf(env, [fast, gate])
        results.append(list(got.values()))

    def failer(env):
        yield env.timeout(5)
        gate.fail(RuntimeError("too late to matter"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()  # the late failure must not crash the run
    assert results == [["ok"]]


def test_condition_rejects_cross_environment_events():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError, match="different environments"):
        AllOf(env_a, [env_a.timeout(1), env_b.timeout(1)])


def test_interrupt_cause_can_be_any_object():
    env = Environment()
    causes = []

    def worker(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            causes.append(intr.cause)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt(cause={"reason": "structured", "code": 7})

    victim = env.process(worker(env))
    env.process(interrupter(env, victim))
    env.run()
    assert causes == [{"reason": "structured", "code": 7}]


def test_process_cannot_interrupt_itself():
    env = Environment()

    def narcissist(env):
        process = env.active_process
        process.interrupt()
        yield env.timeout(1)

    p = env.process(narcissist(env))
    with pytest.raises(RuntimeError, match="cannot interrupt itself"):
        env.run(until=p)


def test_double_interrupt_delivers_both():
    env = Environment()
    seen = []

    def worker(env):
        for _ in range(2):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                seen.append(intr.cause)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt(cause="first")
        victim.interrupt(cause="second")

    victim = env.process(worker(env))
    env.process(interrupter(env, victim))
    env.run(until=victim)
    assert seen == ["first", "second"]


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run(until=1)  # processes the event
    assert env.run(until=ev) == "early"


def test_process_exception_not_caught_propagates_from_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("child blew up")

    def parent(env):
        yield env.process(child(env))

    p = env.process(parent(env))
    with pytest.raises(KeyError):
        env.run(until=p)


def test_timeout_value_passthrough_in_conditions():
    env = Environment()
    out = []

    def waiter(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        got = yield AllOf(env, [t1, t2])
        out.append((got[t1], got[t2]))

    env.process(waiter(env))
    env.run()
    assert out == [("a", "b")]
