"""The service runtime behind ``repro serve``: a long-lived cluster
serving many concurrent job submissions.

Every CLI invocation so far has been batch: build a ClusterRuntime, run
one spec, throw the world away. :class:`ServeRuntime` inverts that —
one process owns a shared simulated cluster for its whole lifetime and
serves traffic against it:

- **Admission control.** Submissions pass a bounded FIFO admission
  queue: at most ``max_concurrent`` jobs run at once, up to
  ``max_queue`` more wait in FIFO order (queued, never dropped), and
  beyond that the submission is rejected with structured backpressure
  (:class:`BackpressureError` → HTTP 503 + a *deterministically
  jittered* ``Retry-After``, so rejected clients never stampede back in
  lockstep).
- **Spec jobs** (``mode="spec"``, the default) execute one isolated
  :class:`~repro.experiments.spec.ExperimentSpec` on a worker thread
  via :func:`~repro.experiments.runner.run_spec` — deterministic, so a
  served job's metrics byte-match the same spec run through
  ``repro run --json``.
- **Pooled jobs** (``mode="pooled"``) join the long-lived
  ClusterRuntime/AppManager as :class:`~repro.cluster.apps.ClusterApp`
  arrivals competing for the shared FIFO/FAIR executor pool. A single
  driver thread owns all simulation state and advances simulated time
  in small steps, so new arrivals interleave with running apps at
  ``sim_step_s`` granularity.
- **Fault tolerance** (see :mod:`repro.api.resilience` and DESIGN.md
  §"Service resilience"): every job has a wall-clock deadline and a
  bounded retry budget — a transient worker failure (a crash, an
  injected fault, a Lambda invoke error) re-queues the job after an
  exponentially backed-off, deterministically jittered delay, while a
  deterministic failure or an exhausted budget lands it in a terminal
  ``failed`` state with a structured
  :class:`~repro.api.schemas.FailureCause`. No silent hangs: a reaper
  thread enforces deadlines even on wedged jobs. The Lambda-bridge
  path is wrapped by a :class:`~repro.api.resilience.CircuitBreaker`
  (consecutive invoke/throttle errors open it; while open the pool
  degrades to VM-only admission; a half-open probe closes it again),
  surfaced as ``serve.breaker.*`` metrics and CAT_SERVE events.
- **Durability.** With a ``state_dir`` configured, every accepted
  submission is journaled to a JSONL write-ahead log
  (:class:`~repro.api.journal.JobJournal`) before it is acknowledged; a
  restarted runtime recovers queued/running jobs idempotently (ids
  resume past everything ever acknowledged, so no duplicates) and
  :meth:`request_drain` checkpoints whatever a graceful shutdown could
  not finish.
- **Telemetry.** An :class:`EventHub` subscribes to the shared
  cluster's EventBus and additionally publishes control-plane lifecycle
  events (``serve.job_queued/started/finished/rejected/retrying/...``,
  registered in the closed taxonomy); ``GET /events`` streams it over
  SSE with bounded per-subscriber buffers and ``Last-Event-ID`` replay.

Thread-safety contract: all simulation objects are touched only by the
driver thread under ``_sim_lock``; HTTP readers take the same lock for
snapshots. The admission table has its own lock and never blocks on
the simulation, which is what keeps admission latency flat under load
(see ``benchmarks/bench_serve_load.py``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.api import schemas
from repro.api.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
    WorkerCrashError,
    is_transient,
    retry_after_s,
)
from repro.api.schemas import (
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    MODE_POOLED,
    MODE_SPEC,
    FailureCause,
    JobRequest,
    JobStatus,
)
from repro.observability.categories import (
    CAT_SERVE,
    CAT_TRACE,
    EV_BREAKER_CLOSED,
    EV_BREAKER_HALF_OPEN,
    EV_BREAKER_OPENED,
    EV_CHAOS_INJECTED,
    EV_DRAIN_COMPLETED,
    EV_DRAIN_STARTED,
    EV_JOB_DEADLINE_EXCEEDED,
    EV_JOB_FINISHED,
    EV_JOB_QUEUED,
    EV_JOB_RECOVERED,
    EV_JOB_REJECTED,
    EV_JOB_RETRYING,
    EV_JOB_STARTED,
    validate_event,
)
from repro.observability.serve_obs import (
    MetricFamily,
    MetricSample,
    RollingHistogram,
    SamplingProfiler,
    ServeTracer,
    SLOConfig,
    SLOTracker,
    profiler_families,
    prom_name,
    registry_families,
    render_prometheus,
    rolling_histogram_families,
    slo_families,
    trace_id_for_job,
)

__all__ = [
    "ServeConfig", "ServeRuntime", "EventHub", "Subscription",
    "BackpressureError", "UnknownJobError",
]

#: Cadence of the reaper thread (deadline/retry enforcement). Wall
#: clock; small enough that deadlines land within a few hundredths of a
#: second, large enough to be invisible in admission benchmarks.
_REAPER_TICK_S = 0.02


class BackpressureError(Exception):
    """Admission rejected — the HTTP layer maps this to 503 with a
    structured :class:`~repro.api.schemas.ErrorBody`. ``code`` is
    :data:`~repro.api.schemas.ERR_BACKPRESSURE` for a saturated queue
    or :data:`~repro.api.schemas.ERR_DRAINING` during graceful drain."""

    def __init__(self, message: str, detail: Dict[str, Any],
                 retry_after_s: float,
                 code: str = schemas.ERR_BACKPRESSURE) -> None:
        super().__init__(message)
        self.detail = detail
        self.retry_after_s = retry_after_s
        self.code = code


class UnknownJobError(KeyError):
    """No such job id (HTTP 404)."""


# ---------------------------------------------------------------------------
# Event hub
# ---------------------------------------------------------------------------

class Subscription:
    """One SSE consumer's bounded buffer.

    A slow consumer must never stall the simulation or starve other
    subscribers, so ``put`` drops (and counts) instead of blocking when
    the buffer is full — the drop accounting is deterministic: exactly
    the events published while the buffer sat full are lost, oldest
    kept. A dropped client reconnects with ``Last-Event-ID`` and
    replays what the ring still holds.
    """

    def __init__(self, depth: int) -> None:
        self._queue: Queue = Queue(maxsize=depth)
        self.depth = depth
        #: Events this subscriber lost to backpressure.
        self.dropped = 0

    def put(self, item: Dict[str, Any]) -> bool:
        try:
            self._queue.put_nowait(item)
            return True
        except Full:
            self.dropped += 1
            return False

    def get(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Next event; raises ``queue.Empty`` on timeout."""
        return self._queue.get(timeout=timeout)

    def qsize(self) -> int:
        return self._queue.qsize()


class EventHub:
    """Fan-in/fan-out for the served event stream.

    Exposes the ``record(time, category, name, **fields)`` duck type,
    so the shared cluster's EventBus treats it as one more subscriber;
    the ServeRuntime publishes its own lifecycle events through the
    same method. Events land in a bounded ring (for replay/snapshots)
    and are pushed to every live :class:`Subscription`; a slow consumer
    drops events rather than stalling the simulation.
    """

    def __init__(self, maxlen: int = 4096,
                 subscriber_depth: int = 10000) -> None:
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        self._subs: List[Subscription] = []
        # Immutable snapshot of ``_subs`` rebuilt on (un)subscribe, so
        # the publish path reads one reference instead of copying the
        # list under the lock on every event.
        self._subs_snapshot: Tuple[Subscription, ...] = ()
        self._lock = threading.Lock()
        self._seq = 0
        self._subscriber_depth = subscriber_depth
        self.dropped = 0

    def record(self, time: float, category: str, name: str,
               **fields: Any) -> None:
        validate_event(category, name)
        item = {"time": time, "category": category, "name": name,
                "fields": dict(fields)}
        with self._lock:
            self._seq += 1
            item["seq"] = self._seq
            self._ring.append(item)
        for sub in self._subs_snapshot:
            sub.put(item)  # a full buffer counts on the subscription

    def snapshot(self, limit: Optional[int] = None,
                 category: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            items = list(self._ring)
        if category:
            items = [i for i in items if i["category"] == category]
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def subscribe(self, replay: int = 0, after_seq: Optional[int] = None,
                  depth: Optional[int] = None
                  ) -> Tuple[Subscription, List[Dict[str, Any]]]:
        """A live subscription plus its backlog (atomically, so no
        event is missed or duplicated between replay and live).

        ``replay`` asks for the last N ring items; ``after_seq``
        (``Last-Event-ID`` reconnects) asks for every ring item with a
        sequence past the one the client saw, and wins over ``replay``.
        ``depth`` bounds the live buffer (defaults to the hub's).
        """
        sub = Subscription(depth or self._subscriber_depth)
        with self._lock:
            if after_seq is not None:
                items = [i for i in self._ring if i["seq"] > after_seq]
            elif replay > 0:
                items = list(self._ring)[-replay:]
            else:
                items = []
            self._subs.append(sub)
            self._subs_snapshot = tuple(self._subs)
        return sub, items

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
                self._subs_snapshot = tuple(self._subs)
                # Keep the departed consumer's losses in the total.
                self.dropped += sub.dropped

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"subscribers": len(self._subs),
                    "published": self._seq,
                    "dropped_total": self.dropped
                    + sum(s.dropped for s in self._subs)}


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass
class ServeConfig:
    """Control-plane and shared-cluster knobs for one server."""

    #: Jobs allowed to run concurrently (admission bound).
    max_concurrent: int = 8
    #: Submissions allowed to wait beyond the running set; the next one
    #: is rejected with 503 backpressure.
    max_queue: int = 256
    #: Seed of the shared cluster's RandomStreams.
    seed: int = 0
    #: Shared executor pool shape (the multijob vocabulary).
    pool_cores: int = 8
    lambda_cores: int = 0
    pool_style: str = "vm"              # "vm" | "hybrid_segue"
    mode: str = "fair"                  # scheduler-pool ordering
    #: AppManager bound on concurrently *admitted* pooled apps inside
    #: the simulation (None = unlimited; service admission still holds).
    pool_max_concurrent: Optional[int] = None
    #: Simulated seconds advanced per driver step — the granularity at
    #: which new pooled arrivals interleave with running apps.
    sim_step_s: float = 1.0
    #: Event-ring capacity for replay/snapshots.
    events_buffer: int = 4096
    #: Workload whose worker instance type sizes the pool VMs.
    worker_itype: Optional[str] = None
    #: Serve state directory; enables the crash-safe job journal
    #: (None = in-memory only, nothing survives a restart).
    state_dir: Optional[str] = None
    #: fsync the journal after every append (durable against power
    #: loss, slower; the default survives process crashes).
    journal_fsync: bool = False
    #: Default wall-clock deadline applied to jobs that do not carry
    #: their own ``deadline_s`` (None = no deadline).
    default_deadline_s: Optional[float] = None
    #: Default bounded-retry cap for transient worker failures.
    max_attempts: int = 3
    #: First-retry backoff (doubles per attempt, deterministic jitter).
    retry_base_backoff_s: float = 0.05
    #: Consecutive Lambda-bridge failures that open the breaker.
    breaker_failure_threshold: int = 5
    #: Seconds an open breaker waits before its half-open probe.
    breaker_cooldown_s: float = 30.0
    #: Graceful-drain budget: seconds running jobs get to finish before
    #: the rest are checkpointed.
    drain_deadline_s: float = 30.0
    #: SLO objectives backing /readyz and the serve.slo.* metric
    #: families (see serve_obs.SLOConfig for semantics).
    slo_window_s: float = 60.0
    slo_availability_target: float = 0.99
    slo_latency_p99_s: float = 0.25
    slo_max_burn_rate: float = 14.4
    #: Attach the sampling profiler to the driver thread (off by
    #: default; `repro serve --profile`). Exposes serve.profile.*
    #: families on /metrics.
    profile: bool = False
    profile_interval_s: float = 0.005
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        if self.sim_step_s <= 0:
            raise ValueError("sim_step_s must be positive")
        if self.pool_style not in ("vm", "hybrid_segue"):
            raise ValueError(f"pool_style must be vm or hybrid_segue, "
                             f"got {self.pool_style!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if (self.default_deadline_s is not None
                and self.default_deadline_s <= 0):
            raise ValueError("default_deadline_s must be positive")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")
        if self.retry_base_backoff_s < 0:
            raise ValueError("retry_base_backoff_s cannot be negative")
        if self.profile_interval_s <= 0:
            raise ValueError("profile_interval_s must be positive")
        # Range checks for the SLO knobs live in SLOConfig; build one
        # here so a bad value fails at config time, not first scrape.
        self.slo_config()

    def slo_config(self) -> SLOConfig:
        return SLOConfig(window_s=self.slo_window_s,
                         availability_target=self.slo_availability_target,
                         latency_p99_s=self.slo_latency_p99_s,
                         max_burn_rate=self.slo_max_burn_rate)


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

class _Job:
    """Internal job state; :meth:`status` renders the public model."""

    def __init__(self, job_id: str, request: JobRequest, spec) -> None:
        self.id = job_id
        self.request = request
        self.spec = spec                      # None for pooled jobs
        self.state = JOB_QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.record = None                    # RunRecord (spec jobs)
        self.app = None                       # ClusterApp (pooled jobs)
        self.metrics: Dict[str, Any] = {}
        self.plan: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.done = threading.Event()
        # Resilience state (see repro.api.resilience):
        self.attempts = 0
        self.failure: Optional[FailureCause] = None
        #: Monotonic instant past which the job is failed (None = no
        #: deadline).
        self.deadline_at: Optional[float] = None
        #: Monotonic instant a scheduled retry becomes due.
        self.retry_at: Optional[float] = None
        #: Chaos: crash this many upcoming executions at the worker
        #: boundary (consumed one per attempt).
        self.crash_attempts = 0
        #: True once completion no longer owns a running slot (a
        #: deadline-killed job's worker thread may still be unwinding).
        self.abandoned = False

    def status(self, queue_position: Optional[int] = None) -> JobStatus:
        duration = cost = None
        record_dict = None
        slo_met = None
        if self.record is not None:
            duration = self.record.duration_s
            cost = self.record.cost
            record_dict = self.record.to_dict()
        elif self.app is not None and self.app.latency_s is not None:
            duration = self.app.latency_s
        if (self.request.slo_s is not None and duration is not None
                and duration == duration):  # not NaN
            slo_met = duration <= self.request.slo_s
        return JobStatus(
            job_id=self.id, state=self.state, request=self.request,
            spec_hash=self.spec.spec_hash() if self.spec is not None
            else None,
            queue_position=queue_position,
            submitted_at=self.submitted_at, started_at=self.started_at,
            finished_at=self.finished_at,
            duration_s=duration, cost=cost, slo_met=slo_met,
            metrics=dict(self.metrics), plan=self.plan,
            record=record_dict, error=self.error,
            attempts=self.attempts, failure=self.failure)


class _ChaosWindow:
    """One armed service-level fault with a wall-clock window."""

    def __init__(self, fault, due_at: float,
                 lift_at: Optional[float]) -> None:
        self.fault = fault
        self.due_at = due_at
        self.lift_at = lift_at
        self.applied = False
        self.lifted = lift_at is None
        self.undo = None                      # callable set on apply


# ---------------------------------------------------------------------------
# The service runtime
# ---------------------------------------------------------------------------

class ServeRuntime:
    """One long-lived cluster + admission layer behind the HTTP app."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.hub = EventHub(maxlen=self.config.events_buffer)
        self.started_at = time.time()
        self._t0 = time.monotonic()

        # Live observability plane (see repro.observability.serve_obs):
        # causal spans, rolling admission-latency window, SLO burn
        # rates, and (opt-in) the driver profiler.
        self.tracer = ServeTracer(self.hub, clock=self._now)
        self.slo = SLOTracker(self.config.slo_config())
        self.admission_latency = RollingHistogram(
            window_s=self.config.slo_window_s)
        self.journal_latency = RollingHistogram(
            window_s=self.config.slo_window_s)
        self.profiler: Optional[SamplingProfiler] = None

        # Admission state (its own lock; never blocks on the sim).
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}
        self._order: List[str] = []
        self._pending: Deque[_Job] = deque()
        self._running: set = set()
        self._awaiting_retry: List[_Job] = []
        self._ids = itertools.count(1)
        self._admitted = 0
        self._rejected = 0
        self._recovered = 0
        self._rejections = itertools.count(1)

        # Resilience plumbing.
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.max_attempts,
            base_backoff_s=self.config.retry_base_backoff_s)
        self.breaker: Optional[CircuitBreaker] = None
        self._journal = None
        self._crash_budget = 0
        self._crash_next_submissions = 0
        self._chaos_windows: List[_ChaosWindow] = []
        self._draining = False
        self._drained = threading.Event()

        # Shared simulated cluster (built in start(); owned by the
        # driver thread under _sim_lock).
        self._sim_lock = threading.RLock()
        self._sim_wakeup = threading.Condition(self._sim_lock)
        self._staged: Deque[Tuple[_Job, Any]] = deque()
        self._active: Dict[str, _Job] = {}
        self._app_index = itertools.count(0)
        self.cluster = None
        self.pool = None
        self.pools = None
        self.manager = None

        self._planners: Dict[Tuple[int, Optional[float]], Any] = {}
        self._workers = None
        self._driver: Optional[threading.Thread] = None
        self._reaper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServeRuntime":
        """Build the shared cluster, recover the journal, and start
        worker/driver/reaper threads. Idempotent; called by the app's
        lifespan/startup hook."""
        if self._started:
            return self
        self._started = True
        from concurrent.futures import ThreadPoolExecutor
        self._build_cluster()
        self._wrap_lambda_bridge()
        self._workers = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-serve-job")
        self._driver = threading.Thread(target=self._drive,
                                        name="repro-serve-driver",
                                        daemon=True)
        self._driver.start()
        self._reaper = threading.Thread(target=self._reap,
                                        name="repro-serve-reaper",
                                        daemon=True)
        self._reaper.start()
        if self.config.profile:
            self.profiler = SamplingProfiler(
                interval_s=self.config.profile_interval_s)
            self.profiler.start(self._driver.ident)
        self._open_journal()
        return self

    def close(self) -> None:
        """Stop threads; the cluster object stays readable."""
        if not self._started:
            return
        self._started = False
        self._stop.set()
        if self.profiler is not None:
            self.profiler.stop()
        with self._sim_wakeup:
            self._sim_wakeup.notify_all()
        if self._driver is not None:
            self._driver.join(timeout=5.0)
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
        if self._workers is not None:
            self._workers.shutdown(wait=True)
        if self._journal is not None:
            self._journal.close()

    def hard_stop(self) -> None:
        """Die like ``kill -9`` (tests/chaos): no drain, no checkpoint,
        the journal handle dropped mid-flight. Running worker threads
        are left to unwind on their own; nothing they finish after this
        point reaches the journal — exactly the state a crashed process
        leaves behind for :meth:`start` of the next incarnation."""
        if self._journal is not None:
            self._journal.close()
        self._started = False
        self._stop.set()
        if self.profiler is not None:
            self.profiler.stop()
        with self._sim_wakeup:
            self._sim_wakeup.notify_all()
        if self._workers is not None:
            self._workers.shutdown(wait=False, cancel_futures=True)

    def _build_cluster(self) -> None:
        from repro.cluster.apps import AppManager
        from repro.cluster.pool import ExecutorPool
        from repro.cluster.pools import PoolConfig, SchedulerPools
        from repro.cluster.runtime import ClusterRuntime
        from repro.spark.config import SparkConf

        cfg = self.config
        self.cluster = ClusterRuntime(cfg.seed, trace_enabled=False)
        self.cluster.bus.subscribe(self.hub)
        self.pools = SchedulerPools([PoolConfig("default", mode=cfg.mode)])
        self.pool = ExecutorPool(self.cluster, SparkConf(), self.pools)
        itype = cfg.worker_itype or self._default_itype()
        self.pool.provision_vm_cores(cfg.pool_cores, itype)
        if cfg.pool_style == "hybrid_segue" and cfg.lambda_cores > 0:
            self.pool.invoke_lambda_executors(cfg.lambda_cores)
        self.manager = AppManager(self.cluster, self.pool, self.pools,
                                  max_concurrent=cfg.pool_max_concurrent)

    def _wrap_lambda_bridge(self) -> None:
        """Put the circuit breaker between the pool and the provider's
        ``invoke_lambda``: consecutive invoke/throttle failures open
        it; while open, invocations fast-fail (the pool's existing
        degradation path turns that into VM-only admission) without
        touching the provider."""
        from repro.cloud.lambda_fn import (LambdaInvokeError,
                                           LambdaThrottledError)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            on_transition=self._on_breaker_transition)
        provider = self.cluster.provider
        inner = provider.invoke_lambda
        metrics = self.cluster.metrics

        def guarded(*args: Any, **kwargs: Any):
            if not self.breaker.allow():
                metrics.counter("serve.breaker.fast_fails").inc()
                raise LambdaThrottledError(
                    "circuit breaker open: lambda bridge suspended, "
                    "degrading to VM-only admission")
            try:
                result = inner(*args, **kwargs)
            except LambdaInvokeError:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            return result

        provider.invoke_lambda = guarded

    def _on_breaker_transition(self, old: str, new: str) -> None:
        metrics = self.cluster.metrics
        event = {BREAKER_OPEN: EV_BREAKER_OPENED,
                 BREAKER_HALF_OPEN: EV_BREAKER_HALF_OPEN,
                 BREAKER_CLOSED: EV_BREAKER_CLOSED}[new]
        if new == BREAKER_OPEN:
            metrics.counter("serve.breaker.opens").inc()
        elif new == BREAKER_CLOSED:
            metrics.counter("serve.breaker.closes").inc()
        metrics.gauge("serve.breaker.state").set(
            {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1,
             BREAKER_OPEN: 2}[new])
        self.hub.record(self._now(), CAT_SERVE, event, previous=old)
        # Every in-flight job is affected by a breaker transition, so
        # each open trace gets the annotation.
        self.tracer.annotate_active(f"breaker:{old}->{new}", state=new)

    def _open_journal(self) -> None:
        """Open (and recover) the WAL when a state dir is configured."""
        if self.config.state_dir is None:
            return
        from repro.api.journal import JobJournal
        self._journal = JobJournal(self.config.state_dir,
                                   fsync=self.config.journal_fsync,
                                   on_append=self._journal_append_observed)
        if self._journal.max_seq:
            self._ids = itertools.count(self._journal.max_seq + 1)
        for rec in self._journal.recovered_jobs():
            self._requeue_recovered(rec)

    def _journal_append_observed(self, seconds: float) -> None:
        """Journal hook: fold one append's write+flush(+fsync) latency
        into the rolling window and the registry."""
        self.journal_latency.observe(seconds)
        self.cluster.metrics.histogram(
            "serve.journal.append_latency_seconds").observe(seconds)

    def _requeue_recovered(self, rec) -> None:
        """Re-queue one journaled job from the previous incarnation."""
        try:
            request = JobRequest.from_dict(rec.request)
            spec = request.to_spec() if request.mode == MODE_SPEC else None
        except schemas.SchemaError as exc:
            # A journaled request this build can no longer parse is
            # terminal, not a crash loop.
            self._journal.finished(rec.job_id, JOB_FAILED,
                                   error=f"unrecoverable request: {exc}")
            return
        with self._lock:
            job = _Job(rec.job_id, request, spec)
            job.attempts = rec.attempts
            job.deadline_at = self._deadline_for(request)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._pending.append(job)
            self._recovered += 1
            self.hub.record(self._now(), CAT_SERVE, EV_JOB_RECOVERED,
                            job=job.id, workload=request.workload,
                            mode=request.mode,
                            prior_attempts=rec.attempts,
                            checkpointed=rec.checkpointed)
            self.cluster.metrics.counter("serve.jobs.recovered").inc()
            # The recovered job continues the trace its job id names —
            # trace ids are hash-derived, so the new incarnation's root
            # span lands in the same trace as the lost one's.
            self.tracer.begin_job(job.id, request.workload, request.mode,
                                  recovered=True,
                                  prior_attempts=rec.attempts)
            self._pump_locked()

    @staticmethod
    def _default_itype() -> str:
        from repro.workloads.registry import make_workload
        return make_workload("sparkpi").spec.worker_itype

    def _now(self) -> float:
        """Wall seconds since server start (the serve-event clock)."""
        return round(time.monotonic() - self._t0, 6)

    def _deadline_for(self, request: JobRequest) -> Optional[float]:
        deadline_s = (request.deadline_s
                      if request.deadline_s is not None
                      else self.config.default_deadline_s)
        if deadline_s is None:
            return None
        return time.monotonic() + deadline_s

    def _max_attempts_for(self, job: _Job) -> int:
        return (job.request.max_attempts
                if job.request.max_attempts is not None
                else self.retry_policy.max_attempts)

    # -- submission / admission -------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> JobStatus:
        """Validate, admission-check, journal, and enqueue one
        submission.

        O(1) and simulation-free: this is the path whose p99 latency
        the load bench reports. Raises
        :class:`~repro.api.schemas.SchemaError` on a bad payload and
        :class:`BackpressureError` when saturated or draining.
        """
        t_submit = time.perf_counter()
        request = JobRequest.from_dict(payload)
        if request.mode == MODE_SPEC:
            spec = request.to_spec()
        else:
            spec = None
            self._validate_pooled(request)

        with self._lock:
            if self._draining:
                self._rejected += 1
                self.slo.record_admission(False, 0.0)
                raise BackpressureError(
                    "server is draining; not admitting new jobs",
                    detail={"draining": True},
                    retry_after_s=self._retry_after_locked(request),
                    code=schemas.ERR_DRAINING)
            if (len(self._running) >= self.config.max_concurrent
                    and len(self._pending) >= self.config.max_queue):
                self._rejected += 1
                detail = {"running": len(self._running),
                          "queued": len(self._pending),
                          "max_concurrent": self.config.max_concurrent,
                          "max_queue": self.config.max_queue}
                self.hub.record(self._now(), CAT_SERVE, EV_JOB_REJECTED,
                                workload=request.workload,
                                mode=request.mode, **detail)
                self.slo.record_admission(False, 0.0)
                raise BackpressureError(
                    "admission queue saturated "
                    f"({len(self._running)} running, "
                    f"{len(self._pending)} queued)",
                    detail=detail,
                    retry_after_s=self._retry_after_locked(request))
            job = _Job(f"job-{next(self._ids):06d}", request, spec)
            job.deadline_at = self._deadline_for(request)
            if self._crash_next_submissions > 0:
                # Chaos: marked under the admission lock, so the crash
                # lands on exactly this job no matter how fast the pump
                # starts it.
                self._crash_next_submissions -= 1
                job.crash_attempts += 1
            # WAL discipline: journal before acknowledging.
            if self._journal is not None:
                self._journal.submitted(job.id, request.to_dict())
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._pending.append(job)
            self._admitted += 1
            self.hub.record(self._now(), CAT_SERVE, EV_JOB_QUEUED,
                            job=job.id, workload=request.workload,
                            mode=request.mode,
                            depth=len(self._pending),
                            running=len(self._running))
            # Root + admission spans open before the pump so the first
            # attempt lands inside the trace.
            self.tracer.begin_job(job.id, request.workload, request.mode)
            if self._journal is not None:
                self.tracer.annotate_job(job.id, "journal:submitted")
            position = len(self._pending) - 1
            self._pump_locked()
            latency_s = time.perf_counter() - t_submit
            self.admission_latency.observe(latency_s)
            self.slo.record_admission(True, latency_s)
            return job.status(queue_position=(
                position if job.state == JOB_QUEUED else None))

    def _retry_after_locked(self, request: JobRequest) -> float:
        """Deterministic, spread-out ``Retry-After`` for a rejection.

        Keyed on the submission's identity plus a per-server rejection
        counter — not ``random`` (the lint bans it) and not a constant
        (which would synchronize every shed client into one retry
        storm; see ISSUE 7)."""
        key = (f"{request.workload}:{request.seed}:"
               f"{next(self._rejections)}")
        return retry_after_s(key)

    def _validate_pooled(self, request: JobRequest) -> None:
        from repro.workloads.registry import WORKLOADS
        if request.workload not in WORKLOADS:
            raise schemas.SchemaError(
                f"unknown workload {request.workload!r} for a pooled "
                f"job; known: {', '.join(sorted(WORKLOADS))}")
        if self.pools is not None and request.pool not in self.pools.pools:
            raise schemas.SchemaError(
                f"unknown scheduler pool {request.pool!r}; "
                f"known: {sorted(self.pools.pools)}")

    def _pump_locked(self) -> None:
        """Admit queued jobs while running slots are free (FIFO).
        During a drain nothing new starts — queued jobs wait to be
        checkpointed."""
        if self._draining:
            return
        while (self._pending
               and len(self._running) < self.config.max_concurrent):
            job = self._pending.popleft()
            self._running.add(job.id)
            job.state = JOB_RUNNING
            job.started_at = time.time()
            job.attempts += 1
            if self._journal is not None:
                self._journal.started(job.id, job.attempts)
            self.hub.record(self._now(), CAT_SERVE, EV_JOB_STARTED,
                            job=job.id, mode=job.request.mode,
                            attempt=job.attempts,
                            queued_s=round(job.started_at
                                           - job.submitted_at, 6))
            self.tracer.job_started(job.id, job.attempts)
            if self._journal is not None:
                self.tracer.annotate_job(job.id, "journal:started",
                                         attempt=job.attempts)
            if job.request.mode == MODE_SPEC:
                self._workers.submit(self._run_spec_job, job)
            else:
                self._stage_pooled(job)

    # -- spec jobs ---------------------------------------------------------

    def _run_spec_job(self, job: _Job) -> None:
        from repro.experiments.runner import run_spec
        try:
            self._maybe_inject_crash(job)
            record = run_spec(job.spec)
        except Exception as exc:  # noqa: BLE001 - worker boundary
            self._handle_worker_failure(job, exc)
            return
        job.record = record
        job.metrics = dict(record.metrics)
        planner = {k: v for k, v in record.metrics.items()
                   if k.startswith("planner.")}
        if planner:
            job.plan = planner
        if record.failed:
            # A deterministic simulation failure: retrying replays the
            # identical outcome, so it is terminal on the first try.
            message = record.failure_reason or record.error or "job failed"
            self._finish(job, error=message, cause=FailureCause(
                code=schemas.FAIL_JOB_FAILED, message=message,
                retryable=False, attempts=job.attempts))
        else:
            self._finish(job)

    def _maybe_inject_crash(self, job: _Job) -> None:
        """Chaos hook: consume one crash token at the worker boundary."""
        crash = False
        with self._lock:
            if job.crash_attempts > 0:
                job.crash_attempts -= 1
                crash = True
            elif self._crash_budget > 0:
                self._crash_budget -= 1
                crash = True
        if crash:
            raise WorkerCrashError(
                f"chaos: worker thread killed (attempt {job.attempts})")

    def _handle_worker_failure(self, job: _Job, exc: BaseException) -> None:
        """Classify a worker-boundary exception: schedule a bounded,
        backed-off retry for transient errors, terminal-fail the rest."""
        message = f"{type(exc).__name__}: {exc}"
        transient = is_transient(exc)
        now = time.monotonic()
        deadline_ok = job.deadline_at is None or now < job.deadline_at
        if (transient and deadline_ok and not self._stop.is_set()
                and job.attempts < self._max_attempts_for(job)):
            backoff = self.retry_policy.backoff_s(job.id, job.attempts)
            with self._lock:
                if job.done.is_set():
                    return
                self._running.discard(job.id)
                job.state = JOB_QUEUED
                job.retry_at = now + backoff
                self._awaiting_retry.append(job)
                self.hub.record(self._now(), CAT_SERVE, EV_JOB_RETRYING,
                                job=job.id, attempt=job.attempts,
                                backoff_s=round(backoff, 6), error=message)
                self.cluster.metrics.counter("serve.jobs.retries").inc()
                self.tracer.job_retrying(job.id, job.attempts, backoff,
                                         message)
                self._pump_locked()  # the freed slot can admit others
            return
        if transient:
            code = schemas.FAIL_RETRIES_EXHAUSTED
            if not deadline_ok:
                code = schemas.FAIL_DEADLINE_EXCEEDED
        else:
            code = schemas.FAIL_WORKER_EXCEPTION
        self._finish(job, error=message, cause=FailureCause(
            code=code, message=message, retryable=transient,
            attempts=job.attempts))

    # -- pooled jobs -------------------------------------------------------

    def _stage_pooled(self, job: _Job) -> None:
        from repro.cluster.apps import ClusterApp
        from repro.workloads.registry import make_workload
        workload = make_workload(job.request.workload,
                                 **job.request.workload_params)
        with self._sim_wakeup:
            app = ClusterApp(job.id, next(self._app_index), workload,
                             pool=job.request.pool,
                             parallelism=job.request.parallelism,
                             registry_name=job.request.workload)
            job.app = app
            self._staged.append((job, app))
            self._sim_wakeup.notify_all()

    def _drive(self) -> None:
        """The driver thread: sole owner of simulated time."""
        while not self._stop.is_set():
            with self._sim_wakeup:
                while (not self._staged and not self._active
                       and not self._stop.is_set()):
                    self._sim_wakeup.wait(timeout=0.5)
                if self._stop.is_set():
                    return
            self._step_sim()

    def _step_sim(self) -> None:
        """Inject staged arrivals, advance one step, reap completions."""
        finished: List[_Job] = []
        with self._sim_lock:
            env = self.cluster.env
            while self._staged:
                job, app = self._staged.popleft()
                self._active[job.id] = job
                self.manager.submit(app)
            if self._active:
                # Stamp every sim event published during this step with
                # the trace ids of the in-flight pooled jobs: the link
                # from wall-clock spans into the sim's CAT_* events.
                self.cluster.bus.set_context({"trace_ids": ",".join(
                    trace_id_for_job(jid)
                    for jid in sorted(self._active))})
                try:
                    # Batch API: one Python call per driver tick instead
                    # of a stop Timeout + per-event loop re-entry. The
                    # kernel consumes the same sequence number the stop
                    # timeout would have, so event ordering is unchanged.
                    env.step_until(env.now + self.config.sim_step_s)
                finally:
                    self.cluster.bus.set_context(None)
            for job_id in list(self._active):
                job = self._active[job_id]
                if job.app.finish_time is not None:
                    del self._active[job_id]
                    finished.append(job)
        for job in finished:
            self._finish_pooled(job)

    def _finish_pooled(self, job: _Job) -> None:
        app = job.app
        job.metrics = {
            "workload": app.workload.name,
            "latency_s": app.latency_s,
            "queueing_delay_s": app.queueing_delay_s,
            "duration_s": app.run_duration_s,
            "busy_seconds": app.busy_seconds(),
        }
        if app.failed:
            message = app.failure_reason or "pooled app failed"
            self._finish(job, error=message, cause=FailureCause(
                code=schemas.FAIL_JOB_FAILED, message=message,
                retryable=False, attempts=job.attempts))
        else:
            self._finish(job)

    # -- the reaper ----------------------------------------------------------

    def _reap(self) -> None:
        """Deadline/retry/chaos enforcement on a small wall-clock tick.

        Runs independently of workers and the sim driver, so a wedged
        job cannot suppress its own deadline — the no-silent-hangs
        guarantee."""
        while not self._stop.wait(_REAPER_TICK_S):
            now = time.monotonic()
            self._fire_due_retries(now)
            self._enforce_deadlines(now)
            self._advance_chaos(now)

    def _fire_due_retries(self, now: float) -> None:
        with self._lock:
            due = [j for j in self._awaiting_retry
                   if j.retry_at is not None and now >= j.retry_at]
            for job in due:
                self._awaiting_retry.remove(job)
                job.retry_at = None
                self._pending.append(job)
            if due:
                self._pump_locked()

    def _enforce_deadlines(self, now: float) -> None:
        with self._lock:
            expired = [j for j in self._jobs.values()
                       if j.deadline_at is not None
                       and now >= j.deadline_at
                       and not j.done.is_set()]
        for job in expired:
            with self._lock:
                if job.done.is_set():
                    continue
                if job in self._pending:
                    self._pending.remove(job)
                if job in self._awaiting_retry:
                    self._awaiting_retry.remove(job)
                # A running job's worker thread cannot be killed from
                # outside; mark it abandoned so its eventual completion
                # is a no-op and its slot accounting stays consistent.
                job.abandoned = True
            self.hub.record(self._now(), CAT_SERVE,
                            EV_JOB_DEADLINE_EXCEEDED, job=job.id,
                            attempts=job.attempts)
            self.cluster.metrics.counter(
                "serve.jobs.deadline_exceeded").inc()
            message = (f"deadline exceeded after "
                       f"{job.attempts} attempt(s)")
            self._finish(job, error=message, cause=FailureCause(
                code=schemas.FAIL_DEADLINE_EXCEEDED, message=message,
                retryable=False, attempts=job.attempts))

    # -- completion --------------------------------------------------------

    def _finish(self, job: _Job, error: Optional[str] = None,
                cause: Optional[FailureCause] = None) -> None:
        """Terminal transition; idempotent (a deadline kill and the
        zombie worker's own completion may both arrive)."""
        with self._lock:
            if job.done.is_set():
                return
            self._running.discard(job.id)
            job.finished_at = time.time()
            job.error = error
            job.failure = cause
            job.state = JOB_FAILED if error is not None else JOB_COMPLETED
            # A checkpointed job is terminal for *this* incarnation only
            # — request_drain already journaled the checkpoint op, and a
            # "finished" line here would stop the next incarnation from
            # recovering it.
            checkpoint = (cause is not None
                          and cause.code == schemas.FAIL_CHECKPOINTED)
            if self._journal is not None and not checkpoint:
                self._journal.finished(job.id, job.state, error=error)
            duration = (job.record.duration_s
                        if job.record is not None else
                        job.metrics.get("latency_s"))
            self.hub.record(self._now(), CAT_SERVE, EV_JOB_FINISHED,
                            job=job.id, state=job.state,
                            attempts=job.attempts,
                            duration_s=duration,
                            cost=(job.record.cost
                                  if job.record is not None else None))
            if self._journal is not None:
                self.tracer.annotate_job(
                    job.id, "journal:checkpointed" if checkpoint
                    else "journal:finished")
            self.tracer.job_finished(job.id, job.state, job.attempts,
                                     error=error)
            self.slo.record_job_outcome(error is None)
            job.done.set()
            self._pump_locked()
            self._idle.notify_all()

    # -- health ---------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness: the process is up and answering. Carries enough
        for probes to alert on WAL growth (``journal_lag_ops`` = ops
        appended since the last compaction; compaction happens at
        open, so this is the replay debt a restart would pay)."""
        return {"status": "ok", "uptime_s": self._now(),
                "started": self._started,
                "schema_version": schemas.SCHEMA_VERSION,
                "journal_enabled": self._journal is not None,
                "journal_lag_ops": (self._journal.ops_since_compaction
                                    if self._journal is not None
                                    else None)}

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        """Readiness: may a load balancer send this server traffic?"""
        with self._lock:
            queue_below_max = len(self._pending) < self.config.max_queue
            draining = self._draining
        checks = {
            "driver_alive": (self._driver is not None
                             and self._driver.is_alive()),
            "queue_below_max": queue_below_max,
            "breaker_not_open": (self.breaker is None
                                 or self.breaker.state != BREAKER_OPEN),
            "not_draining": not draining,
            # Error budget burning faster than max_burn_rate means the
            # server is degraded even if every other check is green.
            "slo_burn_ok": self.slo.healthy(),
        }
        return all(checks.values()), checks

    # -- chaos ------------------------------------------------------------------

    def inject_chaos(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Apply one chaos instruction to the live server.

        Keys (combinable):

        - ``plan`` — a named plan from
          :data:`repro.simulation.faults.CHAOS_PLANS` (with optional
          ``start_s``/``duration_s``/``factor`` overrides), or
          ``faults`` — raw FaultSpec dicts. Windows run on the *host*
          clock (the serve plane's native clock); spec-mode jobs take
          sim-clock FaultPlans through their own ``faults`` field.
        - ``kill_workers`` — crash the next N spec-job executions at
          the worker boundary (exercises the retry path).
        - ``crash_next_submissions`` — crash the first execution of the
          next N *submitted* jobs (marked under the admission lock, so
          the victims are deterministic even when slots are free).
        - ``crash_job_ids`` — crash the next execution of these jobs.
        - ``stall_driver_s`` — hold the sim lock this long (a wedged
          driver); admission and job reads must keep answering.
        - ``scale_lambda`` — invoke N Lambda executors through the
          breaker-wrapped bridge (the chaos harness's breaker probe).

        Returns what was applied plus a breaker snapshot.
        """
        payload = dict(payload)
        applied: Dict[str, Any] = {}
        if "plan" in payload or "faults" in payload:
            applied.update(self._arm_chaos_plan(payload))
        if payload.get("kill_workers"):
            n = int(payload["kill_workers"])
            with self._lock:
                self._crash_budget += n
            applied["kill_workers"] = n
        if payload.get("crash_next_submissions"):
            n = int(payload["crash_next_submissions"])
            with self._lock:
                self._crash_next_submissions += n
            applied["crash_next_submissions"] = n
        if payload.get("crash_job_ids"):
            marked = []
            with self._lock:
                for job_id in payload["crash_job_ids"]:
                    job = self._jobs.get(str(job_id))
                    if job is not None and not job.done.is_set():
                        job.crash_attempts += 1
                        marked.append(job.id)
            applied["crash_job_ids"] = marked
        if payload.get("stall_driver_s"):
            stall_s = float(payload["stall_driver_s"])
            threading.Thread(target=self._stall_driver, args=(stall_s,),
                             name="repro-chaos-stall",
                             daemon=True).start()
            applied["stall_driver_s"] = stall_s
        if payload.get("scale_lambda"):
            applied["scale_lambda"] = self._chaos_scale_lambda(
                int(payload["scale_lambda"]))
        if applied:
            self.hub.record(self._now(), CAT_SERVE, EV_CHAOS_INJECTED,
                            **{k: v for k, v in applied.items()
                               if k != "scale_lambda"})
            self.cluster.metrics.counter("serve.chaos.injections").inc()
        return {"applied": applied,
                "breaker": (self.breaker.snapshot()
                            if self.breaker is not None else None)}

    def _arm_chaos_plan(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        from repro.simulation.faults import FaultPlan, chaos_plan
        if "plan" in payload:
            kwargs = {k: payload[k] for k in ("duration_s", "factor")
                      if payload.get(k) is not None}
            plan = chaos_plan(str(payload["plan"]), **kwargs)
        else:
            plan = FaultPlan.coerce(payload["faults"])
        start_s = float(payload.get("start_s", 0.0))
        now = time.monotonic()
        with self._lock:
            for fault in plan:
                due = now + start_s + (fault.at_s or 0.0)
                lift = (due + fault.duration_s
                        if fault.duration_s is not None else None)
                self._chaos_windows.append(_ChaosWindow(fault, due, lift))
        # Apply already-due windows synchronously so a start_s=0 storm
        # is in force when this call returns.
        self._advance_chaos(time.monotonic())
        return {"plan": payload.get("plan", f"{len(plan)} fault(s)"),
                "faults": len(plan)}

    def _advance_chaos(self, now: float) -> None:
        with self._lock:
            due = [w for w in self._chaos_windows
                   if not w.applied and now >= w.due_at]
            lift = [w for w in self._chaos_windows
                    if w.applied and not w.lifted
                    and w.lift_at is not None and now >= w.lift_at]
        for window in due:
            window.applied = True
            self._apply_chaos_fault(window)
        for window in lift:
            window.lifted = True
            if window.undo is not None:
                with self._sim_lock:
                    window.undo()
        with self._lock:
            self._chaos_windows = [w for w in self._chaos_windows
                                   if not (w.applied and w.lifted)]

    def _apply_chaos_fault(self, window: _ChaosWindow) -> None:
        """Service-level interpretation of one FaultSpec (host-clock
        windows; victim choice stays on the cluster's seeded streams)."""
        from repro.simulation import faults as F
        fault = window.fault
        with self._sim_lock:
            provider = self.cluster.provider
            if fault.kind == F.KIND_LAMBDA_THROTTLE:
                previous = provider.concurrency_limit
                provider.concurrency_limit = fault.limit

                def undo(prev=previous):
                    provider.concurrency_limit = prev
                window.undo = undo
            elif fault.kind == F.KIND_EXECUTOR_KILL:
                scheduler = self.pool.scheduler
                candidates = [ex for ex in scheduler.registered_executors
                              if F.match_executor(fault.target, ex)]
                for ex in self._pick_seeded(candidates, fault.count):
                    scheduler.decommission_executor(
                        ex, graceful=False, reason="chaos: executor_kill")
            elif fault.kind == F.KIND_SPOT_REVOCATION:
                candidates = [vm for vm in provider.running_vms
                              if F.match_vm(fault.target, vm)]
                for vm in self._pick_seeded(candidates, fault.count):
                    vm.terminate()
            elif fault.kind == F.KIND_STRAGGLER:
                scheduler = self.pool.scheduler
                candidates = [ex for ex in scheduler.registered_executors
                              if F.match_executor(fault.target, ex)]
                victims = self._pick_seeded(candidates, fault.count)
                for ex in victims:
                    ex.cpu_slowdown = fault.factor

                def undo(victims=victims):
                    for ex in victims:
                        ex.cpu_slowdown = 1.0
                window.undo = undo
            # Storage brownouts and probabilistic invoke failures have
            # no service-level surface (the shared pool mounts no
            # storage services); spec jobs take them via request.faults.

    def _pick_seeded(self, candidates: List, count: int) -> List:
        from repro.simulation.faults import SELECT_STREAM
        if count >= len(candidates):
            return list(candidates)
        chosen = self.cluster.rng.stream(SELECT_STREAM).permutation(
            len(candidates))[:count]
        return [candidates[i] for i in sorted(int(i) for i in chosen)]

    def _stall_driver(self, stall_s: float) -> None:
        with self._sim_lock:
            time.sleep(stall_s)

    def _chaos_scale_lambda(self, count: int) -> Dict[str, Any]:
        with self._sim_lock:
            before = self.pool.failed_invocations
            self.pool.invoke_lambda_executors(count)
            return {"requested": count,
                    "failed": self.pool.failed_invocations - before}

    # -- graceful drain ----------------------------------------------------------

    def request_drain(self, deadline_s: Optional[float] = None
                      ) -> Dict[str, Any]:
        """SIGTERM path: stop admitting (503 ``draining``), let running
        jobs finish up to the drain deadline, checkpoint the rest to
        the journal, and report what happened. Idempotent."""
        budget = (self.config.drain_deadline_s
                  if deadline_s is None else float(deadline_s))
        with self._lock:
            already = self._draining
            self._draining = True
        if already:
            self._drained.wait(timeout=budget + 1.0)
            return {"draining": True, "already_draining": True}
        self.hub.record(self._now(), CAT_SERVE, EV_DRAIN_STARTED,
                        deadline_s=budget,
                        running=len(self._running),
                        queued=len(self._pending))
        deadline = time.monotonic() + budget
        with self._idle:
            while self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=min(remaining, 0.1))
        checkpointed: List[str] = []
        with self._lock:
            leftovers = list(self._pending) + list(self._awaiting_retry)
            self._pending.clear()
            self._awaiting_retry.clear()
            still_running = len(self._running)
        for job in leftovers:
            if self._journal is not None:
                self._journal.checkpointed(job.id)
            message = "checkpointed by graceful drain"
            self._finish(job, error=message, cause=FailureCause(
                code=schemas.FAIL_CHECKPOINTED, message=message,
                retryable=True, attempts=job.attempts))
            checkpointed.append(job.id)
        summary = {"drained": still_running == 0,
                   "finished_in_time": still_running == 0,
                   "still_running": still_running,
                   "checkpointed": checkpointed,
                   "deadline_s": budget}
        self.hub.record(self._now(), CAT_SERVE, EV_DRAIN_COMPLETED,
                        **{k: v for k, v in summary.items()
                           if k != "checkpointed"},
                        checkpointed=len(checkpointed))
        self._drained.set()
        return summary

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- queries -----------------------------------------------------------

    def job(self, job_id: str) -> JobStatus:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return job.status(queue_position=self._position_locked(job))

    def jobs(self) -> List[JobStatus]:
        with self._lock:
            return [self._jobs[jid].status(
                queue_position=self._position_locked(self._jobs[jid]))
                for jid in self._order]

    def _position_locked(self, job: _Job) -> Optional[int]:
        if job.state != JOB_QUEUED:
            return None
        for pos, queued in enumerate(self._pending):
            if queued.id == job.id:
                return pos
        return None

    def admission_stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "running": len(self._running),
                "queued": len(self._pending),
                "awaiting_retry": len(self._awaiting_retry),
                "finished": sum(1 for j in self._jobs.values() if j.done.is_set()),
                "submitted": self._admitted,
                "rejected": self._rejected,
                "recovered": self._recovered,
                "draining": self._draining,
                "max_concurrent": self.config.max_concurrent,
                "max_queue": self.config.max_queue,
            }

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's span tree plus the sim-time events stamped with
        its trace id (pooled jobs; spec jobs run on an isolated
        cluster, so their sim events never reach this hub)."""
        with self._lock:
            if job_id not in self._jobs:
                raise UnknownJobError(job_id)
        trace_id = self.tracer.trace_id(job_id)
        sim_events = []
        if trace_id is not None:
            for item in self.hub.snapshot():
                if item["category"] in (CAT_SERVE, CAT_TRACE):
                    continue
                stamped = str(item["fields"].get("trace_ids", ""))
                if trace_id in stamped:
                    sim_events.append({
                        "time": item["time"],
                        "category": item["category"],
                        "name": item["name"],
                        "fields": dict(item["fields"])})
        return {"job_id": job_id, "trace_id": trace_id,
                "spans": self.tracer.spans(job_id),
                "sim_events": sim_events}

    def metrics_text(self) -> str:
        """The Prometheus exposition behind ``GET /metrics``.

        Merges the deterministic registry (serve counters, breaker
        state, sim-fed metrics) with the live gauges, the rolling
        admission/journal latency windows, the SLO burn rates, and —
        when ``--profile`` is on — the profiler families. Live
        families win name collisions with registry-derived ones, so
        the exposition never repeats a family.
        """
        stats = self.admission_stats()
        with self._lock:
            failed = sum(1 for j in self._jobs.values()
                         if j.state == JOB_FAILED)
        hub_stats = self.hub.stats()
        live: List[MetricFamily] = []

        def gauge(dotted: str, value: float, help_text: str) -> None:
            live.append(MetricFamily(
                name=prom_name(dotted), type="gauge", help=help_text,
                samples=[MetricSample(float(value))]))

        def counter(dotted: str, value: float, help_text: str) -> None:
            live.append(MetricFamily(
                name=prom_name(dotted) + "_total", type="counter",
                help=help_text, samples=[MetricSample(float(value))]))

        gauge("uptime_seconds", self._now(), "wall seconds since start")
        gauge("serve.jobs.running", stats["running"],
              "jobs holding a running slot")
        gauge("serve.jobs.queued", stats["queued"],
              "jobs waiting in the admission queue")
        gauge("serve.jobs.awaiting_retry", stats["awaiting_retry"],
              "jobs in retry backoff")
        gauge("serve.jobs.failed", failed, "jobs in the failed state")
        gauge("serve.queue.max", self.config.max_queue,
              "admission queue bound")
        counter("serve.jobs.submitted", stats["submitted"],
                "submissions accepted")
        counter("serve.jobs.rejected", stats["rejected"],
                "submissions shed with 503 backpressure")
        counter("serve.events.published", hub_stats["published"],
                "events published to the serve hub")
        counter("serve.events.dropped", hub_stats["dropped_total"],
                "events dropped by slow SSE subscribers")
        if self.breaker is not None:
            gauge("serve.breaker.state",
                  {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1,
                   BREAKER_OPEN: 2}[self.breaker.state],
                  "lambda-bridge breaker (0 closed, 1 half-open, 2 open)")
        if self._journal is not None:
            gauge("serve.journal.lag_ops",
                  self._journal.ops_since_compaction,
                  "journal ops since the last compaction")
        live.extend(rolling_histogram_families(
            prom_name("serve.admission_latency_seconds"),
            self.admission_latency,
            "submit() wall latency over the rolling window"))
        if self._journal is not None:
            live.extend(rolling_histogram_families(
                prom_name("serve.journal.append_seconds"),
                self.journal_latency,
                "journal append latency over the rolling window"))
        live.extend(slo_families(self.slo))
        if self.profiler is not None:
            live.extend(profiler_families(self.profiler))

        families = {f.name: f
                    for f in registry_families(self.cluster.metrics)}
        for fam in live:
            families[fam.name] = fam
        return render_prometheus(families.values())

    def executors(self) -> List[Dict[str, Any]]:
        with self._sim_lock:
            return self.pool.executor_infos()

    def pool_stats(self) -> Dict[str, Any]:
        with self._sim_lock:
            pools = self.pools.stats(self.pool.scheduler.tasksets)
            manager = self.manager.snapshot()
            sim_now = self.cluster.env.now
            capacity = {
                "vm_cores": self.pool.vm_capacity,
                "lambda_executors": self.pool.live_lambda_executors,
                "style": self.config.pool_style,
            }
        return {"pools": pools, "manager": manager,
                "capacity": capacity, "sim_time_s": sim_now,
                "admission": self.admission_stats()}

    def plan(self, workload: str, slo_s: Optional[float] = None,
             margin: Optional[float] = None,
             seed: Optional[int] = None) -> Dict[str, Any]:
        """Dry-run SplitPlanner ranking (memoized per seed+margin, so
        repeated queries for one workload probe it once)."""
        from repro.planner import SplitPlanner
        from repro.planner.planner import DEFAULT_SLO_MARGIN
        use_seed = self.config.seed if seed is None else int(seed)
        use_margin = DEFAULT_SLO_MARGIN if margin is None else float(margin)
        key = (use_seed, use_margin)
        with self._lock:
            planner = self._planners.get(key)
            if planner is None:
                planner = SplitPlanner(seed=use_seed, slo_margin=use_margin)
                self._planners[key] = planner
        plan = planner.plan(workload, slo_s=slo_s)
        return schemas.plan_payload(plan)

    def service_info(self) -> Dict[str, Any]:
        from repro import __version__
        return {
            "service": "repro-serve",
            "version": __version__,
            "schema_version": schemas.SCHEMA_VERSION,
            "started_at": self.started_at,
            "uptime_s": self._now(),
            "seed": self.config.seed,
            "endpoints": ["/", "/jobs", "/jobs/{id}", "/executors",
                          "/pools", "/plan", "/events", "/healthz",
                          "/readyz", "/chaos", "/metrics",
                          "/trace/{job_id}", "/dashboard"],
        }

    # -- synchronization helpers (tests, benches, graceful shutdown) ------

    def drain(self, timeout: float = 120.0) -> bool:
        """Block until every submitted job finished; True on success."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._pending or self._running or self._awaiting_retry:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=min(remaining, 0.25))
        return True

    def wait_for(self, job_id: str, timeout: float = 120.0) -> JobStatus:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        job.done.wait(timeout=timeout)
        return self.job(job_id)
