"""The ``repro serve`` control plane: schemas, ASGI app, and runtime.

One shared :mod:`repro.api.schemas` module defines every JSON payload
(the CLI's ``--json`` outputs serialize through it too);
:mod:`repro.api.service` owns the long-lived cluster and admission
queue; :mod:`repro.api.app` exposes it over ASGI;
:mod:`repro.api.testclient` drives it in-process and
:mod:`repro.api.server` over real sockets.

Heavy members are imported lazily so ``from repro.api import schemas``
(the CLI's only hard need) never drags in the service stack.
"""

from __future__ import annotations

from typing import Any

from repro.api import schemas

__all__ = ["schemas", "create_app", "ServeConfig", "ServeRuntime",
           "TestClient"]

_LAZY = {
    "create_app": ("repro.api.app", "create_app"),
    "ServeConfig": ("repro.api.service", "ServeConfig"),
    "ServeRuntime": ("repro.api.service", "ServeRuntime"),
    "TestClient": ("repro.api.testclient", "TestClient"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}") from None
    import importlib
    return getattr(importlib.import_module(module_name), attr)
