"""Tests for the TeraSort-style workload."""

import pytest

from repro.cloud.constants import GB
from repro.core.scenarios import run_scenario
from repro.experiments.spec import ExperimentSpec
from repro.workloads import SortWorkload


def _all_rdds(final):
    out, stack, seen = [], [final], set()
    while stack:
        rdd = stack.pop()
        if rdd.rdd_id in seen:
            continue
        seen.add(rdd.rdd_id)
        out.append(rdd)
        stack.extend(d.parent for d in rdd.deps)
    return out


def test_validation():
    with pytest.raises(ValueError):
        SortWorkload(dataset_gb=0)
    with pytest.raises(ValueError):
        SortWorkload().build(0)


def test_shuffle_moves_the_whole_dataset():
    w = SortWorkload(dataset_gb=16)
    final = w.build(32)
    total_shuffle = sum(d.total_bytes for r in _all_rdds(final)
                        for d in r.shuffle_deps)
    assert total_shuffle == pytest.approx(16 * GB)


def test_two_stages():
    w = SortWorkload(dataset_gb=8)
    final = w.build(32)
    shuffles = {d.shuffle_id for r in _all_rdds(final)
                for d in r.shuffle_deps}
    assert len(shuffles) == 1  # map stage + merge stage


def test_partition_override():
    w = SortWorkload(dataset_gb=8, partitions=256)
    assert w.build(32).num_partitions == 256


def test_record_count_is_terasort_layout():
    w = SortWorkload(dataset_gb=1)
    assert w.records == pytest.approx(GB / 100.0)


def test_sort_runs_under_splitserve():
    result = run_scenario(ExperimentSpec(
        "sort", "ss_hybrid", workload_params={"dataset_gb": 8}))
    assert not result.failed
    assert result.duration_s > 0
    # Shuffle-dominated: fetch+write time is a large share of compute.
    jr = result.job_result
    assert jr.write_seconds_total + jr.fetch_seconds_total > 0


def test_sort_is_io_bound_not_core_bound():
    """Sort's defining property: the dataset-sized shuffle through the
    shared EBS channel dominates, so quartering the cores barely hurts
    (unlike the compute-bound workloads)."""
    base = run_scenario(ExperimentSpec(
        "sort", "spark_R_vm", workload_params={"dataset_gb": 8}))
    starved = run_scenario(ExperimentSpec(
        "sort", "spark_r_vm", workload_params={"dataset_gb": 8}))
    assert base.duration_s < starved.duration_s < 1.6 * base.duration_s
