"""Replayability lint: no ambient randomness or wall-clock time.

Fault injection (and the cache/fan-out machinery built on spec hashes)
is only sound if the same seed reproduces the same run bit-for-bit.
That breaks the moment any module under ``src/repro`` reaches for the
``random`` module or the wall clock: all randomness must flow through
:class:`repro.simulation.rng.RandomStreams` and all time through the
simulation clock. ``time.perf_counter`` stays allowed — it only measures
host wall time *around* a run (runner bookkeeping, workload profiling)
and never feeds simulated behavior.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: ``time`` attributes that inject wall-clock state into a run.
BANNED_TIME_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns",
                     "localtime", "gmtime"}

#: Host-side modules exempt from the wall-clock ban (never the random
#: ban): the ``repro serve`` control plane serves real HTTP traffic, so
#: job timestamps, uptime, and drain deadlines are genuine wall-clock
#: quantities; the resilience layer's retry backoffs, breaker cooldowns
#: and chaos-phase timings, and the journal's audit timestamps, are the
#: same host-side clock. Nothing in them feeds simulated behavior —
#: simulated time still advances only through ``Environment.run`` on
#: the driver thread, and every *random* quantity in these modules is
#: hash-derived (repro.api.resilience.deterministic_jitter), never
#: drawn from ``random``.
WALL_CLOCK_EXEMPT = {
    "repro/api/service.py",
    "repro/api/resilience.py",
    "repro/api/journal.py",
    # Serve-plane telemetry: span durations, rolling-window histogram
    # slices and SLO burn windows measure real HTTP latency, and the
    # sampling profiler measures real driver time. All clocks here are
    # injectable (tests pass fakes); none feed simulated behavior.
    "repro/observability/serve_obs.py",
}


def _violations(path, *, allow_wall_clock=False):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    found.append((node.lineno, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                found.append((node.lineno, "from random import ..."))
        elif isinstance(node, ast.Attribute):
            if (not allow_wall_clock
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                    and node.attr in BANNED_TIME_ATTRS):
                found.append((node.lineno, f"time.{node.attr}"))
    return found


def test_no_module_uses_ambient_randomness_or_wall_clock():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources found under {SRC}"
    offenders = []
    for path in files:
        rel = path.relative_to(SRC.parent).as_posix()
        for lineno, what in _violations(
                path, allow_wall_clock=rel in WALL_CLOCK_EXEMPT):
            offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: "
                             f"{what}")
    assert not offenders, (
        "ambient randomness / wall-clock use in src/repro (route it "
        "through RandomStreams or the simulation clock):\n"
        + "\n".join(offenders))
