"""Regenerate ``golden_scenarios.json`` from the current simulator.

Only run this after an *intentional* simulation-model change, and say so
in the commit message — the golden file is the regression gate proving
the ClusterRuntime scenario rebuild preserves behaviour.

Usage::

    PYTHONPATH=src python -m tests.cluster.regen_goldens
"""

import json
import pathlib

from repro.core.scenarios import SCENARIO_NAMES
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_scenarios.json"

#: (workload, seed) pairs x every §5.1 scenario = 16 golden records.
WORKLOADS = (("sparkpi", 0), ("pagerank", 3))


def main() -> None:
    records = []
    for workload, seed in WORKLOADS:
        for scenario in SCENARIO_NAMES:
            spec = ExperimentSpec(workload, scenario, seed=seed)
            records.append(run_spec(spec).canonical())
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(records)} records to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
