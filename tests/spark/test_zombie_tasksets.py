"""Zombie-taskset interactions: speculation racing stage resubmission.

When a fetch failure marks a taskset zombie, in-flight attempts — and in
particular in-flight *speculative copies* — keep running. These tests
pin down the two interactions the scheduler must survive: a fetch
failure landing while a speculative copy is mid-flight, and the winning
copy's executor dying (taking its local shuffle outputs) after the race
was decided.
"""

from repro.spark import SparkConf, TaskState

from tests.spark.helpers import MiniCluster


def spec_conf(**overrides):
    base = {"spark.speculation": True,
            "spark.speculation.quantile": 0.5,
            "spark.speculation.multiplier": 1.5,
            "spark.speculation.interval": 0.5,
            "spark.sim.task.jitter": 0.0}
    base.update(overrides)
    return SparkConf(base)


def two_stage_with_reduce_straggler(builder, maps=8, reduces=16,
                                    straggler=60.0):
    # Short reducers are staggered (4..19 s) so executors free up at
    # different moments and some are always mid-task when the
    # straggler's speculative copy launches.
    mapped = builder.source("map", partitions=maps, compute_seconds=5.0)
    return builder.shuffle(
        mapped, "reduce", partitions=reduces,
        shuffle_bytes=16 * 1024 * 1024,
        compute_seconds=lambda p: straggler if p == 0 else 4.0 + p)


def test_fetch_failure_during_inflight_speculative_copy():
    """A map executor dies mid-reduce while a speculative copy of the
    straggling reducer is in flight: the fetch failure turns the reduce
    taskset zombie around the live copy, the map stage is resubmitted,
    and the job still completes with one winner per partition."""
    cluster = MiniCluster(conf=spec_conf(), no_jitter=False)
    executors = cluster.vm_executors(4)
    rdd = two_stage_with_reduce_straggler(cluster.builder)
    job = cluster.driver.submit(rdd)

    def kill_map_holder(env):
        # Wait until the straggler's speculative copy has launched, then
        # kill an executor that holds map outputs (all four ran maps)
        # AND is mid-way through a short reduce task — its requeued task
        # must re-fetch and hit the missing map output.
        scheduler = cluster.driver.task_scheduler
        while not cluster.trace.select(category="scheduler",
                                       name="speculative_launch"):
            yield env.timeout(0.5)
        while True:
            busy = [ex for ex in executors
                    if ex.executor_id in scheduler.executors
                    and ex.current is not None
                    and ex.current.spec.partition != 0]
            if busy:
                scheduler.decommission_executor(
                    busy[0], graceful=False,
                    reason="test: map holder dies")
                return
            yield env.timeout(0.25)

    cluster.env.process(kill_map_holder(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    # The speculative copy really was in flight when the stage blew up.
    assert cluster.trace.select(category="scheduler",
                                name="speculative_launch")
    assert cluster.trace.select(category="dag", name="fetch_failed")
    # One winner per reduce partition, despite zombie + resubmission.
    finished = [a for a in job.task_attempts
                if a.state is TaskState.FINISHED
                and not a.spec.is_shuffle_map]
    assert {a.spec.partition for a in finished} == set(range(16))


def test_partition_requeued_after_winning_copys_executor_dies():
    """The speculation winner's executor dies right after the race: its
    local map output vanishes with it, so the partition must be requeued
    and recomputed before the reduce stage can finish."""
    cluster = MiniCluster(conf=spec_conf(), no_jitter=False)
    cluster.vm_executors(4)
    mapped = cluster.builder.source(
        "map", partitions=8,
        compute_seconds=lambda p: 30.0 if p == 0 else 5.0)
    rdd = cluster.builder.shuffle(mapped, "reduce", partitions=4,
                                  shuffle_bytes=16 * 1024 * 1024,
                                  compute_seconds=2.0)
    job = cluster.driver.submit(rdd)
    scheduler = cluster.driver.task_scheduler

    def kill_winner(env):
        # Wait for map p0 to finish (original or speculative copy wins),
        # then kill the winner's executor before the reduce stage can
        # fetch from it.
        while True:
            winners = [a for a in job.task_attempts
                       if a.state is TaskState.FINISHED
                       and a.spec.is_shuffle_map
                       and a.spec.partition == 0]
            if winners:
                break
            yield env.timeout(0.25)
        executor_id = winners[0].executor_id
        victim = scheduler.executors.get(executor_id)
        if victim is not None:
            scheduler.decommission_executor(
                victim, graceful=False, reason="test: winner dies")

    cluster.env.process(kill_winner(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    # Map p0 finished at least twice: the race winner and the recompute
    # forced by the winner's death.
    p0_finishes = [a for a in job.task_attempts
                   if a.state is TaskState.FINISHED
                   and a.spec.is_shuffle_map and a.spec.partition == 0]
    assert len(p0_finishes) >= 2
    reduce_done = [a for a in job.task_attempts
                   if a.state is TaskState.FINISHED
                   and not a.spec.is_shuffle_map]
    assert {a.spec.partition for a in reduce_done} == set(range(4))
