"""The shuffle layer: map-output tracking and pluggable data paths.

Two backends reproduce the paper's design space:

- :class:`LocalShuffleBackend` — vanilla Spark with dynamic allocation:
  map outputs land on the *worker's own disk* and the worker serves them
  to reducers over the network. Outputs die with the host (or with a
  killed executor's container), which is what makes scale-down and
  executor kills trigger "execution rollback" (§2, §4.3).
- :class:`ExternalShuffleBackend` — shuffle through a shared
  :class:`~repro.storage.base.StorageService`. SplitServe instantiates it
  with HDFS (consolidated per-map files, §4.3); Qubole's Spark-on-Lambda
  with S3 (one object per map-reduce pair — the request explosion §2
  describes). Outputs survive executor loss.

:class:`MapOutputTracker` mirrors Spark's class of the same name: which
map partition of which shuffle is stored where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.executor import Executor
    from repro.storage.base import StorageService


class FetchFailedError(RuntimeError):
    """A reducer could not fetch a map output (source lost).

    Carries the shuffle id and map partition whose output is gone; the
    DAG scheduler reacts by re-running the owning map stage — the
    cascading recomputation SplitServe's graceful drain avoids.
    """

    def __init__(self, shuffle_id: int, map_partition: int, reason: str) -> None:
        super().__init__(
            f"fetch failed: shuffle {shuffle_id} map {map_partition}: {reason}")
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition


@dataclass
class MapStatus:
    """Location and size of one map partition's output."""

    shuffle_id: int
    map_partition: int
    executor_id: str
    nbytes: float


class MapOutputTracker:
    """Registry of completed map outputs per shuffle."""

    def __init__(self) -> None:
        self._outputs: Dict[int, Dict[int, MapStatus]] = {}
        self._num_maps: Dict[int, int] = {}

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        """Declare a shuffle's expected map-partition count (the DAG
        scheduler does this at stage-construction time)."""
        self._num_maps[shuffle_id] = num_maps

    def expected_maps(self, shuffle_id: int) -> int:
        return self._num_maps.get(shuffle_id, 0)

    _EMPTY: Dict[int, MapStatus] = {}

    def first_missing_partition(self, shuffle_id: int) -> Optional[int]:
        """The lowest unregistered map partition, or None if complete."""
        expected = self._num_maps.get(shuffle_id)
        if expected is None:
            return None
        # Membership straight on the per-shuffle dict: this runs per
        # reducer fetch, and materializing a set of registered
        # partitions each time was pure allocation.
        have = self._outputs.get(shuffle_id, self._EMPTY)
        for p in range(expected):
            if p not in have:
                return p
        return None

    def register(self, status: MapStatus) -> None:
        self._outputs.setdefault(status.shuffle_id, {})[status.map_partition] = status

    def get(self, shuffle_id: int, map_partition: int) -> Optional[MapStatus]:
        return self._outputs.get(shuffle_id, {}).get(map_partition)

    def statuses(self, shuffle_id: int) -> List[MapStatus]:
        return list(self._outputs.get(shuffle_id, {}).values())

    def registered_partitions(self, shuffle_id: int) -> Set[int]:
        return set(self._outputs.get(shuffle_id, {}))

    def missing_partitions(self, shuffle_id: int, num_maps: int) -> List[int]:
        have = self.registered_partitions(shuffle_id)
        return [p for p in range(num_maps) if p not in have]

    def is_complete(self, shuffle_id: int, num_maps: int) -> bool:
        return len(self.registered_partitions(shuffle_id)) >= num_maps

    def remove_outputs_on_executor(self, executor_id: str) -> List[MapStatus]:
        """Drop every output registered by ``executor_id`` (its storage is
        gone); returns what was dropped so stages can be invalidated."""
        removed = []
        for per_shuffle in self._outputs.values():
            for partition in list(per_shuffle):
                if per_shuffle[partition].executor_id == executor_id:
                    removed.append(per_shuffle.pop(partition))
        return removed


class ShuffleBackend:
    """Interface: how map outputs are written and fetched."""

    #: Whether outputs survive the death of the executor that wrote them.
    outputs_survive_executor_loss = False

    def write(self, executor: "Executor", shuffle_id: int, map_partition: int,
              nbytes: float, num_reducers: int):
        """Generator: persist one map task's output."""
        raise NotImplementedError

    def fetch(self, executor: "Executor", shuffle_id: int,
              reduce_partition: int, total_bytes: float,
              num_reducers: int, statuses: Sequence[MapStatus],
              executors: Dict[str, "Executor"]):
        """Generator: pull this reducer's ``total_bytes`` — one slice of
        every map output.

        Raises :class:`FetchFailedError` if any slice is unreachable.
        """
        raise NotImplementedError

    def on_executor_lost(self, executor_id: str) -> None:
        """Hook for backend-side cleanup when an executor dies."""


class LocalShuffleBackend(ShuffleBackend):
    """Worker-local shuffle files served peer-to-peer (vanilla Spark)."""

    outputs_survive_executor_loss = False

    def __init__(self, fetch_parallelism: int = 5) -> None:
        self.fetch_parallelism = fetch_parallelism

    def write(self, executor, shuffle_id, map_partition, nbytes, num_reducers):
        # Spill the consolidated map output to the host's local disk.
        for link in executor.disk_links():
            yield link.transfer(nbytes)

    def fetch(self, executor, shuffle_id, reduce_partition, total_bytes,
              num_reducers, statuses, executors):
        from repro.cloud.network import transfer_via

        env = executor.env
        slice_bytes = total_bytes / max(1, len(statuses))
        # Spark batches block fetches by source host: one fused transfer
        # per host carries all of that host's slices.
        per_host: Dict[str, list] = {}
        executors_get = executors.get
        setdefault = per_host.setdefault
        for status in statuses:
            source = executors_get(status.executor_id)
            if source is None or not source.host_alive:
                raise FetchFailedError(shuffle_id, status.map_partition,
                                       f"executor {status.executor_id} lost")
            entry = setdefault(source.host_name, [source, 0.0])
            entry[1] += slice_bytes
        events = []
        for source, nbytes in per_host.values():
            if source is executor or source.same_host(executor):
                # Local or intra-host blocks: disk only, no NIC crossing.
                links = source.disk_links()
            else:
                # Remote blocks: off the source's disk, across both NICs;
                # the fair-share links model the resulting contention.
                links = [*source.disk_links(), *source.net_links(),
                         *executor.net_links()]
            events.append(transfer_via(env, links, nbytes))
        for event in events:
            yield event


class ExternalShuffleBackend(ShuffleBackend):
    """Shuffle through a shared storage service.

    ``per_pair_objects=False`` (SplitServe/HDFS, §4.3): each map task
    writes **one consolidated file**; reducers issue one ranged read per
    map file. Requests per shuffle: M writes + M·R reads.

    ``per_pair_objects=True`` (Qubole/PyWren on S3): each map task writes
    **one object per reducer** — M·R objects per shuffle, the
    request-count explosion that drives S3 throttling and request costs
    (§2). Requests per shuffle: M·R writes + M·R reads.

    Request counts, throttle admission, and billing go through the
    storage service's batch API; payload bytes move as fused streams, so
    contention is modelled without simulating every object individually.
    Existence checks go through the :class:`MapOutputTracker` (an output
    is fetchable iff its map status is registered), which the executor
    validates before calling :meth:`fetch`.
    """

    outputs_survive_executor_loss = True

    def __init__(self, storage: "StorageService", per_pair_objects: bool = False,
                 fetch_parallelism: int = 5) -> None:
        self.storage = storage
        self.per_pair_objects = per_pair_objects
        self.fetch_parallelism = max(1, fetch_parallelism)

    def write(self, executor, shuffle_id, map_partition, nbytes, num_reducers):
        links = executor.net_links()
        count = max(1, num_reducers) if self.per_pair_objects else 1
        yield self.storage.batch_write(
            count, nbytes, via_links=links,
            parallelism=self.fetch_parallelism,
            key_prefix=f"shuffle{shuffle_id}/map{map_partition}")

    def fetch(self, executor, shuffle_id, reduce_partition, total_bytes,
              num_reducers, statuses, executors):
        if not statuses:
            return
        links = executor.net_links()
        # One request per map output (a ranged read of the consolidated
        # file, or a GET of this reducer's pair object).
        yield self.storage.batch_read(
            len(statuses), total_bytes, via_links=links,
            parallelism=self.fetch_parallelism)


class QuboleS3ShuffleBackend(ExternalShuffleBackend):
    """Qubole Spark-on-Lambda's shuffle: per-pair objects on S3 plus the
    eventual-consistency polling its reducers had to do.

    On 2019-era S3 (before strong read-after-write), a reducer could not
    assume its input objects were listable/readable the moment the map
    side returned; the PyWren/Qubole line of systems handled this with
    LIST + poll + exponential backoff. The modelled delay grows with the
    square root of the number of objects being awaited (pagination plus
    the longest-straggler effect), calibrated at ``consistency_mean_s``
    for a 256-object shuffle and capped at ``consistency_cap_s``.
    """

    #: Object count at which the consistency delay equals the mean knob.
    CONSISTENCY_REFERENCE_OBJECTS = 256

    def __init__(self, storage: "StorageService",
                 consistency_mean_s: float = 6.0,
                 consistency_cap_s: float = 25.0,
                 fetch_parallelism: int = 5) -> None:
        super().__init__(storage, per_pair_objects=True,
                         fetch_parallelism=fetch_parallelism)
        self.consistency_mean_s = consistency_mean_s
        self.consistency_cap_s = consistency_cap_s

    def _consistency_delay(self, executor, n_objects: int) -> float:
        if self.consistency_mean_s <= 0 or n_objects <= 0:
            return 0.0
        scale = (n_objects / self.CONSISTENCY_REFERENCE_OBJECTS) ** 0.5
        mean = min(self.consistency_cap_s, self.consistency_mean_s * scale)
        return executor.rng.lognormal_around("qubole.s3.consistency",
                                             mean, 0.3)

    def fetch(self, executor, shuffle_id, reduce_partition, total_bytes,
              num_reducers, statuses, executors):
        if not statuses:
            return
        # The reducer awaits M objects of its own out of an M x R flood;
        # the poll-until-visible time tracks the flood size.
        n_awaited = len(statuses) * max(1, num_reducers)
        delay = self._consistency_delay(executor, n_awaited)
        if delay > 0:
            yield executor.env.timeout(delay)
        links = executor.net_links()
        yield self.storage.batch_read(
            len(statuses), total_bytes, via_links=links,
            parallelism=self.fetch_parallelism)
