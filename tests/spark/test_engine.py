"""Integration tests for the Spark-like engine on the mini-cluster."""

import pytest

from repro.cloud.constants import MB
from repro.spark import HostKind, SparkConf, TaskState
from repro.spark.dag_scheduler import JobFailedError

from tests.spark.helpers import MiniCluster, single_stage_rdd, two_stage_rdd


def test_single_stage_job_completes():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    rdd = single_stage_rdd(cluster.builder, tasks=8, seconds=10.0)
    result = cluster.run_job(rdd)
    # 8 tasks, 4 executors, 10s each: two waves = 20s.
    assert result.duration == pytest.approx(20.0, rel=0.05)
    assert result.num_tasks == 8
    assert result.num_stages == 1


def test_tasks_spread_across_executors():
    cluster = MiniCluster()
    executors = cluster.vm_executors(4)
    rdd = single_stage_rdd(cluster.builder, tasks=8, seconds=1.0)
    cluster.run_job(rdd)
    assert all(ex.tasks_finished == 2 for ex in executors)


def test_two_stage_job_sequences_stages():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    rdd = two_stage_rdd(cluster.builder, maps=4, reduces=4,
                        map_seconds=10.0, reduce_seconds=5.0,
                        shuffle_bytes=0)
    result = cluster.run_job(rdd)
    assert result.num_stages == 2
    assert result.num_tasks == 8
    # Map wave 10s + reduce wave 5s (zero shuffle volume).
    assert result.duration == pytest.approx(15.0, rel=0.05)


def test_shuffle_bytes_add_time():
    small = MiniCluster()
    small.vm_executors(4)
    fast = small.run_job(two_stage_rdd(small.builder, shuffle_bytes=0)).duration

    big = MiniCluster()
    big.vm_executors(4)
    slow = big.run_job(
        two_stage_rdd(big.builder, shuffle_bytes=2_000 * MB)).duration
    assert slow > fast


def test_lambda_executor_runs_tasks_slower_when_small():
    vm_cluster = MiniCluster()
    vm_cluster.vm_executors(4)
    vm_time = vm_cluster.run_job(
        single_stage_rdd(vm_cluster.builder, tasks=4, seconds=10.0)).duration

    la_cluster = MiniCluster()
    la_cluster.lambda_executors(4, memory_mb=768)  # half a vCPU each
    la_time = la_cluster.run_job(
        single_stage_rdd(la_cluster.builder, tasks=4, seconds=10.0)).duration
    assert la_time == pytest.approx(2 * vm_time, rel=0.1)


def test_full_size_lambda_matches_vm_compute():
    la_cluster = MiniCluster()
    la_cluster.lambda_executors(4, memory_mb=1536)
    la_time = la_cluster.run_job(
        single_stage_rdd(la_cluster.builder, tasks=4, seconds=10.0)).duration
    assert la_time == pytest.approx(10.0, rel=0.05)


def test_gc_pressure_slows_memory_hungry_tasks_on_lambda():
    b_cluster = MiniCluster()
    b_cluster.lambda_executors(2, memory_mb=1536)
    # Working set of 2GB >> 1536MB*0.6 usable heap.
    rdd = b_cluster.builder.source(
        "hungry", partitions=2, compute_seconds=10.0,
        working_set_bytes=2 * 1024 ** 3)
    slow = b_cluster.run_job(rdd).duration

    v_cluster = MiniCluster()
    v_cluster.vm_executors(2, itype="m4.4xlarge")  # 4GB per core
    rdd2 = v_cluster.builder.source(
        "hungry", partitions=2, compute_seconds=10.0,
        working_set_bytes=2 * 1024 ** 3)
    fast = v_cluster.run_job(rdd2).duration
    assert slow > fast * 1.3


def test_job_result_metrics_populated():
    cluster = MiniCluster()
    cluster.vm_executors(2)
    result = cluster.run_job(two_stage_rdd(cluster.builder, maps=2, reduces=2,
                                           shuffle_bytes=100 * MB))
    assert result.compute_seconds_total > 0
    assert result.write_seconds_total > 0
    assert result.fetch_seconds_total > 0
    assert result.tasks_by_kind == {"vm": 4}


def test_diamond_dag_runs_all_stages():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    b = cluster.builder
    src = b.source("src", 4, 1.0)
    left = b.shuffle(src, "left", 4, 10 * MB, compute_seconds=1.0)
    right = b.shuffle(src, "right", 4, 10 * MB, compute_seconds=1.0)
    joined = b.join(left, right, "join", 4, 10 * MB, 10 * MB,
                    compute_seconds=1.0)
    result = cluster.run_job(joined)
    # Five stages: src->left map, src->right map (each ShuffleDependency
    # cuts its own map stage over src), left->join map, right->join map,
    # and the result stage. 4 tasks each = 20.
    assert result.num_stages == 5
    assert result.num_tasks == 20


def test_cached_rdd_speeds_up_second_pass():
    cluster = MiniCluster()
    cluster.vm_executors(4)
    b = cluster.builder
    points = b.source("points", 4, compute_seconds=20.0, cache=True)
    iter1 = b.shuffle(points, "iter1", 4, 0, compute_seconds=1.0)
    result1 = cluster.run_job(iter1)

    points2 = b.map(points, "reuse", compute_seconds=1.0)
    iter2 = b.shuffle(points2, "iter2", 4, 0, compute_seconds=1.0)
    result2 = cluster.run_job(iter2)
    # Second job skips the 20s source compute thanks to the cache.
    assert result2.duration < result1.duration / 2
    assert result2.cache_hits >= 4


def test_cache_locality_prefers_hot_executor():
    cluster = MiniCluster()
    executors = cluster.vm_executors(2)
    b = cluster.builder
    points = b.source("points", 2, compute_seconds=5.0, cache=True)
    stage1 = b.shuffle(points, "s1", 2, 0, compute_seconds=0.1)
    cluster.run_job(stage1)
    hot = {(ex.executor_id, p) for ex in executors
           for p in range(2) if ex.has_cached(points.rdd_id, p)}
    assert len(hot) == 2  # each partition cached somewhere

    again = b.map(points, "again", compute_seconds=0.1)
    stage2 = b.shuffle(again, "s2", 2, 0, compute_seconds=0.1)
    result = cluster.run_job(stage2)
    assert result.cache_hits == 2  # both tasks hit their cached partition


def test_executor_kill_retries_task_elsewhere():
    cluster = MiniCluster()
    executors = cluster.vm_executors(2)
    rdd = single_stage_rdd(cluster.builder, tasks=2, seconds=30.0)
    job = cluster.driver.submit(rdd)

    def killer(env):
        yield env.timeout(10)
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="test kill")

    cluster.env.process(killer(cluster.env))
    cluster.env.run(until=job.done)
    # The killed task restarted: total time > 30s, and the job finished.
    assert not job.failed
    assert job.duration > 30.0
    killed = [a for a in job.task_attempts if a.state is TaskState.FINISHED]
    assert len(killed) == 2


def test_local_shuffle_executor_loss_triggers_rollback():
    """Losing a map executor after the map stage forces recomputation —
    the §4.3 rollback that graceful draining avoids."""
    cluster = MiniCluster()
    executors = cluster.vm_executors(2)
    rdd = two_stage_rdd(cluster.builder, maps=2, reduces=2,
                        map_seconds=10.0, reduce_seconds=30.0,
                        shuffle_bytes=10 * MB)
    job = cluster.driver.submit(rdd)

    def killer(env):
        yield env.timeout(15)  # map stage done (~10s), reduce running
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="kill mid-reduce")

    cluster.env.process(killer(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    # The surviving executor had to redo lost map partitions: the trace
    # shows a fetch failure or resubmission, and duration stretches well
    # past the no-failure 40s.
    rollback = (cluster.trace.select(category="dag", name="fetch_failed")
                or cluster.trace.select(category="dag", name="stage_outputs_lost"))
    assert rollback
    assert job.duration > 45.0


def test_hdfs_shuffle_survives_executor_loss():
    """With SplitServe's external shuffle, executor loss costs only the
    running task — no rollback."""
    cluster = MiniCluster(backend="hdfs")
    executors = cluster.vm_executors(2)
    rdd = two_stage_rdd(cluster.builder, maps=2, reduces=2,
                        map_seconds=10.0, reduce_seconds=30.0,
                        shuffle_bytes=10 * MB)
    job = cluster.driver.submit(rdd)

    def killer(env):
        yield env.timeout(15)
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=False, reason="kill mid-reduce")

    cluster.env.process(killer(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    assert not cluster.trace.select(category="dag", name="fetch_failed")


def test_graceful_drain_finishes_current_task_without_failures():
    cluster = MiniCluster()
    executors = cluster.vm_executors(2)
    rdd = single_stage_rdd(cluster.builder, tasks=4, seconds=10.0)
    job = cluster.driver.submit(rdd)

    def drainer(env):
        yield env.timeout(5)
        cluster.driver.task_scheduler.decommission_executor(
            executors[0], graceful=True)

    cluster.env.process(drainer(cluster.env))
    cluster.env.run(until=job.done)
    assert not job.failed
    assert all(a.state is TaskState.FINISHED for a in job.task_attempts)
    # Drained executor ran its in-flight task but nothing after: the
    # remaining 3 tasks went to the surviving executor.
    assert executors[0].tasks_finished == 1
    assert executors[1].tasks_finished == 3


def test_task_exhausting_retries_fails_job():
    conf = SparkConf({"spark.task.maxFailures": 2})
    cluster = MiniCluster(conf=conf)
    rdd = single_stage_rdd(cluster.builder, tasks=1, seconds=1000.0)
    job = cluster.driver.submit(rdd)

    def serial_killer(env):
        # Keep one executor around but kill whatever runs the task.
        for _ in range(3):
            ex = cluster.vm_executors(1)[0]
            yield env.timeout(10)
            if not ex.is_idle:
                cluster.driver.task_scheduler.decommission_executor(
                    ex, graceful=False, reason="chaos")

    cluster.env.process(serial_killer(cluster.env))
    with pytest.raises(JobFailedError):
        cluster.env.run(until=job.done)
    assert job.failed


def test_lambda_timeout_knob_drains_lambda_executors():
    conf = SparkConf({"spark.lambda.executor.timeout": 15.0})
    cluster = MiniCluster(conf=conf)
    cluster.lambda_executors(2)
    rdd = single_stage_rdd(cluster.builder, tasks=6, seconds=10.0)
    job = cluster.driver.submit(rdd)
    with pytest.raises(Exception):
        # With every Lambda drained after ~15s and no VMs to take over,
        # the job stalls: the simulation runs out of events.
        cluster.env.run(until=job.done)


def test_lambda_timeout_with_vm_takeover_completes():
    conf = SparkConf({"spark.lambda.executor.timeout": 15.0})
    cluster = MiniCluster(conf=conf)
    cluster.lambda_executors(2)
    cluster.vm_executors(2)
    rdd = single_stage_rdd(cluster.builder, tasks=8, seconds=10.0)
    job = cluster.driver.submit(rdd)
    cluster.env.run(until=job.done)
    assert not job.failed
    by_kind = {}
    for a in job.task_attempts:
        kind = "lambda" if a.executor_id.startswith("la-") else "vm"
        by_kind[kind] = by_kind.get(kind, 0) + 1
    # Lambdas ran early tasks then drained; VMs picked up the rest.
    assert by_kind["lambda"] <= 4
    assert by_kind["vm"] >= 4


def test_executor_counts_by_kind():
    cluster = MiniCluster()
    cluster.vm_executors(2)
    cluster.lambda_executors(3)
    counts = cluster.driver.task_scheduler.executor_counts()
    assert counts == {"vm": 2, "lambda": 3}
    assert len(cluster.driver.executors_of_kind(HostKind.LAMBDA)) == 3
